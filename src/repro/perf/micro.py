"""The ``python -m repro perf`` micro-benchmark: fast path vs baseline.

Times Write-All runs through three cores at one configuration:

* **fast** — the machine's optimized tick loop (``fast_path=True``) with
  the incremental O(1) termination predicate and event-horizon
  fast-forward (quiescent windows batched through the fused tick loop);
* **noff** — the same optimized loop with fast-forward disabled
  (``fast_forward=False``), i.e. PR 2's per-tick fast path.  The
  fast/noff ratio isolates what horizon batching alone buys;
* **nokernel** — the fast loop with compiled program kernels disabled
  (``compiled=False``), timed only for algorithms that ship a kernel.
  The nokernel/fast ratio isolates what compiling the cycle stream
  buys over generator dispatch;
* **novec** — with ``--vectorized``, the fast leg runs the numpy batch
  lane and a **novec** leg (same configuration, scalar compiled lane)
  is timed alongside it; the novec/fast ratio (``vec_speedup``)
  isolates what batching all P processors into array ops buys over
  the scalar kernel.  Timed only for algorithms that ship a vector
  program and only when the numpy extra is installed;
* **baseline** — the reference tick implementation
  (``fast_path=False``) with the O(N) termination rescan, i.e. the
  pre-optimization core kept in-tree as the executable specification.

Fault injection is selected from :data:`PERF_ADVERSARIES` — sparse
deterministic scenarios where the event-horizon protocol has long
quiescent windows to exploit.  Every leg builds a fresh adversary from
the same factory, so the legs replay the identical failure pattern.

All legs are timed with warmup + min-of-k repeats
(:mod:`repro.perf.timing`); the fast leg also collects per-phase tick
counters.  The paper-model outputs of the legs (S, S', |F|, ticks,
solved) are asserted identical — a timing harness must never compare two
computations that diverged.

Results can be exported as a ``repro-bench/1`` report (scenario tag
``PERF_micro``) so ``benchmarks/check_regression.py`` can diff perf runs
over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core import (
    AlgorithmV,
    AlgorithmVX,
    AlgorithmW,
    AlgorithmX,
    SnapshotAlgorithm,
    TrivialAssignment,
    solve_write_all,
)
from repro.core.runner import WriteAllResult
from repro.faults import (
    FailureBudgetAdversary,
    RandomAdversary,
    ScheduledAdversary,
)
from repro.metrics.report import bench_report
from repro.perf.phases import PhaseCounters
from repro.perf.timing import (
    TimingResult,
    time_callable,
    time_callables_interleaved,
)
from repro.pram.compiled import resolve_kernel
from repro.pram.vectorized import HAVE_NUMPY, resolve_vectorized

#: Algorithms runnable by the perf command.
PERF_ALGORITHMS = {
    "trivial": TrivialAssignment,
    "W": AlgorithmW,
    "V": AlgorithmV,
    "X": AlgorithmX,
    "VX": AlgorithmVX,
    "snapshot": SnapshotAlgorithm,
}


def _sched_sparse(p: int) -> ScheduledAdversary:
    """Eight fail/restart event pairs spread 400 ticks apart.

    The schedule is provably quiet between events, so the machine's
    horizon windows are ~400 ticks wide — the regime the fast-forward
    loop targets.  Victims rotate across PIDs so restarts are never
    vacuous on small machines.
    """
    events: Dict[int, Tuple[List[int], List[int]]] = {}
    for k in range(8):
        events[50 + 400 * k] = ([k % p], [])
        events[57 + 400 * k] = ([], [k % p])
    return ScheduledAdversary(events)


def _budget_sparse(p: int) -> FailureBudgetAdversary:
    """A stochastic adversary that falls silent after 16 events.

    Exercises the budget-exhaustion horizon (``QUIET_FOREVER`` once
    spent): the run starts turbulent and ends in one long quiescent
    window.
    """
    return FailureBudgetAdversary(
        RandomAdversary(0.02, 0.5, seed=0), budget=16
    )


#: Fault scenarios for the perf command: name -> factory(p) -> adversary
#: (``None`` = fault-free).  Every leg of a comparison calls the factory
#: afresh, so stateful adversaries replay identically.
PERF_ADVERSARIES: Dict[str, Optional[Callable[[int], object]]] = {
    "none": None,
    "sched-sparse": _sched_sparse,
    "budget-sparse": _budget_sparse,
}

#: The headline configuration: fault-free Write-All at N=4096, P=64.
DEFAULT_SIZE = (4096, 64)
DEFAULT_ALGORITHM = "X"
DEFAULT_ADVERSARY = "none"


@dataclass(frozen=True)
class PerfLeg:
    """One timed core (fast / noff / baseline) at one configuration."""

    mode: str  # "fast" | "noff" | "nokernel" | "novec" | "baseline"
    timing: TimingResult
    result: WriteAllResult
    phases: Optional[PhaseCounters]

    @property
    def best_s(self) -> float:
        return self.timing.best_s

    @property
    def ticks_per_s(self) -> float:
        best = self.timing.best_s
        return self.result.ledger.ticks / best if best > 0 else float("inf")


@dataclass(frozen=True)
class PerfComparison:
    """Fast vs noff vs baseline at one (algorithm, n, p, adversary)."""

    algorithm: str
    n: int
    p: int
    fast: PerfLeg
    baseline: Optional[PerfLeg]
    noff: Optional[PerfLeg] = None
    nokernel: Optional[PerfLeg] = None
    novec: Optional[PerfLeg] = None
    adversary: str = DEFAULT_ADVERSARY
    #: The lane switch the fast leg ran with (False / True / "auto") —
    #: decides whether the novec ratio reports as vec_ or auto_speedup.
    vectorized: "Union[bool, str]" = False

    @property
    def speedup(self) -> Optional[float]:
        """Baseline-over-fast wall-clock ratio (higher is better)."""
        if self.baseline is None or self.fast.best_s <= 0:
            return None
        return self.baseline.best_s / self.fast.best_s

    @property
    def ff_speedup(self) -> Optional[float]:
        """No-fast-forward over fast ratio: the horizon batching win."""
        if self.noff is None or self.fast.best_s <= 0:
            return None
        return self.noff.best_s / self.fast.best_s

    @property
    def kernel_speedup(self) -> Optional[float]:
        """No-kernel over fast ratio: the compiled-kernel win."""
        if self.nokernel is None or self.fast.best_s <= 0:
            return None
        return self.nokernel.best_s / self.fast.best_s

    @property
    def vec_speedup(self) -> Optional[float]:
        """No-vec over fast ratio: the vectorized-lane win.

        Kernel-relative: the novec leg runs the scalar compiled lane,
        so this isolates array batching from everything beneath it.
        Reported only for the hard ``--vectorized`` opt-in; the
        adaptive mode reports :attr:`auto_speedup` instead.
        """
        if self.vectorized == "auto":
            return None
        if self.novec is None or self.fast.best_s <= 0:
            return None
        return self.novec.best_s / self.fast.best_s

    @property
    def auto_speedup(self) -> Optional[float]:
        """No-vec over auto ratio: what adaptive dispatch buys.

        The auto leg may dispatch any mix of vec and scalar windows;
        dividing the forced-scalar leg's time by it answers the
        question the cost model exists for — "is ``--lane auto`` at
        least as fast as the scalar lane here?" (≥ 1.0 means yes; the
        CI gate allows 0.95 for timing noise on small sizes)."""
        if self.vectorized != "auto":
            return None
        if self.novec is None or self.fast.best_s <= 0:
            return None
        return self.novec.best_s / self.fast.best_s


def _check_legs_agree(legs: Sequence[PerfLeg]) -> None:
    """All present legs must have produced the same paper-model run."""
    reference = legs[0].result
    fields = (
        ("solved", lambda r: r.solved),
        ("S", lambda r: r.completed_work),
        ("S'", lambda r: r.charged_work),
        ("|F|", lambda r: r.pattern_size),
        ("ticks", lambda r: r.ledger.ticks),
    )
    mismatched = [
        f"{name}: {legs[0].mode}={get(reference)!r} {leg.mode}={get(leg.result)!r}"
        for leg in legs[1:]
        for name, get in fields
        if get(leg.result) != get(reference)
    ]
    if mismatched:
        raise RuntimeError(
            "perf legs diverged on "
            f"{reference.algorithm}(N={reference.n}, P={reference.p}) — "
            "refusing to report timings of different computations: "
            + "; ".join(mismatched)
        )


def run_comparison(
    algorithm: str,
    n: int,
    p: int,
    repeats: int = 5,
    warmup: int = 1,
    include_baseline: bool = True,
    adversary: str = DEFAULT_ADVERSARY,
    fast_forward: bool = True,
    compiled: bool = True,
    vectorized: "Union[bool, str]" = False,
) -> PerfComparison:
    """Time one configuration through the cores.

    With ``fast_forward=True`` (the default) the fast leg uses horizon
    batching and a **noff** leg (same optimized loop, fast-forward off)
    is timed alongside it, so the comparison carries both the total
    (:attr:`PerfComparison.speedup`) and the batching-only
    (:attr:`PerfComparison.ff_speedup`) ratios.  ``fast_forward=False``
    is the ``--no-fast-forward`` escape hatch: the fast leg runs tick by
    tick and the noff leg is skipped (it would duplicate it).

    With ``compiled=True`` (the default) and an algorithm that ships a
    compiled kernel for this configuration, a **nokernel** leg (same
    loop, generator protocol) is timed alongside the fast leg, carrying
    the kernel-only ratio (:attr:`PerfComparison.kernel_speedup`).
    ``compiled=False`` is the ``--no-compiled`` escape hatch: the fast
    leg itself runs on generators and the nokernel leg is skipped.

    With ``vectorized=True`` (the ``--vectorized`` opt-in) the fast leg
    runs the numpy batch lane; for algorithms that actually ship a
    vector program a **novec** leg (same loop, scalar compiled lane) is
    timed alongside it, carrying the batching-only ratio
    (:attr:`PerfComparison.vec_speedup`).  Requesting it without the
    numpy extra raises the lane's clear unavailability error.

    With ``vectorized="auto"`` (the ``--lane auto`` mode) the fast leg
    runs adaptive per-window dispatch and reports as mode ``auto`` in
    the bench export; the same novec leg then carries
    :attr:`PerfComparison.auto_speedup` — scalar time over auto time,
    the "adaptive never loses" number the CI baselines gate on.
    """
    try:
        algorithm_cls = PERF_ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(PERF_ALGORITHMS))
        raise ValueError(
            f"unknown perf algorithm {algorithm!r}; known: {known}"
        ) from None
    try:
        adversary_factory = PERF_ADVERSARIES[adversary]
    except KeyError:
        known = ", ".join(sorted(PERF_ADVERSARIES))
        raise ValueError(
            f"unknown perf adversary {adversary!r}; known: {known}"
        ) from None

    def fresh_adversary():
        return None if adversary_factory is None else adversary_factory(p)

    state: Dict[str, WriteAllResult] = {}

    def run_fast() -> None:
        state["fast"] = solve_write_all(
            algorithm_cls(), n, p, adversary=fresh_adversary(),
            fast_path=True, fast_forward=fast_forward, compiled=compiled,
            vectorized=vectorized,
        )

    def run_novec() -> None:
        state["novec"] = solve_write_all(
            algorithm_cls(), n, p, adversary=fresh_adversary(),
            fast_path=True, fast_forward=fast_forward,
            compiled=compiled, vectorized=False,
        )

    has_novec = bool(vectorized) and _has_vectorized(algorithm_cls, n, p)
    novec_timing: Optional[TimingResult] = None
    if has_novec:
        # The vec/auto speedup is a *ratio* of these two legs, so they
        # are timed interleaved: block-by-block timing aliases slow
        # host drift into the ratio (see time_callables_interleaved).
        fast_timing, novec_timing = time_callables_interleaved(
            [run_fast, run_novec], repeats=repeats, warmup=warmup
        )
    else:
        fast_timing = time_callable(run_fast, repeats=repeats, warmup=warmup)
    # The per-phase breakdown comes from one separate instrumented run so
    # the timed repeats above stay free of perf_counter overhead.
    phases = PhaseCounters()
    solve_write_all(algorithm_cls(), n, p, adversary=fresh_adversary(),
                    fast_path=True, fast_forward=fast_forward,
                    compiled=compiled, vectorized=vectorized,
                    phase_counters=phases)
    fast_leg = PerfLeg(
        mode="auto" if vectorized == "auto" else "fast",
        timing=fast_timing, result=state["fast"], phases=phases,
    )
    legs = [fast_leg]

    noff_leg: Optional[PerfLeg] = None
    if fast_forward:

        def run_noff() -> None:
            state["noff"] = solve_write_all(
                algorithm_cls(), n, p, adversary=fresh_adversary(),
                fast_path=True, fast_forward=False, compiled=compiled,
            )

        noff_timing = time_callable(run_noff, repeats=repeats, warmup=warmup)
        noff_leg = PerfLeg(
            mode="noff", timing=noff_timing, result=state["noff"],
            phases=None,
        )
        legs.append(noff_leg)

    nokernel_leg: Optional[PerfLeg] = None
    if compiled and _has_kernel(algorithm_cls, n, p):

        def run_nokernel() -> None:
            state["nokernel"] = solve_write_all(
                algorithm_cls(), n, p, adversary=fresh_adversary(),
                fast_path=True, fast_forward=fast_forward, compiled=False,
            )

        nokernel_timing = time_callable(
            run_nokernel, repeats=repeats, warmup=warmup
        )
        nokernel_leg = PerfLeg(
            mode="nokernel", timing=nokernel_timing,
            result=state["nokernel"], phases=None,
        )
        legs.append(nokernel_leg)

    novec_leg: Optional[PerfLeg] = None
    if has_novec:
        novec_leg = PerfLeg(
            mode="novec", timing=novec_timing,
            result=state["novec"], phases=None,
        )
        legs.append(novec_leg)

    baseline_leg: Optional[PerfLeg] = None
    if include_baseline:

        def run_baseline() -> None:
            state["baseline"] = solve_write_all(
                algorithm_cls(), n, p, adversary=fresh_adversary(),
                fast_path=False, incremental_until=False,
                fast_forward=False, compiled=False,
            )

        baseline_timing = time_callable(
            run_baseline, repeats=repeats, warmup=warmup
        )
        baseline_leg = PerfLeg(
            mode="baseline", timing=baseline_timing,
            result=state["baseline"], phases=None,
        )
        legs.append(baseline_leg)

    _check_legs_agree(legs)
    return PerfComparison(
        algorithm=algorithm, n=n, p=p, fast=fast_leg, baseline=baseline_leg,
        noff=noff_leg, nokernel=nokernel_leg, novec=novec_leg,
        adversary=adversary, vectorized=vectorized,
    )


def _has_kernel(algorithm_cls, n: int, p: int) -> bool:
    """Whether this configuration would actually run a compiled kernel.

    Probes a throwaway instance (algorithms hold incidental state, so
    the timed legs always build their own) through the same trust guard
    and gating the runner uses.
    """
    probe = algorithm_cls()
    layout = probe.build_layout(n, p)
    return resolve_kernel(probe, layout, None, compiled=True) is not None


def _has_vectorized(algorithm_cls, n: int, p: int) -> bool:
    """Whether this configuration would actually run the vector lane.

    Mirrors :func:`_has_kernel` through ``resolve_vectorized``'s trust
    guard and gating; always False without the numpy extra.
    """
    if not HAVE_NUMPY:
        return False
    probe = algorithm_cls()
    layout = probe.build_layout(n, p)
    return resolve_vectorized(probe, layout, None, vectorized=True) is not None


def run_perf(
    configurations: List[Tuple[str, int, int]],
    repeats: int = 5,
    warmup: int = 1,
    include_baseline: bool = True,
    adversaries: Sequence[str] = (DEFAULT_ADVERSARY,),
    fast_forward: bool = True,
    compiled: bool = True,
    vectorized: "Union[bool, str]" = False,
) -> List[PerfComparison]:
    """Time every ``(algorithm, n, p)`` x adversary configuration."""
    return [
        run_comparison(
            algorithm, n, p,
            repeats=repeats, warmup=warmup,
            include_baseline=include_baseline,
            adversary=adversary,
            fast_forward=fast_forward,
            compiled=compiled,
            vectorized=vectorized,
        )
        for algorithm, n, p in configurations
        for adversary in adversaries
    ]


# --------------------------------------------------------------------- #
# repro-bench/1 export
# --------------------------------------------------------------------- #


def _leg_point(leg: PerfLeg, n: int, p: int) -> Dict[str, object]:
    result = leg.result
    return {
        "n": n, "p": p, "seed": 0,
        "solved": result.solved,
        "S": result.completed_work,
        "S_prime": result.charged_work,
        "F": result.pattern_size,
        "sigma": result.overhead_ratio,
        "ticks": result.ledger.ticks,
        "wall_s": round(leg.best_s, 6),
        "cached": False,
    }


def sweep_name(comparison: PerfComparison, leg: PerfLeg) -> str:
    """The report sweep naming one leg of one configuration.

    Fault-free comparisons keep the historical ``<algo>/<mode>`` names
    so existing baselines diff cleanly; adversarial ones are
    ``<algo>@<adversary>/<mode>``.
    """
    if comparison.adversary == DEFAULT_ADVERSARY:
        return f"{comparison.algorithm}/{leg.mode}"
    return f"{comparison.algorithm}@{comparison.adversary}/{leg.mode}"


def perf_report(
    comparisons: List[PerfComparison],
    tag: str,
    wall_s: float,
) -> Dict[str, object]:
    """Assemble a ``repro-bench/1`` report (scenario ``PERF_micro``).

    Each configuration contributes one sweep per timed leg (see
    :func:`sweep_name`); ``wall_s`` per point is the min-of-k best time,
    which is what the regression comparator bands.
    """
    sweeps: List[Dict[str, object]] = []
    for comparison in comparisons:
        legs = [comparison.fast]
        if comparison.noff is not None:
            legs.append(comparison.noff)
        if comparison.nokernel is not None:
            legs.append(comparison.nokernel)
        if comparison.novec is not None:
            legs.append(comparison.novec)
        if comparison.baseline is not None:
            legs.append(comparison.baseline)
        for leg in legs:
            record = _leg_point(leg, comparison.n, comparison.p)
            if leg is comparison.fast and comparison.vec_speedup is not None:
                # The headline ratio rides on the fast point so the
                # regression checker can validate it; absent in reports
                # written before the vectorized lane existed.
                record["vec_speedup"] = round(comparison.vec_speedup, 4)
            if leg is comparison.fast and comparison.auto_speedup is not None:
                # Same pattern for the adaptive-dispatch ratio (PR 8);
                # absent in reports written before --lane auto existed.
                record["auto_speedup"] = round(comparison.auto_speedup, 4)
            sweeps.append({
                "name": sweep_name(comparison, leg),
                "points": [record],
                "failures": [],
            })
    executed = sum(len(sweep["points"]) for sweep in sweeps)
    scenario = {
        "tag": "PERF_micro",
        "title": "simulator core micro-benchmark (fast vs baseline)",
        "source": "repro/perf/micro.py",
        "wall_s": round(wall_s, 6),
        "cache": {
            "hits": 0, "executed": executed, "failed": 0, "hit_rate": 0.0,
        },
        "sweeps": sweeps,
    }
    return bench_report(tag, [scenario], workers=1)


def describe_comparison(comparison: PerfComparison) -> str:
    """Multi-line human-readable summary of one configuration."""
    fast = comparison.fast
    scenario = (
        "" if comparison.adversary == DEFAULT_ADVERSARY
        else f" @{comparison.adversary}"
    )
    header = (
        f"{comparison.algorithm}(N={comparison.n}, "
        f"P={comparison.p}){scenario}: "
        f"{fast.mode} {fast.best_s * 1e3:.1f} ms "
        f"({fast.ticks_per_s:,.0f} ticks/s, "
        f"{fast.result.ledger.ticks} ticks, spread "
        f"{100.0 * fast.timing.spread:.0f}%)"
    )
    lines = [header]
    if comparison.noff is not None:
        noff = comparison.noff
        lines.append(
            f"  no-ff {noff.best_s * 1e3:.1f} ms "
            f"({noff.ticks_per_s:,.0f} ticks/s)  "
            f"ff-speedup {comparison.ff_speedup:.2f}x"
        )
    if comparison.nokernel is not None:
        nokernel = comparison.nokernel
        lines.append(
            f"  no-kernel {nokernel.best_s * 1e3:.1f} ms "
            f"({nokernel.ticks_per_s:,.0f} ticks/s)  "
            f"kernel-speedup {comparison.kernel_speedup:.2f}x"
        )
    if comparison.novec is not None:
        novec = comparison.novec
        ratio_label, ratio = (
            ("auto-speedup", comparison.auto_speedup)
            if comparison.vectorized == "auto"
            else ("vec-speedup", comparison.vec_speedup)
        )
        lines.append(
            f"  no-vec {novec.best_s * 1e3:.1f} ms "
            f"({novec.ticks_per_s:,.0f} ticks/s)  "
            f"{ratio_label} {ratio:.2f}x"
        )
    if comparison.baseline is not None:
        baseline = comparison.baseline
        lines.append(
            f"  baseline {baseline.best_s * 1e3:.1f} ms "
            f"({baseline.ticks_per_s:,.0f} ticks/s)  "
            f"speedup {comparison.speedup:.2f}x"
        )
    if fast.phases is not None and (fast.phases.ticks
                                    or fast.phases.fused_ticks):
        lines.append(f"  {fast.phases.describe()}")
    return "\n".join(lines)
