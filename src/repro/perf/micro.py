"""The ``python -m repro perf`` micro-benchmark: fast path vs baseline.

Times fault-free Write-All runs through two cores:

* **fast** — the machine's optimized tick loop (``fast_path=True``) with
  the incremental O(1) termination predicate;
* **baseline** — the reference tick implementation
  (``fast_path=False``) with the O(N) termination rescan, i.e. the
  pre-optimization core kept in-tree as the executable specification.

Both legs are timed with warmup + min-of-k repeats
(:mod:`repro.perf.timing`); the fast leg also collects per-phase tick
counters.  The paper-model outputs of the two legs (S, S', |F|, ticks,
solved) are asserted identical — a timing harness must never compare two
computations that diverged.

Results can be exported as a ``repro-bench/1`` report (scenario tag
``PERF_micro``) so ``benchmarks/check_regression.py`` can diff perf runs
over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import (
    AlgorithmV,
    AlgorithmVX,
    AlgorithmW,
    AlgorithmX,
    SnapshotAlgorithm,
    TrivialAssignment,
    solve_write_all,
)
from repro.core.runner import WriteAllResult
from repro.metrics.report import bench_report
from repro.perf.phases import PhaseCounters
from repro.perf.timing import TimingResult, time_callable

#: Algorithms runnable by the perf command (all fault-free here).
PERF_ALGORITHMS = {
    "trivial": TrivialAssignment,
    "W": AlgorithmW,
    "V": AlgorithmV,
    "X": AlgorithmX,
    "VX": AlgorithmVX,
    "snapshot": SnapshotAlgorithm,
}

#: The headline configuration: fault-free Write-All at N=4096, P=64.
DEFAULT_SIZE = (4096, 64)
DEFAULT_ALGORITHM = "X"


@dataclass(frozen=True)
class PerfLeg:
    """One timed core (fast or baseline) at one configuration."""

    mode: str  # "fast" | "baseline"
    timing: TimingResult
    result: WriteAllResult
    phases: Optional[PhaseCounters]

    @property
    def best_s(self) -> float:
        return self.timing.best_s

    @property
    def ticks_per_s(self) -> float:
        best = self.timing.best_s
        return self.result.ledger.ticks / best if best > 0 else float("inf")


@dataclass(frozen=True)
class PerfComparison:
    """Fast vs baseline at one (algorithm, n, p) configuration."""

    algorithm: str
    n: int
    p: int
    fast: PerfLeg
    baseline: Optional[PerfLeg]

    @property
    def speedup(self) -> Optional[float]:
        """Baseline-over-fast wall-clock ratio (higher is better)."""
        if self.baseline is None or self.fast.best_s <= 0:
            return None
        return self.baseline.best_s / self.fast.best_s


def _check_legs_agree(fast: WriteAllResult, baseline: WriteAllResult) -> None:
    pairs = [
        ("solved", fast.solved, baseline.solved),
        ("S", fast.completed_work, baseline.completed_work),
        ("S'", fast.charged_work, baseline.charged_work),
        ("|F|", fast.pattern_size, baseline.pattern_size),
        ("ticks", fast.ledger.ticks, baseline.ledger.ticks),
    ]
    mismatched = [
        f"{name}: fast={a!r} baseline={b!r}" for name, a, b in pairs if a != b
    ]
    if mismatched:
        raise RuntimeError(
            "fast and baseline cores diverged on "
            f"{fast.algorithm}(N={fast.n}, P={fast.p}) — refusing to "
            "report timings of different computations: "
            + "; ".join(mismatched)
        )


def run_comparison(
    algorithm: str,
    n: int,
    p: int,
    repeats: int = 5,
    warmup: int = 1,
    include_baseline: bool = True,
) -> PerfComparison:
    """Time one configuration through both cores."""
    try:
        algorithm_cls = PERF_ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(PERF_ALGORITHMS))
        raise ValueError(
            f"unknown perf algorithm {algorithm!r}; known: {known}"
        ) from None

    state: Dict[str, WriteAllResult] = {}

    def run_fast() -> None:
        state["fast"] = solve_write_all(algorithm_cls(), n, p, fast_path=True)

    fast_timing = time_callable(run_fast, repeats=repeats, warmup=warmup)
    # The per-phase breakdown comes from one separate instrumented run so
    # the timed repeats above stay free of perf_counter overhead.
    phases = PhaseCounters()
    solve_write_all(algorithm_cls(), n, p, fast_path=True,
                    phase_counters=phases)
    fast_leg = PerfLeg(
        mode="fast", timing=fast_timing, result=state["fast"], phases=phases
    )

    baseline_leg: Optional[PerfLeg] = None
    if include_baseline:

        def run_baseline() -> None:
            state["baseline"] = solve_write_all(
                algorithm_cls(), n, p,
                fast_path=False, incremental_until=False,
            )

        baseline_timing = time_callable(
            run_baseline, repeats=repeats, warmup=warmup
        )
        _check_legs_agree(state["fast"], state["baseline"])
        baseline_leg = PerfLeg(
            mode="baseline", timing=baseline_timing,
            result=state["baseline"], phases=None,
        )

    return PerfComparison(
        algorithm=algorithm, n=n, p=p, fast=fast_leg, baseline=baseline_leg
    )


def run_perf(
    configurations: List[Tuple[str, int, int]],
    repeats: int = 5,
    warmup: int = 1,
    include_baseline: bool = True,
) -> List[PerfComparison]:
    """Time every ``(algorithm, n, p)`` configuration."""
    return [
        run_comparison(
            algorithm, n, p,
            repeats=repeats, warmup=warmup,
            include_baseline=include_baseline,
        )
        for algorithm, n, p in configurations
    ]


# --------------------------------------------------------------------- #
# repro-bench/1 export
# --------------------------------------------------------------------- #


def _leg_point(leg: PerfLeg, n: int, p: int) -> Dict[str, object]:
    result = leg.result
    return {
        "n": n, "p": p, "seed": 0,
        "solved": result.solved,
        "S": result.completed_work,
        "S_prime": result.charged_work,
        "F": result.pattern_size,
        "sigma": result.overhead_ratio,
        "ticks": result.ledger.ticks,
        "wall_s": round(leg.best_s, 6),
        "cached": False,
    }


def perf_report(
    comparisons: List[PerfComparison],
    tag: str,
    wall_s: float,
) -> Dict[str, object]:
    """Assemble a ``repro-bench/1`` report (scenario ``PERF_micro``).

    Each configuration contributes a ``<algo>/fast`` sweep (and a
    ``<algo>/baseline`` sweep when the baseline leg ran); ``wall_s`` per
    point is the min-of-k best time, which is what the regression
    comparator bands.
    """
    sweeps: List[Dict[str, object]] = []
    for comparison in comparisons:
        legs = [comparison.fast]
        if comparison.baseline is not None:
            legs.append(comparison.baseline)
        for leg in legs:
            sweeps.append({
                "name": f"{comparison.algorithm}/{leg.mode}",
                "points": [_leg_point(leg, comparison.n, comparison.p)],
                "failures": [],
            })
    executed = sum(len(sweep["points"]) for sweep in sweeps)
    scenario = {
        "tag": "PERF_micro",
        "title": "simulator core micro-benchmark (fast vs baseline)",
        "source": "repro/perf/micro.py",
        "wall_s": round(wall_s, 6),
        "cache": {
            "hits": 0, "executed": executed, "failed": 0, "hit_rate": 0.0,
        },
        "sweeps": sweeps,
    }
    return bench_report(tag, [scenario], workers=1)


def describe_comparison(comparison: PerfComparison) -> str:
    """Multi-line human-readable summary of one configuration."""
    fast = comparison.fast
    header = (
        f"{comparison.algorithm}(N={comparison.n}, P={comparison.p}): "
        f"fast {fast.best_s * 1e3:.1f} ms "
        f"({fast.ticks_per_s:,.0f} ticks/s, "
        f"{fast.result.ledger.ticks} ticks, spread "
        f"{100.0 * fast.timing.spread:.0f}%)"
    )
    lines = [header]
    if comparison.baseline is not None:
        baseline = comparison.baseline
        lines.append(
            f"  baseline {baseline.best_s * 1e3:.1f} ms "
            f"({baseline.ticks_per_s:,.0f} ticks/s)  "
            f"speedup {comparison.speedup:.2f}x"
        )
    if fast.phases is not None and fast.phases.ticks:
        lines.append(f"  {fast.phases.describe()}")
    return "\n".join(lines)
