"""Tolerance-band comparison of two ``BENCH_*.json`` reports.

The model-level outputs of a benchmark point — ``solved``, ``S``,
``S'``, ``|F|``, ``ticks`` — are deterministic, so any difference
between a baseline and a candidate report is a semantics change and is
always an **error**.  Wall-clock per point is noisy and host-dependent,
so it is only flagged (as a perf regression) when the candidate exceeds
the baseline by more than a relative tolerance band, and only for points
slow enough to measure at all.

This is the engine behind ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Deterministic model-level fields that must match exactly.
MODEL_FIELDS = ("solved", "S", "S_prime", "F", "ticks")

#: Points faster than this (seconds) in the baseline are never banded —
#: their wall-clock is dominated by timer noise.
DEFAULT_MIN_WALL_S = 0.01

#: Default relative tolerance: candidate may be up to 2x the baseline
#: before a perf regression is flagged (generous on purpose: CI hosts
#: differ; tighten locally with --wall-tolerance).
DEFAULT_WALL_TOLERANCE = 1.0

PointKey = Tuple[str, str, int, int, int]


def _index_points(report: Dict[str, Any]) -> Dict[PointKey, Dict[str, Any]]:
    points: Dict[PointKey, Dict[str, Any]] = {}
    for scenario in report.get("scenarios", []):
        tag = scenario.get("tag")
        if tag is None:
            raise ValueError(
                f"report {report.get('tag', '?')!r} has a scenario "
                f"without a 'tag' key (titled "
                f"{scenario.get('title', '?')!r})"
            )
        for sweep in scenario.get("sweeps", []):
            name = sweep.get("name")
            if name is None:
                raise ValueError(
                    f"scenario {tag!r} has a sweep without a 'name' key"
                )
            for record in sweep.get("points", []):
                try:
                    key = (tag, name,
                           record["n"], record["p"], record["seed"])
                except KeyError as exc:
                    raise ValueError(
                        f"scenario {tag!r} sweep {name!r} has a point "
                        f"record missing the {exc.args[0]!r} key"
                    ) from None
                points[key] = record
    return points


def _scenario_tags(report: Dict[str, Any]) -> List[str]:
    return [
        scenario.get("tag", "?") for scenario in report.get("scenarios", [])
    ]


def _sweep_lane(name: str) -> str:
    """The lane suffix of a sweep name (``X@sched-sparse/auto`` -> ``auto``).

    Sweep names without a ``/`` (the experiment-driver scenarios) have
    no lane notion; they map to ``""`` and never participate in
    lane-set comparison.
    """
    if "/" not in name:
        return ""
    return name.rsplit("/", 1)[1]


def _lane_sets(points: Dict[PointKey, Dict[str, Any]]) -> Dict[str, set]:
    """Per-scenario set of lane suffixes appearing in the point index."""
    lanes: Dict[str, set] = {}
    for tag, name, _n, _p, _seed in points:
        lane = _sweep_lane(name)
        if lane:
            lanes.setdefault(tag, set()).add(lane)
    return lanes


@dataclass(frozen=True)
class Finding:
    """One comparison outcome worth reporting."""

    severity: str  # "error" | "warn" | "info"
    kind: str  # "model-mismatch" | "missing-point" | "wall-regression" | ...
    key: PointKey
    detail: str

    def render(self) -> str:
        scenario, sweep, n, p, seed = self.key
        where = f"{scenario}:{sweep} (N={n}, P={p}, seed={seed})"
        return f"[{self.severity}] {self.kind} at {where}: {self.detail}"


@dataclass
class RegressionReport:
    """Outcome of comparing a candidate report against a baseline."""

    baseline_tag: str
    candidate_tag: str
    compared: int = 0
    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warn"]

    @property
    def ok(self) -> bool:
        return not self.errors and not self.warnings

    @property
    def model_ok(self) -> bool:
        """No model-level errors (wall-clock warnings tolerated).

        This is the CI gate: deterministic paper-model fields must match
        exactly on any host, while wall-clock bands are advisory across
        heterogeneous machines.
        """
        return not self.errors

    def render(self) -> str:
        lines = [
            f"compared {self.compared} points: baseline tag "
            f"{self.baseline_tag!r} vs candidate tag {self.candidate_tag!r}"
        ]
        for finding in self.findings:
            lines.append("  " + finding.render())
        if self.ok:
            lines.append("  OK: no regressions")
        else:
            lines.append(
                f"  {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s)"
            )
        return "\n".join(lines)


def compare_reports(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    min_wall_s: float = DEFAULT_MIN_WALL_S,
) -> RegressionReport:
    """Diff ``candidate`` against ``baseline`` point by point.

    * baseline and candidate both carry a top-level ``backend`` key and
      they differ → one named ``backend-mismatch`` **error** — the two
      reports timed different dispatch fabrics, not different code;
      reports without the key (legacy) skip the check;
    * a baseline scenario's ``adversaries`` list names an adversary
      absent from :mod:`repro.faults.registry` → one named
      ``model-tag-missing`` **error** per name — the baseline measured
      a fault model this build no longer provides, so its points are
      unreproducible by construction; scenarios without the key
      (legacy reports) skip the check;
    * a baseline scenario entirely absent from the candidate → one
      **error** naming the scenario (instead of one error per missing
      point, or a raw ``KeyError``);
    * a baseline *lane* (the ``/<mode>`` sweep-name suffix) entirely
      absent from the candidate's scenario → one named
      ``lane-mismatch`` **error** per lane — e.g. comparing a
      ``--lane auto`` baseline against a scalar candidate — instead of
      a wall of per-point missing errors; candidate-only lanes are
      **info** (new coverage, the usual forward-compatible case);
    * a baseline point absent from the candidate → **error** (coverage
      lost);
    * any :data:`MODEL_FIELDS` difference → **error** (the simulation
      itself changed);
    * candidate wall_s above ``baseline * (1 + wall_tolerance)`` on a
      measurable, uncached point → **warn** (perf regression);
    * candidate-only points → **info** (new coverage).
    """
    if wall_tolerance < 0:
        raise ValueError(
            f"wall_tolerance must be >= 0, got {wall_tolerance}"
        )
    report = RegressionReport(
        baseline_tag=str(baseline.get("tag", "?")),
        candidate_tag=str(candidate.get("tag", "?")),
    )
    baseline_points = _index_points(baseline)
    candidate_points = _index_points(candidate)

    base_backend = baseline.get("backend")
    cand_backend = candidate.get("backend")
    if (base_backend is not None and cand_backend is not None
            and base_backend != cand_backend):
        # Model fields are backend-independent, but wall-clock bands
        # across executors (in-process vs a remote fleet) compare
        # dispatch fabrics, not code.  Name the problem instead of
        # emitting spurious wall-regression warnings.
        report.findings.append(Finding(
            severity="error", kind="backend-mismatch",
            key=("*", "*", 0, 0, 0),
            detail=(
                f"baseline ran on backend {base_backend!r}, candidate on "
                f"{cand_backend!r}; wall-clock comparison across backends "
                f"is meaningless — re-run both through the same backend"
            ),
        ))

    from repro.faults import registry as adversary_registry

    known_names = set(adversary_registry.names())
    for scenario in baseline.get("scenarios", []):
        for name in scenario.get("adversaries", []):
            if name in known_names:
                continue
            report.findings.append(Finding(
                severity="error", kind="model-tag-missing",
                key=(scenario.get("tag", "?"), "*", 0, 0, 0),
                detail=(
                    f"baseline scenario references adversary {name!r}, "
                    f"which is absent from the registry — its points "
                    f"cannot be reproduced by this build (known: "
                    f"{sorted(known_names)})"
                ),
            ))

    missing_scenarios = sorted(
        set(_scenario_tags(baseline)) - set(_scenario_tags(candidate))
    )
    for tag in missing_scenarios:
        report.findings.append(Finding(
            severity="error", kind="scenario-missing",
            key=(tag, "*", 0, 0, 0),
            detail=(
                f"scenario {tag!r} missing from candidate report "
                f"{report.candidate_tag!r}"
            ),
        ))

    baseline_lanes = _lane_sets(baseline_points)
    candidate_lanes = _lane_sets(candidate_points)
    missing_lanes = set()
    for tag, lanes in sorted(baseline_lanes.items()):
        if tag in missing_scenarios:
            continue
        for lane in sorted(lanes - candidate_lanes.get(tag, set())):
            missing_lanes.add((tag, lane))
            report.findings.append(Finding(
                severity="error", kind="lane-mismatch",
                key=(tag, f"*/{lane}", 0, 0, 0),
                detail=(
                    f"baseline has lane {lane!r} in scenario {tag!r}, "
                    f"candidate has "
                    f"{sorted(candidate_lanes.get(tag, set())) or 'none'} "
                    f"— was the candidate run with a different --lane?"
                ),
            ))
    new_lanes = set()
    for tag, lanes in sorted(candidate_lanes.items()):
        for lane in sorted(lanes - baseline_lanes.get(tag, set())):
            new_lanes.add((tag, lane))
            report.findings.append(Finding(
                severity="info", kind="new-lane",
                key=(tag, f"*/{lane}", 0, 0, 0),
                detail="lane absent from baseline (new coverage)",
            ))

    for key, base_record in sorted(baseline_points.items()):
        if key[0] in missing_scenarios:
            continue  # already reported once at scenario granularity
        if (key[0], _sweep_lane(key[1])) in missing_lanes:
            continue  # already reported once at lane granularity
        cand_record = candidate_points.get(key)
        if cand_record is None:
            report.findings.append(Finding(
                severity="error", kind="missing-point", key=key,
                detail="present in baseline, absent from candidate",
            ))
            continue
        report.compared += 1
        for fld in MODEL_FIELDS:
            if base_record.get(fld) != cand_record.get(fld):
                report.findings.append(Finding(
                    severity="error", kind="model-mismatch", key=key,
                    detail=(
                        f"{fld}: baseline={base_record.get(fld)!r} "
                        f"candidate={cand_record.get(fld)!r}"
                    ),
                ))
        base_wall = float(base_record.get("wall_s", 0.0))
        cand_wall = float(cand_record.get("wall_s", 0.0))
        measurable = (
            base_wall >= min_wall_s
            and not base_record.get("cached", False)
            and not cand_record.get("cached", False)
        )
        if measurable and cand_wall > base_wall * (1.0 + wall_tolerance):
            report.findings.append(Finding(
                severity="warn", kind="wall-regression", key=key,
                detail=(
                    f"wall_s {base_wall:.4f} -> {cand_wall:.4f} "
                    f"({cand_wall / base_wall:.2f}x, tolerance "
                    f"{1.0 + wall_tolerance:.2f}x)"
                ),
            ))

    for key in sorted(set(candidate_points) - set(baseline_points)):
        if (key[0], _sweep_lane(key[1])) in new_lanes:
            continue  # already reported once at lane granularity
        report.findings.append(Finding(
            severity="info", kind="new-point", key=key,
            detail="absent from baseline (new coverage)",
        ))
    return report
