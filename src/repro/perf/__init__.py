"""Profiling and micro-benchmark harness for the simulator core.

The paper's measures (S, S', sigma) are model-level and host-independent;
this package measures the *simulator itself* — wall-clock tick throughput
of the machine's hot loop — so core optimizations can be quantified and
guarded against regressions:

* :mod:`repro.perf.timing` — warmup/repeat/min-of-k wall-clock timing;
* :mod:`repro.perf.phases` — per-phase tick counters (collect /
  adversary / resolve / settle) filled in by the machine's fast path;
* :mod:`repro.perf.micro` — the ``python -m repro perf`` comparison of
  the optimized fast path against the pre-optimization baseline
  (reference tick implementation + O(N) termination rescan), emitting a
  ``repro-bench/1`` report;
* :mod:`repro.perf.profile_hook` — opt-in cProfile capture;
* :mod:`repro.perf.regression` — tolerance-band comparison of two
  ``BENCH_*.json`` reports (the engine behind
  ``benchmarks/check_regression.py``).
"""

from repro.perf.phases import PhaseCounters
from repro.perf.timing import TimingResult, time_callable

__all__ = ["PhaseCounters", "TimingResult", "time_callable"]
