"""Per-phase wall-clock counters for the machine's tick loop.

A :class:`PhaseCounters` instance handed to ``Machine(phase_counters=…)``
accumulates, across every fast-path tick, the wall-clock seconds spent in
the four tick phases:

* **collect** — reads + compute (write-set materialization);
* **adversary** — view construction, the decide() call, and the
  failure-validation / fairness / progress rulings (zero for passive
  ticks, which never build a view);
* **resolve** — CRCW write resolution and the memory commit;
* **settle** — work charging, processor advancement, and restarts.

Ticks executed inside a fused event-horizon window skip the four-phase
breakdown entirely (that is the point of the fused loop) and are counted
in ``fused_ticks`` instead, so ``ticks + fused_ticks`` is the run's true
tick total and the percentages describe only the instrumented
(non-fused) ticks.  Requesting phase counters therefore no longer
disables fusion.

Only the fast path is instrumented: the reference tick implementation is
the executable specification and stays free of timing hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class PhaseCounters:
    """Accumulated per-phase seconds plus the tick count they cover."""

    collect_s: float = 0.0
    adversary_s: float = 0.0
    resolve_s: float = 0.0
    settle_s: float = 0.0
    ticks: int = 0
    fused_ticks: int = 0

    @property
    def total_s(self) -> float:
        return self.collect_s + self.adversary_s + self.resolve_s + self.settle_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "collect_s": round(self.collect_s, 6),
            "adversary_s": round(self.adversary_s, 6),
            "resolve_s": round(self.resolve_s, 6),
            "settle_s": round(self.settle_s, 6),
            "total_s": round(self.total_s, 6),
            "ticks": self.ticks,
            "fused_ticks": self.fused_ticks,
        }

    def merge(self, other: "PhaseCounters") -> None:
        """Fold another run's counters into this one."""
        self.collect_s += other.collect_s
        self.adversary_s += other.adversary_s
        self.resolve_s += other.resolve_s
        self.settle_s += other.settle_s
        self.ticks += other.ticks
        self.fused_ticks += other.fused_ticks

    def describe(self) -> str:
        """One-line human-readable phase breakdown."""
        total = self.total_s
        fused = f" fused_ticks={self.fused_ticks}" if self.fused_ticks else ""
        if total <= 0.0:
            return f"ticks={self.ticks}{fused} (no phase time recorded)"
        parts = []
        for name, seconds in (
            ("collect", self.collect_s),
            ("adversary", self.adversary_s),
            ("resolve", self.resolve_s),
            ("settle", self.settle_s),
        ):
            parts.append(f"{name} {100.0 * seconds / total:.1f}%")
        return f"ticks={self.ticks}{fused} phases: " + ", ".join(parts)
