"""Warmup / repeat / min-of-k wall-clock timing.

Single-shot timings of a Python hot loop are dominated by allocator and
scheduler noise.  The standard remedy (as in krun-style harnesses and
``timeit``): run unmeasured warmup iterations first, then take the
*minimum* over k measured repeats — the minimum estimates the noise-free
cost, since external interference only ever adds time.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock samples of one benchmarked callable."""

    samples_s: List[float]
    warmup: int

    @property
    def best_s(self) -> float:
        """Minimum over the measured repeats (the headline number)."""
        return min(self.samples_s)

    @property
    def mean_s(self) -> float:
        return sum(self.samples_s) / len(self.samples_s)

    @property
    def spread(self) -> float:
        """(max - min) / min — a dimensionless noise indicator."""
        best = self.best_s
        if best <= 0.0:
            return 0.0
        return (max(self.samples_s) - best) / best


def time_callable(
    func: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
) -> TimingResult:
    """Time ``func()`` with warmup iterations and min-of-k repeats.

    ``func`` must be self-contained (rebuild its own state per call) so
    every invocation measures the same work.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        func()
    samples: List[float] = []
    for _ in range(repeats):
        start = perf_counter()
        func()
        samples.append(perf_counter() - start)
    return TimingResult(samples_s=samples, warmup=warmup)


def time_callables_interleaved(
    funcs: List[Callable[[], object]],
    repeats: int = 5,
    warmup: int = 1,
) -> List[TimingResult]:
    """Time several callables round-robin instead of block-by-block.

    When the *ratio* between two timings is the deliverable (the perf
    harness's speedup numbers), sequential min-of-k blocks alias slow
    host drift — thermal throttling, frequency wandering — into the
    ratio: whichever leg ran during the slow minutes loses ~10% through
    no fault of its own.  Interleaving the repeats exposes every
    callable to the same drift, so the mins it feeds into the ratio
    were taken under like conditions.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for func in funcs:
        for _ in range(warmup):
            func()
    samples: List[List[float]] = [[] for _ in funcs]
    for _ in range(repeats):
        for position, func in enumerate(funcs):
            start = perf_counter()
            func()
            samples[position].append(perf_counter() - start)
    return [
        TimingResult(samples_s=leg_samples, warmup=warmup)
        for leg_samples in samples
    ]
