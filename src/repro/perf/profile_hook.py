"""Opt-in cProfile capture for benchmark entry points."""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from typing import Iterator, Optional


@contextmanager
def maybe_profile(path: Optional[str], top: int = 30) -> Iterator[None]:
    """Profile the enclosed block when ``path`` is set.

    Writes the binary profile (loadable with :mod:`pstats` or snakeviz)
    to ``path`` and prints the top ``top`` functions by cumulative time.
    With ``path=None`` the block runs unprofiled at full speed.
    """
    if path is None:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        print(f"[profile] wrote {path}; top {top} by cumulative time:")
        stats.print_stats(top)
