"""Uniform argument validation helpers.

Raising early with a precise message keeps the machine core free of
scattered ``assert`` statements (which disappear under ``python -O``) and
gives test code a single error type to match on.
"""

from __future__ import annotations


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_index(value: int, size: int, name: str) -> int:
    """Validate ``0 <= value < size`` and return ``value``."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if not 0 <= value < size:
        raise IndexError(f"{name}={value} out of range [0, {size})")
    return value
