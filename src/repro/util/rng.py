"""Seeded randomness helpers.

All stochastic components (random adversaries, the randomized ACC
algorithm) accept either a seed or a ``random.Random`` instance.  Runs are
reproducible: the machine never consumes global random state.
"""

from __future__ import annotations

import random
from typing import Union

RandomLike = Union[int, random.Random, None]


def make_rng(seed_or_rng: RandomLike = None) -> random.Random:
    """Return a ``random.Random`` for ``seed_or_rng``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh generator seeded from entropy — only appropriate for
    interactive exploration, never inside tests).
    """
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def derive_seed(base_seed: int, *components: int) -> int:
    """Derive a stable sub-seed from a base seed and integer components.

    Used to give every processor / iteration an independent but
    reproducible random stream.
    """
    value = base_seed & 0xFFFFFFFFFFFFFFFF
    for component in components:
        value ^= (component + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        value = (value * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 31
    return value
