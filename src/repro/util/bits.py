"""Bit-level and power-of-two arithmetic helpers.

The paper assumes ``N`` is a power of two ("Nonpowers of 2 can be handled
using conventional padding techniques", Section 4) and algorithm X routes
processors down its progress tree using individual bits of the PID, most
significant bit first (appendix, Figure 5).  The helpers here implement
those conventions once so every algorithm shares identical semantics.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two ``>= value`` (``value`` must be positive)."""
    if value <= 0:
        raise ValueError(f"next_power_of_two requires a positive value, got {value}")
    return 1 << (value - 1).bit_length()


def ceil_log2(value: int) -> int:
    """``ceil(log2(value))`` for a positive integer ``value``."""
    if value <= 0:
        raise ValueError(f"ceil_log2 requires a positive value, got {value}")
    return (value - 1).bit_length()


def bit_length_of_power(value: int) -> int:
    """Exact ``log2(value)`` for a power of two; raises otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def ceil_div(numerator: int, denominator: int) -> int:
    """Ceiling integer division for non-negative numerators."""
    if denominator <= 0:
        raise ValueError(f"ceil_div requires a positive denominator, got {denominator}")
    return -(-numerator // denominator)


def bit_of(value: int, index: int) -> int:
    """The ``index``-th least significant bit of ``value`` (0 or 1)."""
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return (value >> index) & 1


def msb_first_bit(value: int, index: int, width: int) -> int:
    """Bit ``index`` of ``value`` in an MSB-first, ``width``-bit view.

    The paper's notation ``PID[log(where)]`` reads the PID as a
    ``log N``-bit binary string whose *most significant* bit is bit number
    0.  ``msb_first_bit(pid, h, log_n)`` returns that bit for depth ``h``.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if not 0 <= index < width:
        raise ValueError(f"bit index {index} out of range for width {width}")
    return (value >> (width - 1 - index)) & 1
