"""Small shared utilities used across the reproduction.

Nothing in this package is specific to the paper; it holds the generic
helpers (power-of-two arithmetic, bit manipulation, validation, seeded
randomness) that the PRAM substrate, the algorithms and the benchmark
harness all rely on.
"""

from repro.util.bits import (
    bit_of,
    bit_length_of_power,
    ceil_div,
    ceil_log2,
    is_power_of_two,
    msb_first_bit,
    next_power_of_two,
)
from repro.util.checks import require, require_index, require_positive
from repro.util.rng import derive_seed, make_rng

__all__ = [
    "bit_of",
    "bit_length_of_power",
    "ceil_div",
    "ceil_log2",
    "derive_seed",
    "is_power_of_two",
    "make_rng",
    "msb_first_bit",
    "next_power_of_two",
    "require",
    "require_index",
    "require_positive",
]
