"""Theorem 3.1's pigeonhole-halving adversary.

    "All N processors are revived.  For the upcoming cycle, the
    adversary determines the processors assignment to array elements.
    Let U >= 1 be the number of unvisited array elements.  By the
    pigeonhole principle, for any processor assignment to the U
    elements, there is a set of floor(U/2) unvisited elements with no
    more than ceil(P/U) processors assigned to them [per element].  The
    adversary chooses half of the remaining previously unvisited array
    locations that would have had no more than [that many] processors
    assigned to them, and it fails these processors, allowing all
    others to proceed."

Each round at most half of the unvisited elements get visited while at
least floor(N/2) processors complete their cycle, so the strategy
sustains log N rounds and forces ``S = Omega(N log N)`` against *any*
Write-All algorithm — even one that can read all of shared memory at
unit cost (the E2 benchmark runs it against the Theorem 3.2 snapshot
algorithm, where the bound is tight).

The adversary needs to know where the Write-All array lives; it reads
``x_base`` and ``n`` from the layout object the runner places in the
machine context.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.faults.base import Adversary
from repro.pram.failures import BEFORE_WRITES, Decision
from repro.pram.view import TickView


class HalvingAdversary(Adversary):
    """Fails the processors aimed at the least-covered unvisited half."""

    # Potentially acts every tick while its kill set is non-empty;
    # the inherited per-tick horizon (quiet_until = tick + 1) is the
    # provably-earliest next event.
    def decide(self, view: TickView) -> Decision:
        layout = view.context.get("layout")
        if layout is None:
            raise ValueError(
                "HalvingAdversary requires context['layout'] with "
                "x_base and n attributes"
            )
        x_base = layout.x_base
        n = layout.n

        restarts = frozenset(view.failed_pids)

        unvisited = [
            index for index in range(n) if view.memory.read(x_base + index) == 0
        ]
        if len(unvisited) <= 1:
            # Endgame: let the algorithm finish the last element.
            return Decision(restarts=restarts)

        # Which pending processors are about to visit which unvisited cell?
        assigned: Dict[int, List[int]] = {index: [] for index in unvisited}
        for pid, pending in view.pending.items():
            for write in pending.writes:
                index = write.address - x_base
                if index in assigned and write.value != 0:
                    assigned[index].append(pid)

        # Least-covered half of the unvisited elements (stable by index).
        by_load = sorted(unvisited, key=lambda index: (len(assigned[index]), index))
        doomed_cells = by_load[: len(unvisited) // 2]
        victims: Set[int] = set()
        for index in doomed_cells:
            victims.update(assigned[index])

        # Keep the progress condition honest: never interrupt every
        # pending cycle (the survivors are precisely the processors
        # covering the well-covered half, which is the point).
        if victims and victims >= set(view.pending):
            spared = min(victims)
            victims.discard(spared)

        failures = {pid: BEFORE_WRITES for pid in sorted(victims)}
        return Decision(failures=failures, restarts=restarts)
