"""The paper's stalking adversaries (Theorem 4.8 and Section 5).

**Against algorithm X** (Theorem 4.8): processor 0 is allowed to traverse
the progress tree in post-order, left to right.  Any other processor is
failed the moment it would perform leaf work at an unfinished leaf other
than the one processor 0 currently occupies; it is restarted once its
stored position becomes harmless (its leaf got finished, or it sits at
processor 0's leaf).  The restarted processors travel to the new work
frontier — completing travel cycles that are charged to S — only to be
stopped again at the next leaf.  This realizes the recursion
``S(N) = 3 * S(N/2) + O(N log N)`` (left subtree with half the
processors, then everybody migrates right and the right subtree costs
twice the half-size work by Lemma 4.5), forcing
``S = Omega(N^{log 3}) ~ N^1.585`` with ``P = N``.

**Against ACC** (Section 5): "choosing a single leaf in a binary tree
employed by ACC, and failing all processors that touch that leaf until
only one processor remains in the fail-stop case, or until all
processors simultaneously touch the leaf in the fail-stop/restart
case."  Randomization does not help against this on-line strategy; the
same algorithm under an *off-line* random pattern is efficient.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.faults.base import Adversary
from repro.pram.failures import BEFORE_WRITES, Decision
from repro.pram.view import TickView


def _layout_from(view: TickView, *attributes: str) -> object:
    layout = view.context.get("layout")
    if layout is None:
        raise ValueError(
            f"{attributes and attributes[0]}: adversary requires "
            "context['layout']"
        )
    for attribute in attributes:
        if not hasattr(layout, attribute):
            raise ValueError(
                f"layout lacks attribute {attribute!r} required by the adversary"
            )
    return layout


class StalkingAdversaryX(Adversary):
    """Theorem 4.8's post-order stalker against algorithm X.

    Requires a layout exposing ``n``, ``x_base`` (the Write-All array) and
    ``w_base`` (algorithm X's shared position array, ``w[pid]`` holding
    the heap index of the processor's current progress-tree node; leaves
    are heap indices ``>= n``).
    """

    # Fully adaptive (tracks the leader's position every tick), so the
    # inherited per-tick event horizon (quiet_until = tick + 1) stands.

    def decide(self, view: TickView) -> Decision:
        layout = _layout_from(view, "n", "x_base", "w_base")
        n = layout.n
        x_base = layout.x_base
        w_base = layout.w_base

        # Where is processor 0 working?  (None once it halted/exited.)
        leader_element: Optional[int] = None
        position_of_leader = view.memory.read(w_base + 0)
        if position_of_leader >= n:
            leader_element = position_of_leader - n

        failures = {}
        for pid, pending in view.pending.items():
            if pid == 0:
                continue
            for write in pending.writes:
                element = write.address - x_base
                if 0 <= element < n and element != leader_element:
                    if view.memory.read(x_base + element) == 0:
                        failures[pid] = BEFORE_WRITES
                        break

        restarts: Set[int] = set()
        for pid in view.failed_pids:
            position = view.memory.read(w_base + pid)
            if position < n or position >= 2 * n:
                # Interior node, uninitialized, or exited: travelling is
                # harmless — revive.
                restarts.add(pid)
                continue
            element = position - n
            if view.memory.read(x_base + element) == 1 or element == leader_element:
                restarts.add(pid)

        return Decision(failures=failures, restarts=frozenset(restarts))


class AccStalker(Adversary):
    """Section 5's stalker against the randomized ACC algorithm.

    Targets a single element of the Write-All array (by default the last
    one) and fails every processor about to write it.  With restarts
    enabled the element is only completed when *every* live processor
    attempts it in the same tick (or when a lone survivor attempts it);
    wrap this adversary in :class:`~repro.faults.budget.NoRestartAdversary`
    for the fail-stop variant, where the stalker kills touchers until a
    single processor remains.
    """

    # Adaptive per tick (watches every pending write set), so the
    # inherited per-tick event horizon (quiet_until = tick + 1) stands.

    def __init__(
        self,
        target: Optional[int] = None,
        stagger: int = 3,
        fail_stop: bool = False,
    ) -> None:
        if stagger < 1:
            raise ValueError(f"stagger must be >= 1, got {stagger}")
        self.target = target
        self.stagger = stagger
        #: Fail-stop play (paper: "failing all processors that touch that
        #: leaf until only one processor remains"): when every live
        #: processor touches the target at once, kill all but one instead
        #: of conceding.  Wrap in NoRestartAdversary to suppress revivals.
        self.fail_stop = fail_stop

    def _target_element(self, n: int) -> int:
        return self.target if self.target is not None else n - 1

    def decide(self, view: TickView) -> Decision:
        layout = _layout_from(view, "n", "x_base")
        n = layout.n
        x_base = layout.x_base
        target = self._target_element(n)
        target_address = x_base + target

        if view.memory.read(target_address) != 0:
            # Target already done; stand down, revive everyone.
            return Decision(restarts=frozenset(view.failed_pids))

        touchers = sorted(
            pid
            for pid, pending in view.pending.items()
            if pending.writes_to(target_address)
        )
        alive = set(view.pending)
        non_touchers = alive - set(touchers)

        failures = {}
        if touchers and non_touchers:
            # Someone else keeps the progress condition; kill all touchers.
            failures = {pid: BEFORE_WRITES for pid in touchers}
        elif touchers and not non_touchers and len(touchers) > 1:
            if self.fail_stop:
                # Fail-stop play: whittle the crew down to one survivor.
                failures = {pid: BEFORE_WRITES for pid in touchers[1:]}
            # Restart play: everybody is at the target simultaneously —
            # the adversary has lost this round, let them through
            # (failing all would violate progress anyway).
        # A lone toucher is always allowed through (progress condition).

        # Staggered restarts: reviving every victim in the same tick would
        # hand the algorithm a synchronization gift (the lock-step restart
        # cohort reaches the target simultaneously).  A real on-line
        # adversary restarts them out of phase.
        restarts = frozenset(
            pid
            for pid in view.failed_pids
            if view.time % self.stagger == pid % self.stagger
        )
        return Decision(failures=failures, restarts=restarts)
