"""Trivial adversaries used as baselines and in tests."""

from __future__ import annotations

from repro.faults.base import QUIET_FOREVER, Adversary
from repro.pram.failures import BEFORE_WRITES, Decision
from repro.pram.view import TickView


class NoFailures(Adversary):
    """The failure-free PRAM (the classical model)."""

    online = False
    # Never acts, so the machine may take its no-adversary fast path.
    passive = True

    def decide(self, view: TickView) -> Decision:
        return Decision.none()

    def quiet_until(self, tick: int) -> int:
        # Redundant with `passive` (the machine already skips passive
        # adversaries wholesale) but keeps the protocol uniform.
        return QUIET_FOREVER


class SinglePidKiller(Adversary):
    """Permanently fails one processor at a given tick.

    The smallest non-trivial failure pattern (|F| = 1); used to check
    that algorithms survive losing a specific processor, including PID 0
    (no algorithm may rely on a distinguished immortal processor).
    """

    def __init__(self, pid: int, at_tick: int = 1) -> None:
        self.pid = pid
        self.at_tick = at_tick

    def quiet_until(self, tick: int) -> int:
        return self.at_tick if tick < self.at_tick else QUIET_FOREVER

    def decide(self, view: TickView) -> Decision:
        if view.time == self.at_tick and self.pid in view.pending:
            return Decision.fail([self.pid], BEFORE_WRITES)
        return Decision.none()
