"""Trivial adversaries used as baselines and in tests."""

from __future__ import annotations

from repro.faults.base import Adversary
from repro.pram.failures import BEFORE_WRITES, Decision
from repro.pram.view import TickView


class NoFailures(Adversary):
    """The failure-free PRAM (the classical model)."""

    online = False
    # Never acts, so the machine may take its no-adversary fast path.
    passive = True

    def decide(self, view: TickView) -> Decision:
        return Decision.none()


class SinglePidKiller(Adversary):
    """Permanently fails one processor at a given tick.

    The smallest non-trivial failure pattern (|F| = 1); used to check
    that algorithms survive losing a specific processor, including PID 0
    (no algorithm may rely on a distinguished immortal processor).
    """

    def __init__(self, pid: int, at_tick: int = 1) -> None:
        self.pid = pid
        self.at_tick = at_tick

    def decide(self, view: TickView) -> Decision:
        if view.time == self.at_tick and self.pid in view.pending:
            return Decision.fail([self.pid], BEFORE_WRITES)
        return Decision.none()
