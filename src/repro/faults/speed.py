"""Adversarial heterogeneous processor speeds (Zavou & Fernández Anta).

In the latency-heterogeneity model the processors are not uniformly
fast: a processor in speed class ``k`` performs useful work only every
``k``-th time step.  The adversary picks the class assignment.  This is
not expressible with fail/restart choreography — a KS91 restart erases
private state and re-enters the program from the top, whereas a slow
processor merely *waits* and then continues where it was — so the
machine grew a third decision channel, ``Decision.stalls``: a stalled
pending cycle is deferred (not executed, not charged, not a failure)
and re-attempted with fresh reads on the next permitted tick.

:class:`SpeedClassAdversary` assigns classes round-robin over a seeded
rotation, so every run is deterministic in the seed and roughly
``P / len(classes)`` processors land in each class.
"""

from __future__ import annotations

from typing import Tuple

from repro.faults.base import Adversary
from repro.pram.failures import Decision


class SpeedClassAdversary(Adversary):
    """Stall each processor so class-k PIDs advance every k-th tick.

    ``classes`` is the speed-class menu (each entry a positive integer;
    1 = full speed); PID ``i`` gets ``classes[(i + seed) % len(classes)]``.
    On tick ``t`` a class-``k`` processor's pending cycle is stalled
    unless ``t % k == 0``.  If a tick would stall every pending cycle,
    the adversary spares the lowest stalled PID itself (keeping the
    paper's zero-veto discipline: progress holds by construction).

    Stalls never enter the failure pattern, so ``|F|`` stays 0 under
    this adversary alone — the cost shows up purely as parallel time.
    """

    online = False

    def __init__(
        self, classes: Tuple[int, ...] = (1, 2, 4), seed: int = 0
    ) -> None:
        classes = tuple(classes)
        if not classes:
            raise ValueError("classes must be non-empty")
        for entry in classes:
            if not isinstance(entry, int) or isinstance(entry, bool) \
                    or entry < 1:
                raise ValueError(
                    f"speed classes must be integers >= 1, got {entry!r}"
                )
        self.classes = classes
        self.seed = seed

    def class_of(self, pid: int) -> int:
        """The speed class assigned to ``pid``."""
        return self.classes[(pid + self.seed) % len(self.classes)]

    def decide(self, view) -> Decision:
        time = view.time
        stalled = [
            pid for pid in view.pending if time % self.class_of(pid) != 0
        ]
        if not stalled:
            return Decision.none()
        if len(stalled) == len(view.pending):
            # Every pending cycle would be deferred; spare the lowest
            # PID so one cycle completes (progress by construction,
            # same tie-break the machine's veto would use).
            stalled.remove(min(stalled))
            if not stalled:
                return Decision.none()
        return Decision.stall(stalled)
