"""The unified adversary registry: names, factories, and model tags.

Single source of truth for every surface that enumerates adversaries —
the CLI's ``--adversary`` choices, the bench scenarios, the fuzz
driver's adversary draws, and the sweep factories' named vocabulary all
derive from :data:`REGISTRY` instead of keeping hand-copied lists.

Each entry carries **model tags** placing the adversary in a fault
model from the literature:

* ``fail-stop-restart`` — KS91's restartable fail-stop processors (the
  source paper's model; every legacy adversary lives here);
* ``static-proc`` — Chlebus–Gasieniec–Pelc static processor faults
  (dead at the start, forever; no restarts);
* ``static-mem`` — CGP static memory faults (dead cells whose writes
  vanish and whose reads return a poison sentinel);
* ``persistent-mem`` — Blelloch et al.'s Parallel Persistent Memory
  model (crashes erase private state unless checkpointed; see
  :class:`repro.simulation.persistent.CheckpointPolicy`);
* ``hetero-speed`` — Zavou & Fernández Anta's latency heterogeneity
  (adversarial per-processor speed classes).

``fuzzable`` marks entries the fuzz driver may draw: layout-agnostic
adversaries that are safe under arbitrary generated programs.  Entries
that poison memory cells (``static-mem``) or assume a Write-All layout
are excluded — generated programs have no fault-routing discipline.

Registering a new adversary means adding one :class:`AdversaryEntry`
here (and a :data:`CLASS_TAGS` row for its class); the CI completeness
test (``tests/faults/test_registry.py``) fails if an ``Adversary``
subclass in :mod:`repro.faults` is missing from :data:`CLASS_TAGS` or a
registered name does not round-trip through
:func:`repro.experiments.factories.build_named_adversary`.

This module lives in the faults layer (it imports nothing above it), so
both :mod:`repro.experiments.factories` and the CLI can import it
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type

from repro.faults.base import Adversary, ScheduledAdversary
from repro.faults.budget import FailureBudgetAdversary, NoRestartAdversary
from repro.faults.compose import PhaseSwitchAdversary, UnionAdversary
from repro.faults.halving import HalvingAdversary
from repro.faults.random_adversary import BurstAdversary, RandomAdversary
from repro.faults.replay import RecordingAdversary
from repro.faults.simple import NoFailures, SinglePidKiller
from repro.faults.speed import SpeedClassAdversary
from repro.faults.stalking import AccStalker, StalkingAdversaryX
from repro.faults.starver import IterationStarver
from repro.faults.static import StaticFaultAdversary
from repro.faults.targeted import AdaptiveLoadAdversary, CellGuardAdversary
from repro.faults.thrashing import ThrashingAdversary

#: The model-tag vocabulary (ordered for display).
MODEL_TAGS: Tuple[str, ...] = (
    "fail-stop-restart",
    "static-proc",
    "static-mem",
    "persistent-mem",
    "hetero-speed",
)

#: Builder protocol: ``(fail, restart_prob, seed) -> adversary``.  The
#: two probabilities parameterize only the stochastic entries; the rest
#: ignore them (same contract the CLI flags always had).
Builder = Callable[[float, float, int], Adversary]


@dataclass(frozen=True)
class AdversaryEntry:
    """One registry row: a named adversary plus its model placement."""

    name: str
    tags: Tuple[str, ...]
    source: str
    summary: str
    builder: Builder
    fuzzable: bool = False

    def build(self, fail: float = 0.1, restart_prob: float = 0.3,
              seed: int = 0) -> Adversary:
        return self.builder(fail, restart_prob, seed)


def _sched_sparse(seed: int, events: int = 8, gap: int = 400,
                  start: int = 50, downtime: int = 7,
                  victims: int = 4) -> ScheduledAdversary:
    """The sparse offline schedule (mirrors factories.SparseSchedule)."""
    schedule = {}
    for k in range(events):
        base = start + gap * k + seed
        schedule[base] = ([k % victims], [])
        schedule[base + downtime] = ([], [k % victims])
    return ScheduledAdversary(schedule)


REGISTRY: Dict[str, AdversaryEntry] = {}


def _register(entry: AdversaryEntry) -> None:
    if entry.name in REGISTRY:
        raise ValueError(f"duplicate adversary name {entry.name!r}")
    for tag in entry.tags:
        if tag not in MODEL_TAGS:
            raise ValueError(
                f"adversary {entry.name!r} has unknown model tag {tag!r}; "
                f"known: {MODEL_TAGS}"
            )
    if not entry.tags:
        raise ValueError(f"adversary {entry.name!r} has no model tags")
    REGISTRY[entry.name] = entry


# --------------------------------------------------------------------- #
# KS91 fail-stop/restart entries (the legacy vocabulary, names frozen)
# --------------------------------------------------------------------- #

_register(AdversaryEntry(
    "none", ("fail-stop-restart",), "—",
    "failure-free PRAM baseline",
    lambda fail, restart_prob, seed: NoFailures(),
    fuzzable=True,
))
_register(AdversaryEntry(
    "random", ("fail-stop-restart",), "[KPS 90]-style",
    "i.i.d. per-tick failures and restarts",
    lambda fail, restart_prob, seed: RandomAdversary(
        fail, restart_prob, seed=seed
    ),
    fuzzable=True,
))
_register(AdversaryEntry(
    "crash", ("fail-stop-restart",), "[KS 89]",
    "random crashes, no restarts (fail-stop limit of KS91)",
    lambda fail, restart_prob, seed: NoRestartAdversary(
        RandomAdversary(fail, seed=seed)
    ),
    fuzzable=True,
))
_register(AdversaryEntry(
    "thrashing", ("fail-stop-restart",), "Example 2.2",
    "read-then-mass-fail churn separating S from S'",
    lambda fail, restart_prob, seed: ThrashingAdversary(),
    fuzzable=True,
))
_register(AdversaryEntry(
    "halving", ("fail-stop-restart",), "Theorem 3.1",
    "pigeonhole halving strategy (Omega(N log N) lower bound)",
    lambda fail, restart_prob, seed: HalvingAdversary(),
    fuzzable=True,
))
_register(AdversaryEntry(
    "stalker", ("fail-stop-restart",), "Theorem 4.8",
    "post-order stalker driving algorithm X to ~N^{log 3}",
    lambda fail, restart_prob, seed: StalkingAdversaryX(),
))
_register(AdversaryEntry(
    "starver", ("fail-stop-restart",), "Section 4.1",
    "iteration starver (non-termination of pure V)",
    lambda fail, restart_prob, seed: IterationStarver(),
))
_register(AdversaryEntry(
    "acc-stalker", ("fail-stop-restart",), "Section 5",
    "element guard against the randomized ACC algorithm",
    lambda fail, restart_prob, seed: AccStalker(),
))
_register(AdversaryEntry(
    "burst", ("fail-stop-restart",), "—",
    "periodic mass failure and revival",
    lambda fail, restart_prob, seed: BurstAdversary(
        period=3, fraction=0.5, downtime=1
    ),
    fuzzable=True,
))
_register(AdversaryEntry(
    "sched-sparse", ("fail-stop-restart",), "Sec 5 (off-line)",
    "sparse offline fail/restart schedule (event-horizon regime)",
    lambda fail, restart_prob, seed: _sched_sparse(seed),
    fuzzable=True,
))

# --------------------------------------------------------------------- #
# static faults (Chlebus–Gasieniec–Pelc)
# --------------------------------------------------------------------- #

_register(AdversaryEntry(
    "static-proc", ("static-proc",),
    "Chlebus–Gasieniec–Pelc",
    "kills a seeded 25% of processors at tick 1, forever",
    lambda fail, restart_prob, seed: StaticFaultAdversary(
        dead_frac=0.25, seed=seed
    ),
))
_register(AdversaryEntry(
    "static-mem", ("static-proc", "static-mem"),
    "Chlebus–Gasieniec–Pelc",
    "25% dead processors plus 25% dead Write-All cells (poisoned)",
    lambda fail, restart_prob, seed: StaticFaultAdversary(
        dead_frac=0.25, mem_frac=0.25, seed=seed
    ),
))

# --------------------------------------------------------------------- #
# persistent memory (Blelloch et al. PPM)
# --------------------------------------------------------------------- #

_register(AdversaryEntry(
    "pmem-churn", ("persistent-mem", "fail-stop-restart"),
    "Blelloch et al. PPM",
    "i.i.d. crash/restart churn for checkpointed persistent runs",
    lambda fail, restart_prob, seed: RandomAdversary(
        fail, restart_prob, seed=seed
    ),
))

# --------------------------------------------------------------------- #
# heterogeneous speeds (Zavou & Fernández Anta)
# --------------------------------------------------------------------- #

_register(AdversaryEntry(
    "speed-classes", ("hetero-speed",),
    "Zavou & Fernández Anta",
    "seeded speed classes: class-k PIDs advance every k-th tick",
    lambda fail, restart_prob, seed: SpeedClassAdversary(seed=seed),
    fuzzable=True,
))


# --------------------------------------------------------------------- #
# queries (the enumeration points every surface derives from)
# --------------------------------------------------------------------- #

def names() -> Tuple[str, ...]:
    """Every registered adversary name, sorted."""
    return tuple(sorted(REGISTRY))

def names_for_tag(tag: str) -> Tuple[str, ...]:
    """Registered names carrying ``tag`` (sorted); unknown tags raise."""
    if tag not in MODEL_TAGS:
        raise ValueError(
            f"unknown model tag {tag!r}; known: {sorted(MODEL_TAGS)}"
        )
    return tuple(
        sorted(name for name, entry in REGISTRY.items()
               if tag in entry.tags)
    )

def fuzz_names() -> Tuple[str, ...]:
    """Names the fuzz driver may draw, in registration order.

    Registration order (not sorted) so appending a new entry extends
    the draw table instead of permuting it.
    """
    return tuple(
        name for name, entry in REGISTRY.items() if entry.fuzzable
    )

def tags_for(name: str) -> Tuple[str, ...]:
    return get(name).tags

def get(name: str) -> AdversaryEntry:
    try:
        return REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown adversary {name!r}; known: {sorted(REGISTRY)}"
        ) from None

def build(name: str, fail: float = 0.1, restart_prob: float = 0.3,
          seed: int = 0) -> Adversary:
    """Build one adversary by registered name."""
    return get(name).build(fail, restart_prob, seed)


# --------------------------------------------------------------------- #
# class-level model placement (CI completeness check)
# --------------------------------------------------------------------- #

#: Every ``Adversary`` subclass in :mod:`repro.faults` must appear here
#: with at least one model tag — including wrappers and test utilities —
#: so a new adversary class cannot ship without declaring which fault
#: model it belongs to.  ``tests/faults/test_registry.py`` discovers
#: subclasses by walking the package and diffs against this table.
CLASS_TAGS: Dict[Type[Adversary], Tuple[str, ...]] = {
    NoFailures: ("fail-stop-restart",),
    SinglePidKiller: ("fail-stop-restart",),
    ScheduledAdversary: ("fail-stop-restart",),
    RandomAdversary: ("fail-stop-restart", "persistent-mem"),
    BurstAdversary: ("fail-stop-restart",),
    ThrashingAdversary: ("fail-stop-restart",),
    HalvingAdversary: ("fail-stop-restart",),
    StalkingAdversaryX: ("fail-stop-restart",),
    AccStalker: ("fail-stop-restart",),
    IterationStarver: ("fail-stop-restart",),
    CellGuardAdversary: ("fail-stop-restart",),
    AdaptiveLoadAdversary: ("fail-stop-restart",),
    RecordingAdversary: ("fail-stop-restart",),
    NoRestartAdversary: ("fail-stop-restart", "static-proc"),
    FailureBudgetAdversary: ("fail-stop-restart",),
    UnionAdversary: ("fail-stop-restart",),
    PhaseSwitchAdversary: ("fail-stop-restart",),
    StaticFaultAdversary: ("static-proc", "static-mem"),
    SpeedClassAdversary: ("hetero-speed",),
}


def class_tags_for(cls: Type[Adversary]) -> Optional[Tuple[str, ...]]:
    """The model tags declared for an adversary class, or ``None``."""
    return CLASS_TAGS.get(cls)
