"""The iteration starver — algorithm V's nemesis (Section 4.1).

    "However this algorithm may not terminate if the adversary does not
    allow any of the processors that were alive at the beginning of an
    iteration to complete that iteration.  Even if the extended
    algorithm were to terminate, its completed work is not bounded by a
    function of N and P."

The strategy stays entirely inside the model: fail every processor the
moment it attempts a shared-memory *write*, and let the read-only
polling cycles of the waiters complete — they satisfy the progress
condition (some update cycle completes at every tick) without ever
advancing the algorithm.  When every pending cycle happens to carry a
write, one processor is spared on a rotating schedule so that no single
processor strings together enough spared cycles to cross an allocation
phase.  Against algorithm V this starves the Write-All array forever
while completed work grows linearly in time — unbounded in N and P.

(Algorithm X is immune: a vetoed x-write eventually lands because X's
work cycles ARE its progress; this adversary exists to exhibit V's
non-termination and the value of interleaving — Theorem 4.9.)
"""

from __future__ import annotations

from repro.faults.base import Adversary
from repro.pram.failures import BEFORE_WRITES, Decision
from repro.pram.view import TickView


class IterationStarver(Adversary):
    """Fails every write attempt; restarts victims immediately."""

    # Reacts to per-tick cycle labels, so it may act on any tick —
    # the inherited per-tick horizon (quiet_until = tick + 1) stands.
    def decide(self, view: TickView) -> Decision:
        writers = sorted(
            pid for pid, pending in view.pending.items() if pending.writes
        )
        failures = {pid: BEFORE_WRITES for pid in writers}
        if failures and set(failures) >= set(view.pending):
            # Every pending cycle writes: spare one on a rotating
            # schedule (never the same processor twice in a row).
            spared = writers[view.time % len(writers)]
            del failures[spared]
        restarts = frozenset(view.failed_pids)
        return Decision(failures=failures, restarts=restarts)
