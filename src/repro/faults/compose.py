"""Adversary composition: unions and phase switches."""

from __future__ import annotations

from typing import Sequence

from repro.faults.base import Adversary, quiet_horizon
from repro.pram.failures import Decision
from repro.pram.view import TickView


class UnionAdversary(Adversary):
    """Merges the decisions of several adversaries.

    Later adversaries' failure verdicts win on overlapping PIDs; restart
    sets are unioned.  Useful to combine, e.g., a random background
    failure process with a targeted stalker.
    """

    def __init__(self, members: Sequence[Adversary]) -> None:
        if not members:
            raise ValueError("UnionAdversary needs at least one member")
        self.members = list(members)

    def reset(self) -> None:
        for member in self.members:
            member.reset()

    def quiet_until(self, tick: int) -> int:
        # The union acts whenever any member might: the earliest member
        # horizon wins.  A composed Tracer returns tick + 1 here, which
        # correctly pins the whole union to tick-exact consults.
        return min(quiet_horizon(member, tick) for member in self.members)

    def decide(self, view: TickView) -> Decision:
        merged = Decision.none()
        for member in self.members:
            merged = merged.merged_with(member.decide(view))
        # A union can restart a pid another member failed this very tick;
        # the machine handles that (fail-then-restart within a tick is a
        # legal pattern).  But restarting a pid that is neither failed nor
        # failing now would be invalid — filter those.
        failed_now = set(view.failed_pids) | set(merged.failures)
        restarts = frozenset(pid for pid in merged.restarts if pid in failed_now)
        return Decision(failures=merged.failures, restarts=restarts)


class PhaseSwitchAdversary(Adversary):
    """Runs one adversary until a tick threshold, another afterwards.

    Models regime changes (quiet start, then a failure storm) used by the
    crossover benchmarks.
    """

    def __init__(self, first: Adversary, second: Adversary, switch_tick: int) -> None:
        if switch_tick < 1:
            raise ValueError(f"switch_tick must be >= 1, got {switch_tick}")
        self.first = first
        self.second = second
        self.switch_tick = switch_tick

    def quiet_until(self, tick: int) -> int:
        if tick + 1 < self.switch_tick:
            # First regime: its promise holds only up to the switch, at
            # which the second adversary must get its first consult.
            return min(quiet_horizon(self.first, tick), self.switch_tick)
        return quiet_horizon(self.second, tick)

    def reset(self) -> None:
        self.first.reset()
        self.second.reset()

    def decide(self, view: TickView) -> Decision:
        if view.time < self.switch_tick:
            return self.first.decide(view)
        return self.second.decide(view)
