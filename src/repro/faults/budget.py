"""Adversary wrappers: failure budgets and the no-restart model.

* :class:`FailureBudgetAdversary` caps the realized pattern size at
  ``|F| <= M`` — the M that parameterizes Theorem 4.3's
  ``S = O(N + P log^2 N + M log N)`` and the optimality window of
  Corollary 4.12 (``O(N / log N)`` failures per simulated step).

* :class:`NoRestartAdversary` suppresses restarts, recovering the original
  fail-stop model of [KS 89] under which Lemma 4.2 analyzes algorithm V.
"""

from __future__ import annotations

from repro.faults.base import QUIET_FOREVER, Adversary, quiet_horizon
from repro.pram.failures import Decision
from repro.pram.view import TickView


class FailureBudgetAdversary(Adversary):
    """Limits an inner adversary to at most ``budget`` pattern events.

    Both failures and restarts count toward the budget (Definition 2.1
    counts the cardinality of the event set).  Once the budget would be
    exceeded the surplus events of a tick are dropped deterministically
    (failures first, by ascending PID), and later ticks are silent.
    """

    def __init__(self, inner: Adversary, budget: int) -> None:
        if budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self.inner = inner
        self.budget = budget
        self._spent = 0

    def reset(self) -> None:
        self._spent = 0
        self.inner.reset()

    @property
    def spent(self) -> int:
        return self._spent

    def quiet_until(self, tick: int) -> int:
        # An exhausted budget silences every later tick — the sparse-|F|
        # regime where the fast-forward loop pays off most.  Before
        # exhaustion the inner adversary's own promise applies: decide()
        # is a pure filter, so skipping a tick the inner adversary
        # promised quiet skips nothing of ours either.
        if self._spent >= self.budget:
            return QUIET_FOREVER
        return quiet_horizon(self.inner, tick)

    def decide(self, view: TickView) -> Decision:
        remaining = self.budget - self._spent
        if remaining <= 0:
            return Decision.none()
        decision = self.inner.decide(view)
        failures = {}
        for pid in sorted(decision.failures):
            if remaining <= 0:
                break
            failures[pid] = decision.failures[pid]
            remaining -= 1
        restarts = set()
        failed_now = set(view.failed_pids) | set(failures)
        for pid in sorted(decision.restarts):
            if remaining <= 0:
                break
            if pid in failed_now:
                restarts.add(pid)
                remaining -= 1
        self._spent = self.budget - remaining
        return Decision(failures=failures, restarts=frozenset(restarts))


class NoRestartAdversary(Adversary):
    """Drops every restart of an inner adversary (the [KS 89] model).

    Also refuses to fail the last running processor, matching the
    fail-stop model's requirement that one processor never fails (the
    machine would veto anyway; doing it here keeps the realized pattern
    clean).
    """

    def __init__(self, inner: Adversary) -> None:
        self.inner = inner

    def reset(self) -> None:
        self.inner.reset()

    def quiet_until(self, tick: int) -> int:
        # A stateless restriction of the inner adversary: quiet ticks of
        # the inner adversary are quiet ticks of ours.
        return quiet_horizon(self.inner, tick)

    def decide(self, view: TickView) -> Decision:
        decision = self.inner.decide(view)
        failures = dict(decision.failures)
        pending_pids = set(view.pending)
        if failures and set(failures) >= pending_pids:
            # spare the lowest-PID pending processor
            spared = min(pending_pids)
            failures.pop(spared, None)
        return Decision(failures=failures, restarts=frozenset())
