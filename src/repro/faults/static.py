"""Static processor/memory faults (Chlebus–Gasieniec–Pelc).

The CGP model ("Deterministic Computations on a PRAM with Static
Processor and Memory Faults") differs from KS91 on both axes of the
fault pattern:

* a *static processor fault* kills a processor at the start of the
  computation, forever — there are no restarts;
* a *static memory fault* makes a shared cell permanently dead — writes
  to it vanish and reads return garbage (our simulator pins a poison
  sentinel, :data:`repro.pram.memory.POISON`, so runs stay
  deterministic).

:class:`StaticFaultAdversary` realizes both: it fails a seeded subset
of processors on its first consulted tick and never restarts them, and
it carries a *memory fault plan* the runner applies to the shared
memory before the run starts.  Memory faults are confined to the
Write-All array ``[x_base, x_base + n)`` — the CGP model lets the
algorithm's control structures live in a fault-free region (their
"safe" memory), and routing the certificate around dead *data* cells is
the interesting part; see :class:`repro.core.fault_routing.FaultRouting`.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.faults.base import QUIET_FOREVER, Adversary
from repro.pram.failures import BEFORE_WRITES, Decision

#: Seed domain separator for the memory-fault plan, so dead cells and
#: dead processors are independent draws of the same adversary seed.
_MEM_SALT = 0x5F5E1


class StaticFaultAdversary(Adversary):
    """Kill a seeded fraction of processors at one tick, forever.

    ``dead_frac`` of the P processors (rounded down, always leaving at
    least one survivor) fail with no writes applied at ``at_tick`` and
    are never restarted.  ``mem_frac`` of the N Write-All cells are
    declared dead before the run starts (see :meth:`memory_fault_plan`).
    Both draws are deterministic in ``seed``.

    The adversary is offline: the whole pattern is fixed in advance, so
    after ``at_tick`` it is provably quiet forever and the machine's
    event-horizon fast-forward batches the rest of the run.
    """

    online = False

    def __init__(
        self,
        dead_frac: float = 0.25,
        mem_frac: float = 0.0,
        seed: int = 0,
        at_tick: int = 1,
    ) -> None:
        if not 0.0 <= dead_frac < 1.0:
            raise ValueError(
                f"dead_frac must be in [0, 1), got {dead_frac}"
            )
        if not 0.0 <= mem_frac < 1.0:
            raise ValueError(
                f"mem_frac must be in [0, 1), got {mem_frac}"
            )
        if at_tick < 1:
            raise ValueError(f"at_tick must be >= 1, got {at_tick}")
        self.dead_frac = dead_frac
        self.mem_frac = mem_frac
        self.seed = seed
        self.at_tick = at_tick
        self._dead: Optional[FrozenSet[int]] = None

    def reset(self) -> None:
        self._dead = None

    @property
    def dead_pids(self) -> FrozenSet[int]:
        """The realized dead set (empty before the kill tick)."""
        return self._dead if self._dead is not None else frozenset()

    def quiet_until(self, tick: int) -> int:
        if tick < self.at_tick:
            return self.at_tick
        return QUIET_FOREVER

    def decide(self, view) -> Decision:
        if view.time != self.at_tick:
            return Decision.none()
        pids = sorted(view.pending)
        count = min(
            int(self.dead_frac * len(view.statuses)),
            max(0, len(pids) - 1),  # always spare a survivor
        )
        if count <= 0:
            self._dead = frozenset()
            return Decision.none()
        victims = random.Random(self.seed).sample(pids, count)
        self._dead = frozenset(victims)
        return Decision.fail(victims, BEFORE_WRITES)

    def memory_fault_plan(self, layout) -> Tuple[int, ...]:
        """Dead cell addresses for this layout (all inside the x array).

        The runner calls this after the algorithm initialized memory and
        marks the cells faulty via ``SharedMemory.mark_faulty``.  Cells
        outside ``[x_base, x_base + n)`` — the algorithm's control
        structures — stay reliable (the CGP "safe memory" region).
        """
        count = int(self.mem_frac * layout.n)
        if count <= 0:
            return ()
        rng = random.Random(self.seed ^ _MEM_SALT)
        addresses = rng.sample(
            range(layout.x_base, layout.x_base + layout.n), count
        )
        return tuple(sorted(addresses))


def apply_memory_faults(memory, adversary, layout) -> Sequence[int]:
    """Apply an adversary's memory fault plan to ``memory``, if it has one.

    The runner-side half of the static-memory-fault model: any adversary
    exposing a ``memory_fault_plan(layout)`` hook gets its dead cells
    pinned before the first tick.  Returns the marked addresses (empty
    for adversaries without the hook).
    """
    plan = getattr(adversary, "memory_fault_plan", None)
    if plan is None or layout is None:
        return ()
    addresses = tuple(plan(layout))
    if addresses:
        memory.mark_faulty(addresses)
    return addresses
