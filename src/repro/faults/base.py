"""Adversary base classes.

An on-line adversary is consulted once per machine tick with a
:class:`~repro.pram.view.TickView` — full knowledge of the algorithm's
state, including the write sets its pending update cycles are about to
produce — and returns a :class:`~repro.pram.failures.Decision`.

Off-line (non-adaptive) adversaries commit to a failure pattern before
the run; :class:`ScheduledAdversary` replays such a pattern.  The paper's
Section 5 point — randomization defeats off-line adversaries but not
on-line ones — is exercised by running the same algorithm under both.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Mapping, Set, Tuple

from repro.pram.failures import BEFORE_WRITES, Decision
from repro.pram.view import TickView

#: An event horizon meaning "this adversary never acts again".  Any
#: value beyond every reachable tick count works; this one is far past
#: any conceivable ``max_ticks`` yet still a plain machine int.
QUIET_FOREVER = 1 << 62


def quiet_horizon(adversary: object, tick: int) -> int:
    """``adversary.quiet_until(tick)``, tolerating duck-typed adversaries.

    The machine accepts any object with a ``decide`` method; wrappers
    and the fast-forward loop use this helper so an adversary without
    the hook degrades to the always-sound per-tick horizon.

    A horizon is a promise about ``decide``, so — like the ``passive``
    flag — it is only honored when defined by the class that defines the
    instance's effective ``decide`` (or a subclass of it).  A subclass
    that overrides ``decide()`` while inheriting, say, an infinite
    horizon has broken the promise and is consulted every tick.
    """
    hook = getattr(adversary, "quiet_until", None)
    if hook is None:
        return tick + 1
    instance_vars = getattr(adversary, "__dict__", {})
    if "quiet_until" not in instance_vars:
        if "decide" in instance_vars:
            return tick + 1
        for klass in type(adversary).__mro__:
            if "quiet_until" in vars(klass):
                break
            if "decide" in vars(klass):
                return tick + 1
    return hook(tick)


class Adversary:
    """Base class: a do-nothing adversary; subclasses override decide().

    **Event-horizon contract** (``quiet_until``).  The machine's
    fast-forward loop asks the adversary, after tick ``tick`` has
    completed, for the earliest future tick at which it might act.
    Returning ``horizon > tick + 1`` promises that for every tick ``t``
    with ``tick < t < horizon``:

    * ``decide(view_t)`` would return an empty decision (no failures,
      no restarts), **and**
    * skipping the ``decide`` call entirely does not change the
      adversary's later behavior — no RNG draws, counters, or other
      state advance on those ticks.

    Within such a window the machine never builds the per-tick
    :class:`~repro.pram.view.TickView` and never calls ``decide`` at
    all, so the promise must hold for *every possible* machine state at
    those ticks, not just the one the adversary last saw.  This mirrors
    the ``passive`` caveat: an adversary that draws randomness per tick
    (e.g. ``RandomAdversary``) can never promise a horizon beyond
    ``tick + 1`` because the skipped draws would shift its RNG stream,
    and an observer like :class:`~repro.pram.trace.Tracer` must pin the
    horizon to ``tick + 1`` because it needs to *see* every tick.
    ``decide`` may still be called during a promised-quiet interval
    (e.g. while every processor is down and the machine must tick to
    force a restart); it must return an empty decision there.

    The default, ``tick + 1``, means "consult me every tick" — always
    sound.  Return :data:`QUIET_FOREVER` for "never again".  As with
    ``passive``, the hook is only honored when defined by the class that
    defines the instance's effective ``decide``: a subclass overriding
    ``decide()`` without restating its own horizon is consulted every
    tick.
    """

    #: Whether the adversary adapts to the run (True) or committed to a
    #: schedule beforehand (False).  Purely informational.
    online = True
    #: A passive adversary *never* fails or restarts anything —
    #: ``decide`` is ``Decision.none()`` unconditionally.  The machine's
    #: fast path skips building the per-tick adversary view entirely for
    #: passive adversaries, so only declare it when decide() truly never
    #: acts (and never inspects the view for side effects).
    passive = False

    def decide(self, view: TickView) -> Decision:
        return Decision.none()

    def quiet_until(self, tick: int) -> int:
        """Earliest tick > ``tick`` at which this adversary might act.

        See the class docstring for the exact soundness contract.  The
        base implementation claims no quiescence at all.
        """
        return tick + 1

    def reset(self) -> None:
        """Clear mutable state so the instance can adjudicate a new run."""

    @property
    def name(self) -> str:
        return type(self).__name__


class ScheduledAdversary(Adversary):
    """Replays a fixed (off-line) failure/restart schedule.

    The schedule maps tick numbers to ``(fail_pids, restart_pids)``.
    Failures land before any write of the victim's current cycle; pids
    that are not currently running/failed as required are skipped silently
    (an off-line pattern cannot know the run's exact state, and the model
    lets failure events be vacuous).
    """

    online = False

    def __init__(
        self,
        schedule: Mapping[int, Tuple[Iterable[int], Iterable[int]]],
    ) -> None:
        self._schedule: Dict[int, Tuple[List[int], List[int]]] = {
            tick: (sorted(set(fails)), sorted(set(restarts)))
            for tick, (fails, restarts) in schedule.items()
        }
        # Sorted ticks that carry at least one (possibly vacuous) event:
        # between two of them the adversary provably does nothing, which
        # is exactly what quiet_until() promises the fast-forward loop.
        self._event_ticks: List[int] = sorted(
            tick for tick, (fails, restarts) in self._schedule.items()
            if fails or restarts
        )

    def quiet_until(self, tick: int) -> int:
        index = bisect_right(self._event_ticks, tick)
        if index == len(self._event_ticks):
            return QUIET_FOREVER
        return self._event_ticks[index]

    def decide(self, view: TickView) -> Decision:
        entry = self._schedule.get(view.time)
        if entry is None:
            return Decision.none()
        fail_pids, restart_pids = entry
        failures = {
            pid: BEFORE_WRITES for pid in fail_pids if pid in view.pending
        }
        failed_now: Set[int] = set(view.failed_pids) | set(failures)
        restarts = frozenset(pid for pid in restart_pids if pid in failed_now)
        return Decision(failures=failures, restarts=restarts)
