"""Adversary base classes.

An on-line adversary is consulted once per machine tick with a
:class:`~repro.pram.view.TickView` — full knowledge of the algorithm's
state, including the write sets its pending update cycles are about to
produce — and returns a :class:`~repro.pram.failures.Decision`.

Off-line (non-adaptive) adversaries commit to a failure pattern before
the run; :class:`ScheduledAdversary` replays such a pattern.  The paper's
Section 5 point — randomization defeats off-line adversaries but not
on-line ones — is exercised by running the same algorithm under both.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set, Tuple

from repro.pram.failures import BEFORE_WRITES, Decision
from repro.pram.view import TickView


class Adversary:
    """Base class: a do-nothing adversary; subclasses override decide()."""

    #: Whether the adversary adapts to the run (True) or committed to a
    #: schedule beforehand (False).  Purely informational.
    online = True
    #: A passive adversary *never* fails or restarts anything —
    #: ``decide`` is ``Decision.none()`` unconditionally.  The machine's
    #: fast path skips building the per-tick adversary view entirely for
    #: passive adversaries, so only declare it when decide() truly never
    #: acts (and never inspects the view for side effects).
    passive = False

    def decide(self, view: TickView) -> Decision:
        return Decision.none()

    def reset(self) -> None:
        """Clear mutable state so the instance can adjudicate a new run."""

    @property
    def name(self) -> str:
        return type(self).__name__


class ScheduledAdversary(Adversary):
    """Replays a fixed (off-line) failure/restart schedule.

    The schedule maps tick numbers to ``(fail_pids, restart_pids)``.
    Failures land before any write of the victim's current cycle; pids
    that are not currently running/failed as required are skipped silently
    (an off-line pattern cannot know the run's exact state, and the model
    lets failure events be vacuous).
    """

    online = False

    def __init__(
        self,
        schedule: Mapping[int, Tuple[Iterable[int], Iterable[int]]],
    ) -> None:
        self._schedule: Dict[int, Tuple[List[int], List[int]]] = {
            tick: (sorted(set(fails)), sorted(set(restarts)))
            for tick, (fails, restarts) in schedule.items()
        }

    def decide(self, view: TickView) -> Decision:
        entry = self._schedule.get(view.time)
        if entry is None:
            return Decision.none()
        fail_pids, restart_pids = entry
        failures = {
            pid: BEFORE_WRITES for pid in fail_pids if pid in view.pending
        }
        failed_now: Set[int] = set(view.failed_pids) | set(failures)
        restarts = frozenset(pid for pid in restart_pids if pid in failed_now)
        return Decision(failures=failures, restarts=restarts)
