"""Stochastic adversaries: i.i.d. per-tick failures and periodic bursts.

These model the "benign" failure environments against which the paper's
worst-case adversaries are contrasted ([KPS 90] analyzed expected behavior
under a random failure model).  Both are fully seeded for reproducible
runs.
"""

from __future__ import annotations


from repro.faults.base import QUIET_FOREVER, Adversary
from repro.pram.failures import BEFORE_WRITES, Decision
from repro.pram.view import TickView
from repro.util.rng import RandomLike, make_rng


class RandomAdversary(Adversary):
    """Fails each running processor i.i.d. per tick; restarts likewise.

    Args:
        fail_probability: chance a running processor fails this tick.
        restart_probability: chance a failed processor restarts this tick
            (0 gives crash-only behavior).
        mid_cycle: when True the failure point within the cycle is chosen
            uniformly among the legal write prefixes; when False failures
            always land before the first write.
        seed: RNG seed or instance.
    """

    def __init__(
        self,
        fail_probability: float,
        restart_probability: float = 0.0,
        mid_cycle: bool = True,
        seed: RandomLike = 0,
    ) -> None:
        if not 0.0 <= fail_probability <= 1.0:
            raise ValueError(f"fail_probability out of [0,1]: {fail_probability}")
        if not 0.0 <= restart_probability <= 1.0:
            raise ValueError(
                f"restart_probability out of [0,1]: {restart_probability}"
            )
        self.fail_probability = fail_probability
        self.restart_probability = restart_probability
        self.mid_cycle = mid_cycle
        self._seed = seed
        self._rng = make_rng(seed)

    def reset(self) -> None:
        self._rng = make_rng(self._seed)

    def quiet_until(self, tick: int) -> int:
        # decide() consumes RNG draws every tick, so skipping a consult
        # would shift the stream and change every later decision — no
        # quiescence may be promised unless the adversary is degenerate
        # (both probabilities zero: no draw can ever matter).
        if self.fail_probability == 0.0 and self.restart_probability == 0.0:
            return QUIET_FOREVER
        return tick + 1

    def decide(self, view: TickView) -> Decision:
        failures = {}
        for pid, pending in view.pending.items():
            if self._rng.random() < self.fail_probability:
                if self.mid_cycle and pending.writes:
                    failures[pid] = self._rng.randint(0, len(pending.writes))
                else:
                    failures[pid] = BEFORE_WRITES
        restarts = frozenset(
            pid
            for pid in view.failed_pids
            if self._rng.random() < self.restart_probability
        )
        return Decision(failures=failures, restarts=restarts)


class BurstAdversary(Adversary):
    """Periodically fails a fixed fraction of the running processors.

    Every ``period`` ticks, the ``fraction`` of running processors with the
    highest PIDs fail; they all restart ``downtime`` ticks later.  Models
    correlated failures (rack power loss and recovery).
    """

    def __init__(
        self,
        period: int,
        fraction: float = 0.5,
        downtime: int = 1,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of [0,1]: {fraction}")
        if downtime <= 0:
            raise ValueError(f"downtime must be positive, got {downtime}")
        self.period = period
        self.fraction = fraction
        self.downtime = downtime

    def quiet_until(self, tick: int) -> int:
        # Stateless and purely clock-driven: the next possible event is
        # the next tick congruent to the failure phase (0) or the
        # restart phase (downtime) modulo the period.
        period = self.period
        horizon = QUIET_FOREVER
        for phase in (0, self.downtime % period):
            delta = (phase - tick) % period or period
            horizon = min(horizon, tick + delta)
        return horizon

    def decide(self, view: TickView) -> Decision:
        failures = {}
        restarts: frozenset = frozenset()
        if view.time % self.period == 0:
            running = sorted(view.pending)
            count = int(len(running) * self.fraction)
            for pid in running[len(running) - count :]:
                failures[pid] = BEFORE_WRITES
        if view.time % self.period == self.downtime % self.period:
            restarts = frozenset(view.failed_pids)
        return Decision(failures=failures, restarts=restarts)
