"""Further adaptive adversaries: cell guards and productivity hunters.

These generalize the paper's targeted strategies:

* :class:`CellGuardAdversary` — the AccStalker's core move lifted to any
  set of cells: fail every processor about to write a guarded cell
  (while someone else keeps the progress condition).  Guarding a
  Write-All cell starves algorithms whose only path to that cell is a
  direct write; guarding an auxiliary cell (a tree node, the V step
  counter) probes which shared structures an algorithm *needs*.
* :class:`AdaptiveLoadAdversary` — each tick, fail the processors that
  have completed the most cycles ("punish the productive"), the
  intuition behind the pigeonhole strategy of Theorem 3.1 expressed as
  a greedy heuristic.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.faults.base import Adversary
from repro.pram.failures import BEFORE_WRITES, Decision
from repro.pram.view import TickView


class CellGuardAdversary(Adversary):
    """Fails any processor whose pending cycle writes a guarded cell."""

    # Reacts to the write sets of every tick, so the inherited per-tick
    # event horizon (quiet_until = tick + 1) is already exact.

    def __init__(self, cells: Iterable[int], restart: bool = True) -> None:
        self.cells: FrozenSet[int] = frozenset(cells)
        if not self.cells:
            raise ValueError("CellGuardAdversary needs at least one cell")
        self.restart = restart

    def decide(self, view: TickView) -> Decision:
        offenders = sorted(
            pid
            for pid, pending in view.pending.items()
            if any(write.address in self.cells for write in pending.writes)
        )
        innocents = set(view.pending) - set(offenders)
        failures = {}
        if offenders and innocents:
            failures = {pid: BEFORE_WRITES for pid in offenders}
        elif offenders and not innocents and len(offenders) > 1:
            # Keep the progress condition: spare one offender.
            failures = {pid: BEFORE_WRITES for pid in offenders[1:]}
        restarts = frozenset(view.failed_pids) if self.restart else frozenset()
        return Decision(failures=failures, restarts=restarts)


class AdaptiveLoadAdversary(Adversary):
    """Fails the ``count`` most productive processors every ``period`` ticks."""

    def __init__(self, count: int, period: int = 1, restart: bool = True) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.count = count
        self.period = period
        self.restart = restart

    def quiet_until(self, tick: int) -> int:
        if self.restart:
            # Restarts may be due on any tick a processor is down.
            return tick + 1
        # Without restarts the only events are the period-aligned kills.
        delta = (-tick) % self.period or self.period
        return tick + delta

    def decide(self, view: TickView) -> Decision:
        failures = {}
        if view.time % self.period == 0:
            completed = view.ledger.completed_by_pid
            ranked = sorted(
                view.pending,
                key=lambda pid: (-completed.get(pid, 0), pid),
            )
            victims = ranked[: self.count]
            if len(victims) >= len(view.pending) and victims:
                victims = victims[:-1]  # keep the progress condition
            failures = {pid: BEFORE_WRITES for pid in victims}
        restarts = frozenset(view.failed_pids) if self.restart else frozenset()
        return Decision(failures=failures, restarts=restarts)
