"""Recording and replaying failure patterns.

Section 5's punchline is the gap between *on-line* (adaptive) and
*off-line* (pre-committed) adversaries: the very same volume of
failures devastates a randomized algorithm when chosen adaptively and
barely slows it down when committed in advance.  The cleanest way to
demonstrate that is to **record** an adaptive adversary's decisions
during one run and **replay** them verbatim — as an off-line schedule —
against a fresh run whose randomness differs.

:class:`RecordingAdversary` wraps any adversary and captures the
realized per-tick decisions; :meth:`RecordingAdversary.schedule` turns
them into the mapping a
:class:`~repro.faults.base.ScheduledAdversary` replays.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.faults.base import Adversary, ScheduledAdversary, quiet_horizon
from repro.pram.failures import Decision
from repro.pram.view import TickView


class RecordingAdversary(Adversary):
    """Wraps an adversary and records every decision it makes."""

    def __init__(self, inner: Adversary) -> None:
        self.inner = inner
        self._log: Dict[int, Tuple[List[int], List[int]]] = {}

    def reset(self) -> None:
        self.inner.reset()
        self._log = {}

    def quiet_until(self, tick: int) -> int:
        # Only non-empty decisions are logged, so a tick the inner
        # adversary promises quiet would log nothing anyway — the
        # recorded schedule is identical with or without the skip.
        return quiet_horizon(self.inner, tick)

    def decide(self, view: TickView) -> Decision:
        decision = self.inner.decide(view)
        fails = sorted(decision.failures)
        restarts = sorted(decision.restarts)
        if fails or restarts:
            self._log[view.time] = (fails, restarts)
        return decision

    @property
    def events_recorded(self) -> int:
        return sum(
            len(fails) + len(restarts)
            for fails, restarts in self._log.values()
        )

    def schedule(self) -> Dict[int, Tuple[List[int], List[int]]]:
        """The recorded pattern as a replayable schedule."""
        return {
            tick: (list(fails), list(restarts))
            for tick, (fails, restarts) in self._log.items()
        }

    def as_offline(self) -> ScheduledAdversary:
        """An off-line adversary replaying the recorded pattern."""
        return ScheduledAdversary(self.schedule())
