"""Example 2.2's thrashing adversary.

    "A thrashing adversary allows all processors to perform the read and
    compute instructions, then it fails all but one processor for the
    write operation.  The adversary then restarts all failed processors.
    Since one write operation is performed per read, compute, write
    cycle, N cycles will be required to initialize N array elements.
    Each of the P processors performs O(N) instructions which results in
    work of O(P * N)."

Under the S' measure (incomplete cycles charged) this forces quadratic
work for *any* Write-All algorithm; under the paper's completed-work
measure S the interrupted cycles cost nothing — which is exactly the
point of the update-cycle accounting.  The E1 benchmark reproduces the
separation.
"""

from __future__ import annotations

from repro.faults.base import Adversary
from repro.pram.failures import BEFORE_WRITES, Decision
from repro.pram.view import TickView


class ThrashingAdversary(Adversary):
    """Every tick: fail all pending processors but one, revive everyone.

    The single survivor is the lowest-PID pending processor, so exactly
    one update cycle completes per tick — the minimum the progress
    condition allows.
    """

    # Acts (fails/restarts) on every single tick, so the inherited
    # per-tick event horizon (quiet_until = tick + 1) is already the
    # provably-earliest next event — no override needed.
    def decide(self, view: TickView) -> Decision:
        pending_pids = sorted(view.pending)
        failures = {}
        if pending_pids:
            for pid in pending_pids[1:]:
                failures[pid] = BEFORE_WRITES
        restarts = frozenset(view.failed_pids)
        return Decision(failures=failures, restarts=restarts)
