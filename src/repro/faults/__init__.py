"""Failure patterns and the paper's adversaries.

The adversaries here realize every failure strategy the paper uses:

* :class:`NoFailures` — the failure-free PRAM;
* :class:`ScheduledAdversary` — off-line (pre-specified) patterns;
* :class:`RandomAdversary` — i.i.d. on-line failures/restarts;
* :class:`BurstAdversary` — periodic mass failures;
* :class:`ThrashingAdversary` — Example 2.2's quadratic-S' strategy;
* :class:`HalvingAdversary` — Theorem 3.1's Omega(N log N) pigeonhole
  strategy;
* :class:`StalkingAdversaryX` — Theorem 4.8's post-order stalker that
  drives algorithm X to ~N^{log 3} work;
* :class:`AccStalker` — Section 5's stalker against randomized ACC;
* wrappers: :class:`NoRestartAdversary` (the [KS 89] fail-stop model),
  :class:`FailureBudgetAdversary` (caps |F| at M), and
  :class:`PhaseSwitchAdversary` / :class:`UnionAdversary` composition.

Beyond KS91, the package opens three related fault models (see
:mod:`repro.faults.registry` for the unified name/model-tag catalog):

* :class:`StaticFaultAdversary` — Chlebus–Gasieniec–Pelc static
  processor/memory faults (dead forever, dead cells poisoned);
* :class:`SpeedClassAdversary` — Zavou & Fernández Anta heterogeneous
  speeds via the machine's stall channel;
* the persistent-memory axis lives in
  :class:`repro.simulation.persistent.CheckpointPolicy` (Blelloch et
  al.'s Parallel Persistent Memory model), driven by the registry's
  ``pmem-churn`` entry.
"""

from repro.faults.base import (
    QUIET_FOREVER,
    Adversary,
    ScheduledAdversary,
    quiet_horizon,
)
from repro.faults.budget import FailureBudgetAdversary, NoRestartAdversary
from repro.faults.compose import PhaseSwitchAdversary, UnionAdversary
from repro.faults.halving import HalvingAdversary
from repro.faults.random_adversary import BurstAdversary, RandomAdversary
from repro.faults.replay import RecordingAdversary
from repro.faults.simple import NoFailures, SinglePidKiller
from repro.faults.speed import SpeedClassAdversary
from repro.faults.stalking import AccStalker, StalkingAdversaryX
from repro.faults.starver import IterationStarver
from repro.faults.static import StaticFaultAdversary, apply_memory_faults
from repro.faults.targeted import AdaptiveLoadAdversary, CellGuardAdversary
from repro.faults.thrashing import ThrashingAdversary

__all__ = [
    "AccStalker",
    "AdaptiveLoadAdversary",
    "Adversary",
    "BurstAdversary",
    "CellGuardAdversary",
    "FailureBudgetAdversary",
    "HalvingAdversary",
    "IterationStarver",
    "NoFailures",
    "NoRestartAdversary",
    "PhaseSwitchAdversary",
    "QUIET_FOREVER",
    "RandomAdversary",
    "RecordingAdversary",
    "ScheduledAdversary",
    "SinglePidKiller",
    "SpeedClassAdversary",
    "StalkingAdversaryX",
    "StaticFaultAdversary",
    "ThrashingAdversary",
    "UnionAdversary",
    "apply_memory_faults",
    "quiet_horizon",
]
