"""Algorithm V+X — the interleaved combination of Theorem 4.9.

    "We first observe that the executions of algorithms V and X can be
    interleaved to yield an algorithm that achieves the following
    performance: ... S = O(min{N + P log^2 N + M log N, N * P^0.6}),
    overhead ratio sigma = O(log^2 N)."

Each processor alternates update cycles of X and V, each algorithm on
its own data structures but over the *shared* Write-All array ``x``
(both only ever write 1 into it, so COMMON CRCW is respected).  X
guarantees termination with sub-quadratic work under any failure
pattern; V contributes the ``N + P log^2 N + M log N`` bound when the
pattern is small — the interleaving pays at most a factor of two over
whichever finishes first.

Safety of the interleaving: all progress-tree operations of both
algorithms are monotone and idempotent, and V's step-counter cohorts can
only de-phase by whole ticks (never writing conflicting values in the
same tick), so the COMMON write discipline holds throughout — the
property tests hammer exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.core.algorithm_v import AlgorithmV, VLayout
from repro.core.algorithm_x import AlgorithmX, XLayout
from repro.core.base import BaseLayout, WriteAllAlgorithm, default_tasks
from repro.core.iterative import phased_program
from repro.core.tasks import TaskSet
from repro.pram.cycles import Cycle


@dataclass(frozen=True)
class VXLayout(BaseLayout):
    """Composite layout: X's structures, then V's, over one ``x`` array."""

    x_layout: XLayout = None  # type: ignore[assignment]
    v_layout: VLayout = None  # type: ignore[assignment]

    # Conveniences for adversaries (the stalker reads w_base like on X).
    @property
    def d_base(self) -> int:
        return self.x_layout.d_base

    @property
    def w_base(self) -> int:
        return self.x_layout.w_base


class AlgorithmVX(WriteAllAlgorithm):
    """Cycle-by-cycle interleaving of algorithms X and V."""

    name = "V+X"

    def __init__(self) -> None:
        self._x = AlgorithmX()
        self._v = AlgorithmV()

    def build_layout(self, n: int, p: int) -> VXLayout:
        x_layout = self._x.build_layout(n, p)
        # Shift V's structures past X's; both share x at base 0.
        v_template = self._v.build_layout(n, p)
        offset = x_layout.size - n  # V's non-x cells start after X's
        v_layout = VLayout(
            n=n, p=p, x_base=0,
            size=v_template.size + offset,
            d_base=v_template.d_base + offset,
            leaves=v_template.leaves,
            chunk=v_template.chunk,
            step_addr=v_template.step_addr + offset,
            done_addr=v_template.done_addr + offset,
        )
        return VXLayout(
            n=n, p=p, x_base=0, size=v_layout.size,
            x_layout=x_layout, v_layout=v_layout,
        )

    def program(
        self, layout: VXLayout, tasks: Optional[TaskSet] = None
    ) -> Callable[[int], Generator[Cycle, tuple, None]]:
        tasks = default_tasks(tasks)
        x_factory = self._x.program(layout.x_layout, tasks)

        def factory(pid: int) -> Generator[Cycle, tuple, None]:
            return _interleave(
                [x_factory(pid), phased_program(pid, layout.v_layout, tasks)]
            )

        return factory


def _interleave(
    generators: List[Generator[Cycle, tuple, None]],
) -> Generator[Cycle, tuple, None]:
    """Round-robin the update cycles of several sub-programs.

    A sub-program that returns drops out; the interleaving ends when all
    have returned.  (For V+X, X returns exactly when the whole problem is
    solved, so the machine's termination predicate fires no later.)
    """
    slots: List[List[object]] = []
    for generator in generators:
        try:
            first = next(generator)
        except StopIteration:
            slots.append([generator, None])
        else:
            slots.append([generator, first])
    while any(cycle is not None for _generator, cycle in slots):
        for slot in slots:
            generator, cycle = slot
            if cycle is None:
                continue
            values = yield cycle  # type: ignore[misc]
            try:
                slot[1] = generator.send(values)  # type: ignore[union-attr]
            except StopIteration:
                slot[1] = None
