"""Struct-of-arrays vector programs for trivial, W, and X.

Each class here is the :class:`~repro.pram.vectorized.VectorProgram`
form of an existing compiled kernel: the scalar kernel's explicit state
fields become int64/bool columns indexed by PID, and a fused quiet
window advances every running lane per tick with masked array
operations instead of one Python ``quiet_step`` call per processor.
``None``-valued scalar fields are encoded as ``-1`` (every such field
is otherwise non-negative), and ``pack_lane``/``unpack_lane`` round-trip
the scalar state exactly.

The semantics are a transliteration of the corresponding kernels —
:class:`~repro.core.trivial.TrivialKernel`,
:class:`~repro.core.iterative.PhasedKernel`, and
:class:`~repro.core.algorithm_x.XKernel` — phase by phase and branch by
branch; the 5-mode differential suite and the fuzz driver enforce the
equivalence.  This module imports numpy unconditionally: it is only
ever imported through ``resolve_vectorized``, which checks the optional
extra first.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.algorithm_x import XKernel, XLayout, _x_initial_leaf
from repro.core.iterative import (
    DEAD_POLLS,
    IterativeLayout,
    PhasedKernel,
    _ALLOC,
    _ALLOC_ROOT,
    _BEAT,
    _COUNT_LEAF,
    _COUNT_UP,
    _FINAL,
    _KICK,
    _UP,
    _UP_LEAF,
    _WAIT,
)
from repro.core.trivial import TrivialKernel, TrivialLayout
from repro.pram.vectorized import Burst, VectorProgram, VectorWindow
from repro.util.bits import bit_length_of_power


def _bit_length(values):
    """Vectorized ``int.bit_length()`` for positive int64 values.

    ``frexp`` is exact for anything below 2**53, far beyond any node
    index or address the layouts can produce.
    """
    return np.frexp(values.astype(np.float64))[1].astype(np.int64)


class TrivialVector(VectorProgram):
    """Vector form of the trivial assignment.

    State per lane is one column (the current element).  Because lane
    ``pid`` only ever touches elements ``pid, pid+p, pid+2p, ...``,
    every address written during a burst is distinct — across lanes
    (distinct residues mod p) and across ticks (strictly increasing) —
    so a whole burst commits as one scatter with no resolution step,
    and the exact goal tick falls out of a cumulative count of the
    zeros the scatter fills.  This closed form is the lane's headline
    speedup: the per-tick cost drops from O(P) Python dispatches to
    amortized O(1) array work.
    """

    kind = "trivial"

    def __init__(self, layout: TrivialLayout) -> None:
        n = layout.n
        p = layout.p
        x_base = layout.x_base
        super().__init__(
            layout, lambda pid: TrivialKernel(pid, n, p, x_base)
        )
        self.n = n
        self.x_base = x_base
        self.element = np.zeros(p, dtype=np.int64)
        self.live = np.zeros(p, dtype=bool)

    def pack_lane(self, pid: int) -> None:
        kernel = self.kernels[pid]
        self.element[pid] = kernel.element
        self.live[pid] = kernel.live

    def unpack_lane(self, pid: int) -> None:
        kernel = self.kernels[pid]
        kernel.element = int(self.element[pid])
        kernel.live = bool(self.live[pid])

    def run_quiet(
        self, window: VectorWindow, pids: Sequence[int], budget: int
    ) -> Burst:
        self.ensure_packed(window, pids)
        ids = np.asarray(pids, dtype=np.int64)
        n = self.n
        p = self.p
        element = self.element[ids]
        # Ticks until each lane writes its last element (>= 1: a
        # running lane's stepper is live, so element < n).
        remaining = (n - element + p - 1) // p
        ticks = min(budget, int(remaining.min()))
        # All burst addresses, one row per tick.  Total size is bounded
        # by n (each lane owns a disjoint slice of the array).
        addresses = (
            self.x_base
            + element[None, :]
            + np.arange(ticks, dtype=np.int64)[:, None] * p
        )
        old = window.cells[addresses]
        filled_per_tick = np.cumsum((old == 0).sum(axis=1))
        if window.goal is not None:
            hit = np.flatnonzero(window.goal_zeros - filled_per_tick == 0)
            if hit.size:
                ticks = int(hit[0]) + 1
                addresses = addresses[:ticks]
                filled_per_tick = filled_per_tick[:ticks]
        flat = addresses.ravel()
        window.cells[flat] = 1
        window.mark_dirty(flat)
        window.writes += int(flat.size)
        if window.goal is not None:
            window.goal_zeros -= int(filled_per_tick[ticks - 1])
        new_element = element + ticks * p
        self.element[ids] = new_element
        alive = new_element < n
        self.live[ids] = alive
        halted = [int(pid) for pid in ids[~alive]]
        return Burst(ticks=ticks, halted=halted)


class XVector(VectorProgram):
    """Vector form of algorithm X's single-cycle loop.

    The kernel is stateless (all recovery state lives in the shared
    position array ``w``), so the columns hold only the live flags;
    each tick gathers every lane's position, replays the cycle body's
    branch ladder as masks, and commits one write per lane through the
    window's CRCW resolution (concurrent lanes marking the same tree
    node agree on the value, exactly as COMMON requires).  The
    ``random`` routing rule hashes (pid, node) per descent and is not
    vectorizable — the algorithm's hook gates it to the scalar lanes.
    """

    kind = "X"

    def __init__(self, layout: XLayout, routing: str, spread: bool) -> None:
        super().__init__(
            layout, lambda pid: XKernel(pid, layout, routing, spread)
        )
        p = layout.p
        n = layout.n
        self.n = n
        self.x_base = layout.x_base
        self.d1 = layout.d_base - 1
        self.w_base = layout.w_base
        self.exit_marker = layout.exit_marker
        self.log_n = bit_length_of_power(n)
        self.routing = routing
        pid_range = np.arange(p, dtype=np.int64)
        self.route_pid = pid_range % n
        self.initial_leaf = np.asarray(
            [_x_initial_leaf(pid, layout, spread) for pid in range(p)],
            dtype=np.int64,
        )
        self.live = np.zeros(p, dtype=bool)

    def pack_lane(self, pid: int) -> None:
        self.live[pid] = self.kernels[pid].live

    def unpack_lane(self, pid: int) -> None:
        self.kernels[pid].live = bool(self.live[pid])

    def run_quiet(
        self, window: VectorWindow, pids: Sequence[int], budget: int
    ) -> Burst:
        self.ensure_packed(window, pids)
        ids = np.asarray(pids, dtype=np.int64)
        ticks = 0
        halted: List[int] = []
        while ticks < budget:
            ticks += 1
            self._tick(window, ids)
            alive = self.live[ids]
            if not bool(alive.all()):
                halted = [int(pid) for pid in ids[~alive]]
                break
            if window.goal is not None and window.goal_zeros == 0:
                break
        return Burst(ticks=ticks, halted=halted)

    def _tick(self, window: VectorWindow, ids) -> None:
        cells = window.cells
        n = self.n
        d1 = self.d1
        exit_marker = self.exit_marker
        w_addresses = self.w_base + ids
        where = cells[w_addresses]
        reads = int(ids.size)

        in_tree = (where >= 1) & (where < exit_marker)
        done = np.zeros_like(where)
        done[in_tree] = cells[d1 + where[in_tree]]
        reads += int(in_tree.sum())
        probe = in_tree & (done == 0)
        at_leaf = probe & (where >= n)
        interior = probe & (where < n)
        third = np.zeros_like(where)
        fourth = np.zeros_like(where)
        third[at_leaf] = cells[self.x_base + where[at_leaf] - n]
        third[interior] = cells[d1 + 2 * where[interior]]
        fourth[interior] = cells[d1 + 2 * where[interior] + 1]
        reads += int(at_leaf.sum()) + 2 * int(interior.sum())
        window.reads += reads

        # The cycle body's branch ladder (XKernel.quiet_step), as
        # mutually exclusive masks in the same elif order.
        out_addr = np.empty_like(where)
        out_val = np.empty_like(where)
        m_init = where == 0
        m_exit = ~m_init & (where == exit_marker)
        rest = ~m_init & ~m_exit
        m_done = rest & (done != 0)
        rest &= ~m_done
        m_leaf = rest & (where >= n)
        m_leaf_new = m_leaf & (third == 0)
        m_leaf_mark = m_leaf & (third != 0)
        rest &= ~m_leaf
        m_both = rest & (third != 0) & (fourth != 0)
        m_left = rest & (third == 0) & (fourth != 0)
        m_right = rest & (third != 0) & (fourth == 0)
        m_route = rest & (third == 0) & (fourth == 0)

        out_addr[m_init] = w_addresses[m_init]
        out_val[m_init] = self.initial_leaf[ids[m_init]]
        out_addr[m_exit] = w_addresses[m_exit]
        out_val[m_exit] = exit_marker
        if bool(m_done.any()):
            parent = where[m_done] // 2
            out_addr[m_done] = w_addresses[m_done]
            out_val[m_done] = np.where(parent >= 1, parent, exit_marker)
        out_addr[m_leaf_new] = self.x_base + where[m_leaf_new] - n
        out_val[m_leaf_new] = 1
        out_addr[m_leaf_mark] = d1 + where[m_leaf_mark]
        out_val[m_leaf_mark] = 1
        out_addr[m_both] = d1 + where[m_both]
        out_val[m_both] = 1
        out_addr[m_left] = w_addresses[m_left]
        out_val[m_left] = 2 * where[m_left]
        out_addr[m_right] = w_addresses[m_right]
        out_val[m_right] = 2 * where[m_right] + 1
        if bool(m_route.any()):
            if self.routing == "pid":
                depth = _bit_length(where[m_route]) - 1
                bit = (
                    self.route_pid[ids[m_route]] >> (self.log_n - 1 - depth)
                ) & 1
            elif self.routing == "left":
                bit = np.int64(0)
            else:  # "right" ("random" is gated to the scalar lanes)
                bit = np.int64(1)
            out_addr[m_route] = w_addresses[m_route]
            out_val[m_route] = 2 * where[m_route] + bit

        window.commit(out_addr, ids, out_val)
        if bool(m_exit.any()):
            self.live[ids[m_exit]] = False


class WVector(VectorProgram):
    """Vector form of algorithm W's phased kernel.

    Every ``PhasedKernel`` slot becomes a column; each tick partitions
    the running lanes by phase code and replays that phase's
    ``quiet_step`` staging and ``advance`` transition as masked array
    ops (the shared ``step``/``done`` cells are scalars, so most
    branches are uniform per group).  ``last_seen``/``target``/``leaf``
    encode ``None`` as ``-1``.
    """

    kind = "W"

    def __init__(self, layout: IterativeLayout, lam: int) -> None:
        super().__init__(layout, lambda pid: PhasedKernel(pid, layout, lam))
        p = layout.p
        self.lam = lam
        self.step_addr = layout.step_addr
        self.done_addr = layout.done_addr
        self.x_base = layout.x_base
        self.leaves = layout.leaves
        self.log_l = layout.progress_tree.height
        self.chunk = layout.chunk
        self.d1 = layout.d_base - 1
        self.c1 = layout.c_base - 1
        self.c_height = layout.counting_tree.height
        self.mult = 2 * layout.p_leaves + 1
        counting = layout.counting_tree
        self.own_leaf = np.asarray(
            [counting.leaf_node(pid) for pid in range(p)], dtype=np.int64
        )
        zeros = lambda: np.zeros(p, dtype=np.int64)
        self.phase = zeros()
        self.st = zeros()
        self.last_seen = zeros()  # -1 == None
        self.same_polls = zeros()
        self.kick = zeros()
        self.iteration_number = zeros()
        self.rank = zeros()
        self.total = zeros()
        self.node = zeros()
        self.count_below = zeros()
        self.level = zeros()
        self.target = zeros()  # -1 == None
        self.leaf = zeros()  # -1 == None
        self.offset = zeros()
        self.joining = np.zeros(p, dtype=bool)
        self.live = np.zeros(p, dtype=bool)

    def pack_lane(self, pid: int) -> None:
        kernel = self.kernels[pid]
        self.phase[pid] = kernel.phase
        self.st[pid] = kernel.st
        self.last_seen[pid] = (
            -1 if kernel.last_seen is None else kernel.last_seen
        )
        self.same_polls[pid] = kernel.same_polls
        self.kick[pid] = kernel.kick
        self.iteration_number[pid] = kernel.iteration_number
        self.rank[pid] = kernel.rank
        self.total[pid] = kernel.total
        self.node[pid] = kernel.node
        self.count_below[pid] = kernel.count_below
        self.level[pid] = kernel.level
        self.target[pid] = -1 if kernel.target is None else kernel.target
        self.leaf[pid] = -1 if kernel.leaf is None else kernel.leaf
        self.offset[pid] = kernel.offset
        self.joining[pid] = kernel.joining
        self.live[pid] = kernel.live

    def unpack_lane(self, pid: int) -> None:
        kernel = self.kernels[pid]
        kernel.phase = int(self.phase[pid])
        last_seen = int(self.last_seen[pid])
        kernel.last_seen = None if last_seen < 0 else last_seen
        kernel.st = int(self.st[pid])
        kernel.same_polls = int(self.same_polls[pid])
        kernel.kick = int(self.kick[pid])
        kernel.iteration_number = int(self.iteration_number[pid])
        kernel.rank = int(self.rank[pid])
        kernel.total = int(self.total[pid])
        kernel.node = int(self.node[pid])
        kernel.count_below = int(self.count_below[pid])
        kernel.level = int(self.level[pid])
        target = int(self.target[pid])
        kernel.target = None if target < 0 else target
        leaf = int(self.leaf[pid])
        kernel.leaf = None if leaf < 0 else leaf
        kernel.offset = int(self.offset[pid])
        kernel.joining = bool(self.joining[pid])
        kernel.live = bool(self.live[pid])

    def run_quiet(
        self, window: VectorWindow, pids: Sequence[int], budget: int
    ) -> Burst:
        self.ensure_packed(window, pids)
        ids = np.asarray(pids, dtype=np.int64)
        ticks = 0
        halted: List[int] = []
        while ticks < budget:
            ticks += 1
            self._tick(window, ids)
            alive = self.live[ids]
            if not bool(alive.all()):
                halted = [int(pid) for pid in ids[~alive]]
                break
            if window.goal is not None and window.goal_zeros == 0:
                break
        return Burst(ticks=ticks, halted=halted)

    def _finish_alloc(self, lanes) -> None:
        self.leaf[lanes] = np.where(
            self.target[lanes] >= 0, self.node[lanes], -1
        )
        self.offset[lanes] = 0
        self.phase[lanes] = _BEAT

    def _tick(self, window: VectorWindow, ids) -> None:
        cells = window.cells
        done = int(cells[self.done_addr])
        step_val = int(cells[self.step_addr])
        lam = self.lam
        phase = self.phase[ids]
        reads = 0
        addr_parts: List[object] = []
        val_parts: List[object] = []
        pid_parts: List[object] = []

        def stage(addresses, values, lanes) -> None:
            addr_parts.append(np.broadcast_to(addresses, lanes.shape))
            val_parts.append(np.broadcast_to(values, lanes.shape))
            pid_parts.append(lanes)

        sub = ids[phase == _BEAT]
        if sub.size:
            reads += int(sub.size)
            st = self.st[sub]
            leaf = self.leaf[sub]
            has_leaf = leaf >= 0
            if bool(has_leaf.any()):
                lanes = sub[has_leaf]
                element = (leaf[has_leaf] - self.leaves) * self.chunk
                stage(
                    self.x_base + element + self.offset[lanes],
                    np.int64(1),
                    lanes,
                )
            stage(np.int64(self.step_addr), st, sub)
            if done != 0:
                self.live[sub] = False
            else:
                self.st[sub] = st + 1
                offset = self.offset[sub] + 1
                self.offset[sub] = offset
                finished = offset >= self.chunk
                if bool(finished.any()):
                    self.phase[sub[finished]] = _UP_LEAF

        sub = ids[phase == _ALLOC]
        if sub.size:
            idle = self.target[sub] < 0
            descending = sub[~idle]
            reads += int(sub.size) + 2 * int(descending.size)
            stage(np.int64(self.step_addr), self.st[sub], sub)
            if done != 0:
                self.live[sub] = False
            else:
                self.st[sub] += 1
                if descending.size:
                    node = self.node[descending]
                    left = 2 * node
                    v0 = cells[self.d1 + left]
                    v1 = cells[self.d1 + left + 1]
                    under = self.leaves >> (_bit_length(left) - 1)
                    left_unvisited = under - v0
                    remaining = left_unvisited + (under - v1)
                    stale = remaining <= 0
                    slot = np.minimum(self.target[descending], remaining - 1)
                    go_left = slot < left_unvisited
                    new_node = np.where(go_left, left, left + 1)
                    new_target = np.where(go_left, slot, slot - left_unvisited)
                    self.node[descending] = np.where(stale, left, new_node)
                    self.target[descending] = np.where(stale, 0, new_target)
                level = self.level[sub] + 1
                self.level[sub] = level
                finished = level >= self.log_l
                if bool(finished.any()):
                    self._finish_alloc(sub[finished])

        sub = ids[phase == _UP]
        if sub.size:
            leaf = self.leaf[sub]
            climbing = sub[leaf >= 0]
            reads += int(sub.size) + 2 * int(climbing.size)
            if climbing.size:
                parent = self.node[climbing] // 2
                v0 = cells[self.d1 + 2 * parent]
                v1 = cells[self.d1 + 2 * parent + 1]
                stage(self.d1 + parent, v0 + v1, climbing)
            stage(np.int64(self.step_addr), self.st[sub], sub)
            if done != 0:
                self.live[sub] = False
            else:
                if climbing.size:
                    self.node[climbing] //= 2
                self.st[sub] += 1
                level = self.level[sub] + 1
                self.level[sub] = level
                finished = level >= self.log_l
                if bool(finished.any()):
                    self.phase[sub[finished]] = _FINAL

        sub = ids[phase == _COUNT_UP]
        if sub.size:
            reads += 3 * int(sub.size)
            mult = self.mult
            parent = self.node[sub] // 2
            v0 = cells[self.c1 + 2 * parent]
            v1 = cells[self.c1 + 2 * parent + 1]
            iteration = self.iteration_number[sub]
            left = np.where(v0 // mult == iteration, v0 % mult, 0)
            right = np.where(v1 // mult == iteration, v1 % mult, 0)
            stage(self.c1 + parent, iteration * mult + left + right, sub)
            stage(np.int64(self.step_addr), self.st[sub], sub)
            if done != 0:
                self.live[sub] = False
            else:
                node = self.node[sub]
                self.rank[sub] += np.where((node & 1) == 1, left, 0)
                count_below = left + right
                self.count_below[sub] = count_below
                self.node[sub] = node // 2
                self.st[sub] += 1
                level = self.level[sub] + 1
                self.level[sub] = level
                finished = level >= self.c_height
                if bool(finished.any()):
                    lanes = sub[finished]
                    total = np.maximum(count_below[finished], 1)
                    self.total[lanes] = total
                    self.rank[lanes] = np.minimum(self.rank[lanes], total - 1)
                    self.phase[lanes] = _ALLOC_ROOT

        sub = ids[phase == _WAIT]
        if sub.size:
            reads += 2 * int(sub.size)
            if done != 0:
                self.live[sub] = False
            elif step_val % lam == lam - 2:
                st = step_val + 2
                self.st[sub] = st
                self.joining[sub] = True
                self.iteration_number[sub] = st // lam
                self.phase[sub] = _COUNT_LEAF
            else:
                same = self.last_seen[sub] == step_val
                polls = np.where(same, self.same_polls[sub] + 1, 1)
                self.same_polls[sub] = polls
                self.last_seen[sub] = step_val
                dead = polls >= DEAD_POLLS
                if bool(dead.any()):
                    kick = (step_val // lam) * lam + (lam - 2)
                    if kick <= step_val:
                        kick += lam
                    lanes = sub[dead]
                    self.kick[lanes] = kick
                    self.phase[lanes] = _KICK

        sub = ids[phase == _COUNT_LEAF]
        if sub.size:
            joining = self.joining[sub]
            sub_join = sub[joining]
            sub_direct = sub[~joining]
            reads += 2 * int(sub_join.size) + int(sub_direct.size)
            st_join = self.st[sub_join]
            guard_ok = (step_val == st_join - 1) | (step_val == st_join - 2)
            writers = np.concatenate((sub_join[guard_ok], sub_direct))
            if writers.size:
                stage(
                    self.c1 + self.own_leaf[writers],
                    self.iteration_number[writers] * self.mult + 1,
                    writers,
                )
                stage(np.int64(self.step_addr), self.st[writers], writers)
            resync = sub_join[~guard_ok]
            if resync.size:
                self.phase[resync] = _WAIT
                self.last_seen[resync] = -1
                self.same_polls[resync] = 0
                self.joining[resync] = False
            if writers.size:
                self.joining[writers] = False
                if done != 0:
                    self.live[writers] = False
                else:
                    self.st[writers] += 1
                    self.rank[writers] = 0
                    self.node[writers] = self.own_leaf[writers]
                    self.count_below[writers] = 1
                    self.level[writers] = 0
                    if self.c_height == 0:
                        self.total[writers] = 1
                        self.phase[writers] = _ALLOC_ROOT
                    else:
                        self.phase[writers] = _COUNT_UP

        sub = ids[phase == _UP_LEAF]
        if sub.size:
            reads += int(sub.size)
            leaf = self.leaf[sub]
            has_leaf = leaf >= 0
            if bool(has_leaf.any()):
                stage(self.d1 + leaf[has_leaf], np.int64(1), sub[has_leaf])
            stage(np.int64(self.step_addr), self.st[sub], sub)
            if done != 0:
                self.live[sub] = False
            else:
                self.st[sub] += 1
                self.node[sub] = np.where(leaf >= 0, leaf, 0)
                self.level[sub] = 0
                self.phase[sub] = _UP if self.log_l > 0 else _FINAL

        root_count = int(cells[self.d1 + 1])

        sub = ids[phase == _ALLOC_ROOT]
        if sub.size:
            reads += 2 * int(sub.size)
            stage(np.int64(self.step_addr), self.st[sub], sub)
            if done != 0:
                self.live[sub] = False
            else:
                self.st[sub] += 1
                unvisited = self.leaves - root_count
                if unvisited > 0:
                    target = (self.rank[sub] * unvisited) // self.total[sub]
                    self.target[sub] = np.where(
                        target >= unvisited, target % unvisited, target
                    )
                else:
                    self.target[sub] = -1
                self.node[sub] = 1
                self.level[sub] = 0
                if self.log_l == 0:
                    self._finish_alloc(sub)
                else:
                    self.phase[sub] = _ALLOC

        sub = ids[phase == _FINAL]
        if sub.size:
            reads += 2 * int(sub.size)
            if root_count >= self.leaves:
                stage(np.int64(self.done_addr), np.int64(1), sub)
            stage(np.int64(self.step_addr), self.st[sub], sub)
            if done != 0 or root_count >= self.leaves:
                self.live[sub] = False
            else:
                st = self.st[sub] + 1
                self.st[sub] = st
                self.iteration_number[sub] = st // lam
                self.phase[sub] = _COUNT_LEAF

        sub = ids[phase == _KICK]
        if sub.size:
            stage(np.int64(self.step_addr), self.kick[sub], sub)
            self.last_seen[sub] = -1
            self.same_polls[sub] = 0
            self.phase[sub] = _WAIT

        window.reads += reads
        if addr_parts:
            window.commit(
                np.concatenate(addr_parts),
                np.concatenate(pid_parts),
                np.concatenate(val_parts),
            )
