"""The unit-cost-snapshot algorithm of Theorem 3.2.

    "We complement the previous lower bound with the following oblivious
    strategy: at each step that a processor PID is active, it reads the
    N elements of the array x[1..N] to be visited.  Say U of these
    elements are still not visited.  The processor numbers these U
    elements from 1 to U based on their position in the array, and
    assigns itself to the ith unvisited element such that
    i = ceil(PID * U / N).  This achieves load balancing."

Under the (unrealistically strong) assumption that a processor can read
and locally process the entire shared memory at unit cost, this
algorithm's completed work is ``Theta(N log N)`` with ``N`` processors —
matching the Theorem 3.1 lower bound, which is what makes that bound the
tightest possible under the assumption.  The machine must be created
with ``allow_snapshot=True`` (the runner does this automatically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional, Sequence, Tuple

from repro.core.base import BaseLayout, WriteAllAlgorithm
from repro.core.tasks import TaskSet
from repro.pram.cycles import Cycle, Write, snapshot_cycle
from repro.util.bits import is_power_of_two


@dataclass(frozen=True)
class SnapshotLayout(BaseLayout):
    pass


class SnapshotAlgorithm(WriteAllAlgorithm):
    """Oblivious balanced reassignment over full-memory snapshots."""

    name = "snapshot"
    requires_snapshot = True

    def build_layout(self, n: int, p: int) -> SnapshotLayout:
        if not is_power_of_two(n):
            raise ValueError(f"snapshot algorithm needs power-of-two n, got {n}")
        return SnapshotLayout(n=n, p=p, x_base=0, size=n)

    def program(
        self, layout: SnapshotLayout, tasks: Optional[TaskSet] = None
    ) -> Callable[[int], Generator[Cycle, tuple, None]]:
        if tasks is not None and tasks.cycles_per_task != 0:
            raise ValueError(
                "the snapshot algorithm models Theorem 3.2's abstract "
                "setting and supports only the trivial task set"
            )
        n = layout.n
        p = layout.p
        x_base = layout.x_base

        def compute(pid: int) -> Callable[[Tuple[int, ...]], Sequence[Write]]:
            def writes(memory_values: Tuple[int, ...]) -> Sequence[Write]:
                unvisited = [
                    index
                    for index in range(n)
                    if memory_values[x_base + index] == 0
                ]
                if not unvisited:
                    return ()
                # Balanced oblivious assignment: processor PID takes the
                # floor(PID * U / P)-th unvisited element.
                slot = (pid * len(unvisited)) // p
                return (Write(x_base + unvisited[slot], 1),)

            return writes

        def factory(pid: int) -> Generator[Cycle, tuple, None]:
            def run() -> Generator[Cycle, tuple, None]:
                writes = compute(pid)
                while True:
                    memory_values = yield snapshot_cycle(
                        writes, label="snapshot:assign"
                    )
                    if all(
                        memory_values[x_base + index] != 0 for index in range(n)
                    ):
                        return

            return run()

        return factory
