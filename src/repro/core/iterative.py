"""The synchronized-iteration engine shared by algorithms W and V.

Both algorithms of [KS 89]/Section 4.1 run as a sequence of fixed-length
*iterations* over a progress tree with ``L = N / log N`` leaves, each
leaf owning ``log N`` array elements:

* (W only) *enumerate*: live processors count themselves bottom-up in a
  processor-counting tree and obtain a rank;
* *allocate*: processors descend the progress tree top-down, splitting
  proportionally to the unvisited-leaf counts — the Theorem 3.2 balanced
  allocation, driven by the permanent PID in V and by the (rank, total)
  pair in W;
* *work*: each processor performs the work at its leaf's elements;
* *update*: processors ascend from their leaf, rewriting each node with
  the sum of its children's done-counts, and a final cycle raises the
  completion flag once the root count reaches L.

Synchronization and restarts (the paper's "iteration wrap-around
counter", Section 4.1): every active processor writes the absolute step
number into a shared ``step`` cell on every cycle, so the cell always
holds the step executed one tick ago.  A restarted processor polls the
cell; when it reads a value two steps short of an iteration boundary it
joins the next iteration in lock step.  If the cell stays frozen for
three polls, no processor is active — the waiter asserts exactly that
("if after a restart, a processor detects that the counter did not
change for one cycle, it asserts that no processors were active") and
kick-starts a new iteration by writing a pre-boundary step value.

The step counter is *absolute* (monotone, never wrapped) so the
counting-tree entries of W can be tagged with the iteration number and
stale entries from earlier iterations decode to zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from repro.core.base import BaseLayout
from repro.core.tasks import TaskSet
from repro.core.trees import HeapTree
from repro.pram.compiled import CompiledProgram
from repro.pram.cycles import Cycle, Write
from repro.pram.errors import ProgramError

#: Consecutive identical step-cell reads a waiter needs before asserting
#: that no processor is active.  Every active cycle writes the cell, so
#: two identical reads already imply a dead machine; three adds margin.
DEAD_POLLS = 3

#: Sentinel returned by :func:`_iterations` when a guarded join failed
#: (the waiter was one tick off); the caller goes back to waiting.
RESYNC = "resync"


@dataclass(frozen=True)
class IterativeLayout(BaseLayout):
    """Shared-memory plan for the V/W iteration engine."""

    d_base: int = 0
    leaves: int = 1
    chunk: int = 1
    step_addr: int = 0
    done_addr: int = 0
    # W only; c_base < 0 means "no counting tree" (algorithm V).
    c_base: int = -1
    p_leaves: int = 1

    @property
    def progress_tree(self) -> HeapTree:
        return HeapTree(base=self.d_base, leaves=self.leaves)

    @property
    def counting_tree(self) -> HeapTree:
        if self.c_base < 0:
            raise ValueError("this layout has no counting tree (algorithm V)")
        return HeapTree(base=self.c_base, leaves=self.p_leaves)

    @property
    def has_counting_tree(self) -> bool:
        return self.c_base >= 0


def iteration_length(layout: IterativeLayout, tasks: TaskSet) -> int:
    """Total update cycles per iteration ("fixed at compile time")."""
    log_l = layout.progress_tree.height
    slot = tasks.cycles_per_task + 1
    length = (1 + log_l) + layout.chunk * slot + (1 + log_l) + 1
    if layout.has_counting_tree:
        length += 1 + layout.counting_tree.height
    return length


def _wrap_with_step(cycle: Cycle, step_write: Write) -> Cycle:
    """Append the step-counter write to a task cycle.

    Task cycles used with V/W may carry at most one write of their own so
    the wrapped cycle stays within the two-write budget.
    """

    def writes(values: Tuple[int, ...]) -> Tuple[Write, ...]:
        own = tuple(cycle.materialize_writes(values))
        if len(own) > 1:
            raise ProgramError(
                f"task cycle {cycle.label!r} has {len(own)} writes; tasks "
                f"used with the V/W engine may write at most one cell"
            )
        return own + (step_write,)

    return Cycle(reads=cycle.reads, writes=writes, label=cycle.label)


def phased_program(
    pid: int, layout: IterativeLayout, tasks: TaskSet
) -> Generator[Cycle, tuple, None]:
    """The per-processor program (waiter/recovery loop + iterations)."""
    lam = iteration_length(layout, tasks)
    step_addr = layout.step_addr
    done_addr = layout.done_addr

    last_seen: Optional[int] = None
    same_polls = 0
    while True:
        values = yield Cycle(reads=(step_addr, done_addr), label="vw:wait")
        step_seen, done = values
        if done != 0:
            return
        if step_seen % lam == lam - 2:
            # The active group executes step `step_seen + 1` this very
            # tick and the iteration boundary (step ≡ 0 mod lam) on the
            # next one — join it there.  The join is *guarded*: the first
            # joined cycle re-reads the step cell and commits only if the
            # cell confirms alignment (a cohort can die on exactly the
            # tick we read it, which would otherwise let a later waiter
            # join one tick off and break the COMMON write discipline).
            outcome = yield from _iterations(
                pid, layout, tasks, lam, step_seen + 2
            )
            if outcome != RESYNC:
                return
            last_seen = None
            same_polls = 0
            continue
        if step_seen == last_seen:
            same_polls += 1
        else:
            last_seen = step_seen
            same_polls = 1
        if same_polls >= DEAD_POLLS:
            # Nobody is active: kick-start the next iteration by placing
            # the counter two steps before its boundary; every waiter
            # (including this one) will then join in lock step.  The kick
            # must move the counter strictly forward — a cohort that died
            # at step ≡ lam-1 would otherwise be "kicked" backwards,
            # breaking the counter's monotonicity (and with it the
            # iteration tags of W's counting tree).
            kick = (step_seen // lam) * lam + (lam - 2)
            if kick <= step_seen:
                kick += lam
            yield Cycle(
                writes=(Write(step_addr, kick),), label="vw:kickstart"
            )
            last_seen = None
            same_polls = 0


def _iterations(
    pid: int,
    layout: IterativeLayout,
    tasks: TaskSet,
    lam: int,
    start_step: int,
) -> Generator[Cycle, tuple, None]:
    """Run iterations forever; return when the done flag is observed."""
    n = layout.n
    p = layout.p
    x_base = layout.x_base
    tree = layout.progress_tree
    leaves = layout.leaves
    log_l = tree.height
    chunk = layout.chunk
    k = tasks.cycles_per_task
    step_addr = layout.step_addr
    done_addr = layout.done_addr
    st = start_step
    joining = True

    def beat(extra: Tuple[Write, ...] = ()) -> Tuple[Write, ...]:
        return extra + (Write(step_addr, st),)

    def guarded(
        reads: Tuple[int, ...], payload: Tuple[Write, ...], label: str
    ) -> Cycle:
        """The join cycle: commit only if the step cell confirms sync.

        The cell must hold ``st - 2`` (frozen boundary value we joined
        on) or ``st - 1`` (a live cohort wrote it last tick).  Any other
        value means we are off by a tick — write nothing.
        """
        expected = (st - 1, st - 2)

        def writes(values: Tuple[int, ...]) -> Tuple[Write, ...]:
            if values[-1] in expected:
                return payload
            return ()

        return Cycle(reads=reads + (step_addr,), writes=writes, label=label)

    while True:
        iteration_number = st // lam

        # ---- enumerate (W only) -------------------------------------- #
        rank, total = pid, p
        if layout.has_counting_tree:
            counting = layout.counting_tree
            mult = 2 * layout.p_leaves + 1

            def decode(raw: int) -> int:
                return raw % mult if raw // mult == iteration_number else 0

            own_leaf = counting.leaf_node(pid)
            leaf_payload = beat(
                (Write(counting.address(own_leaf),
                       iteration_number * mult + 1),)
            )
            if joining:
                values = yield guarded((done_addr,), leaf_payload,
                                       "w:count-leaf")
                if values[-1] not in (st - 1, st - 2):
                    return RESYNC
                joining = False
            else:
                values = yield Cycle(
                    reads=(done_addr,), writes=leaf_payload,
                    label="w:count-leaf",
                )
            if values[0] != 0:
                return
            st += 1
            rank = 0
            node = own_leaf
            count_below = 1
            for _level in range(counting.height):
                parent = node // 2
                left, right = 2 * parent, 2 * parent + 1
                tag = iteration_number * mult

                def sum_writes(
                    values: Tuple[int, ...],
                    parent_address: int = counting.address(parent),
                    tag: int = tag,
                    step_value: int = st,
                ) -> Tuple[Write, ...]:
                    total_count = decode_pair(values, mult, iteration_number)
                    return (
                        Write(parent_address, tag + total_count),
                        Write(step_addr, step_value),
                    )

                values = yield Cycle(
                    reads=(counting.address(left), counting.address(right),
                           done_addr),
                    writes=sum_writes,
                    label="w:count-up",
                )
                left_count, right_count, done = (
                    decode(values[0]), decode(values[1]), values[2],
                )
                if done != 0:
                    return
                if node == right:
                    rank += left_count
                count_below = left_count + right_count
                node = parent
                st += 1
            total = max(1, count_below)
            rank = min(rank, total - 1)

        # ---- allocate: Theorem 3.2 balanced descent ------------------- #
        if joining:
            values = yield guarded(
                (tree.address(1), done_addr), beat(), "vw:alloc-root"
            )
            if values[-1] not in (st - 1, st - 2):
                return RESYNC
            joining = False
        else:
            values = yield Cycle(
                reads=(tree.address(1), done_addr),
                writes=beat(),
                label="vw:alloc-root",
            )
        root_count, done = values[0], values[1]
        if done != 0:
            return
        st += 1
        unvisited = leaves - root_count
        target: Optional[int] = None
        if unvisited > 0:
            target = (rank * unvisited) // total
            if target >= unvisited:
                target = target % unvisited
        node = 1
        for _level in range(log_l):
            if target is None:
                values = yield Cycle(
                    reads=(done_addr,), writes=beat(), label="vw:alloc-idle"
                )
                if values[0] != 0:
                    return
                st += 1
                continue
            left, right = 2 * node, 2 * node + 1
            values = yield Cycle(
                reads=(tree.address(left), tree.address(right), done_addr),
                writes=beat(),
                label="vw:alloc-descend",
            )
            left_done, right_done, done = values
            if done != 0:
                return
            st += 1
            left_unvisited = tree.leaves_under(left) - left_done
            right_unvisited = tree.leaves_under(right) - right_done
            remaining = left_unvisited + right_unvisited
            if remaining <= 0:
                # The parent's count was stale: this subtree is complete
                # although an ancestor believes otherwise.  Keep
                # descending (leftwards) so the bottom-up update phase
                # re-aggregates — and thereby repairs — exactly this
                # path; idling here would leave the stale count in place
                # forever and deadlock the allocation.
                node, target = left, 0
                continue
            slot_index = min(target, remaining - 1)
            if slot_index < left_unvisited:
                node, target = left, slot_index
            else:
                node, target = right, slot_index - left_unvisited
        leaf = node if target is not None else None

        # ---- work at the leaf ----------------------------------------- #
        for offset in range(chunk):
            element: Optional[int] = None
            if leaf is not None:
                element = tree.element_of(leaf) * chunk + offset
            task_cycles: List[Cycle] = []
            if element is not None and k > 0:
                task_cycles = tasks.task_cycles(element, pid)
            for index in range(k):
                if element is None:
                    values = yield Cycle(
                        reads=(done_addr,), writes=beat(), label="vw:work-idle"
                    )
                    if values[0] != 0:
                        return
                else:
                    yield _wrap_with_step(
                        task_cycles[index], Write(step_addr, st)
                    )
                st += 1
            if element is None:
                values = yield Cycle(
                    reads=(done_addr,), writes=beat(), label="vw:beat-idle"
                )
            else:
                values = yield Cycle(
                    reads=(done_addr,),
                    writes=beat((Write(x_base + element, 1),)),
                    label="vw:beat",
                )
            if values[0] != 0:
                return
            st += 1

        # ---- update the progress tree bottom-up ----------------------- #
        if leaf is None:
            values = yield Cycle(
                reads=(done_addr,), writes=beat(), label="vw:up-idle"
            )
        else:
            values = yield Cycle(
                reads=(done_addr,),
                writes=beat((Write(tree.address(leaf), 1),)),
                label="vw:up-leaf",
            )
        if values[0] != 0:
            return
        st += 1
        node = leaf if leaf is not None else 0
        for _level in range(log_l):
            if leaf is None:
                values = yield Cycle(
                    reads=(done_addr,), writes=beat(), label="vw:up-idle"
                )
                if values[0] != 0:
                    return
                st += 1
                continue
            parent = node // 2
            left, right = 2 * parent, 2 * parent + 1

            def up_writes(
                values: Tuple[int, ...],
                parent_address: int = tree.address(parent),
                step_value: int = st,
            ) -> Tuple[Write, ...]:
                return (
                    Write(parent_address, values[0] + values[1]),
                    Write(step_addr, step_value),
                )

            values = yield Cycle(
                reads=(tree.address(left), tree.address(right), done_addr),
                writes=up_writes,
                label="vw:up",
            )
            if values[2] != 0:
                return
            node = parent
            st += 1

        # ---- finalize: raise the done flag when the root is full ------ #
        def finalize_writes(
            values: Tuple[int, ...],
            full: int = leaves,
            step_value: int = st,
        ) -> Tuple[Write, ...]:
            if values[0] >= full:
                return (Write(done_addr, 1), Write(step_addr, step_value))
            return (Write(step_addr, step_value),)

        values = yield Cycle(
            reads=(tree.address(1), done_addr),
            writes=finalize_writes,
            label="vw:finalize",
        )
        root_count, done = values
        if done != 0 or root_count >= leaves:
            return
        st += 1


def decode_pair(values: Tuple[int, ...], mult: int, iteration: int) -> int:
    """Decode and sum two tagged counting-tree cells."""
    left = values[0] % mult if values[0] // mult == iteration else 0
    right = values[1] % mult if values[1] // mult == iteration else 0
    return left + right

# ===================================================================== #
# compiled kernel (algorithm W)
# ===================================================================== #

# Phase codes of the compiled stepper; one per distinct cycle shape of
# phased_program/_iterations (W configuration: counting tree present).
_WAIT = 0
_KICK = 1
_COUNT_LEAF = 2
_COUNT_UP = 3
_ALLOC_ROOT = 4
_ALLOC = 5
_BEAT = 6
_UP_LEAF = 7
_UP = 8
_FINAL = 9


class PhasedKernel(CompiledProgram):
    """Compiled form of :func:`phased_program` for algorithm W.

    The generator's control flow (waiter/recovery loop, guarded join,
    enumerate/allocate/work/update/finalize) becomes an explicit state
    machine over the phase codes above; the per-cycle closures become
    straight-line staging over raw cells.  Only the W configuration
    (counting tree present) with trivial task sets is compiled — the
    algorithm's ``compiled_program`` hook gates accordingly.

    ``quiet_step`` stages the current cycle's writes from the live
    state, then delegates the transition to :meth:`advance` so both
    lanes share one source of truth for the state machine.
    """

    __slots__ = (
        "pid", "lam", "step_addr", "done_addr", "x_base",
        "leaves", "log_l", "chunk", "d1",
        "c1", "c_height", "p_leaves", "mult", "own_leaf",
        "phase", "st", "last_seen", "same_polls", "joining", "kick",
        "iteration_number", "rank", "total", "node", "count_below",
        "level", "target", "leaf", "offset",
    )

    def __init__(self, pid: int, layout: IterativeLayout, lam: int) -> None:
        if not layout.has_counting_tree:
            raise ValueError("PhasedKernel compiles the W configuration only")
        self.pid = pid
        self.lam = lam
        self.step_addr = layout.step_addr
        self.done_addr = layout.done_addr
        self.x_base = layout.x_base
        tree = layout.progress_tree
        self.leaves = layout.leaves
        self.log_l = tree.height
        self.chunk = layout.chunk
        # tree.address(node) == base + node - 1; fold the -1 once.
        self.d1 = layout.d_base - 1
        counting = layout.counting_tree
        self.c1 = layout.c_base - 1
        self.c_height = counting.height
        self.p_leaves = layout.p_leaves
        self.mult = 2 * layout.p_leaves + 1
        self.own_leaf = counting.leaf_node(pid)
        self.live = False
        self.reset()

    def reset(self) -> bool:
        # A (re)started processor knows only its PID: it re-enters the
        # waiter loop and joins (or kick-starts) an iteration from the
        # shared step cell.  The remaining state fields are dead until
        # the phases that set them.
        self.phase = _WAIT
        self.st = 0
        self.last_seen = None
        self.same_polls = 0
        self.joining = False
        self.kick = 0
        self.iteration_number = 0
        self.rank = 0
        self.total = 1
        self.node = 0
        self.count_below = 0
        self.level = 0
        self.target = None
        self.leaf = None
        self.offset = 0
        self.live = True
        return True

    # -- the state machine (shared by both lanes) ---------------------- #

    def advance(self, values: tuple) -> bool:
        phase = self.phase
        if phase == _BEAT:
            if values[0] != 0:
                self.live = False
                return False
            self.st += 1
            offset = self.offset + 1
            self.offset = offset
            if offset >= self.chunk:
                self.phase = _UP_LEAF
            return True
        if phase == _ALLOC:
            if self.target is None:
                if values[0] != 0:
                    self.live = False
                    return False
                self.st += 1
            else:
                if values[2] != 0:
                    self.live = False
                    return False
                self.st += 1
                left = 2 * self.node
                under = self.leaves >> (left.bit_length() - 1)
                left_unvisited = under - values[0]
                right_unvisited = under - values[1]
                remaining = left_unvisited + right_unvisited
                if remaining <= 0:
                    # Stale parent count: keep descending leftwards so
                    # the update phase repairs this path (see the
                    # generator's comment).
                    self.node, self.target = left, 0
                else:
                    slot = min(self.target, remaining - 1)
                    if slot < left_unvisited:
                        self.node, self.target = left, slot
                    else:
                        self.node, self.target = left + 1, slot - left_unvisited
            self.level += 1
            if self.level >= self.log_l:
                self._finish_alloc()
            return True
        if phase == _UP:
            if self.leaf is None:
                if values[0] != 0:
                    self.live = False
                    return False
            else:
                if values[2] != 0:
                    self.live = False
                    return False
                self.node //= 2
            self.st += 1
            self.level += 1
            if self.level >= self.log_l:
                self.phase = _FINAL
            return True
        if phase == _COUNT_UP:
            if values[2] != 0:
                self.live = False
                return False
            mult = self.mult
            iteration = self.iteration_number
            raw = values[0]
            left = raw % mult if raw // mult == iteration else 0
            raw = values[1]
            right = raw % mult if raw // mult == iteration else 0
            node = self.node
            if node & 1:  # node is its parent's right child
                self.rank += left
            self.count_below = left + right
            self.node = node // 2
            self.st += 1
            self.level += 1
            if self.level >= self.c_height:
                total = self.count_below
                if total < 1:
                    total = 1
                self.total = total
                if self.rank > total - 1:
                    self.rank = total - 1
                self.phase = _ALLOC_ROOT
            return True
        if phase == _WAIT:
            step_seen, done = values[0], values[1]
            if done != 0:
                self.live = False
                return False
            lam = self.lam
            if step_seen % lam == lam - 2:
                st = step_seen + 2
                self.st = st
                self.joining = True
                self.iteration_number = st // lam
                self.phase = _COUNT_LEAF
                return True
            if step_seen == self.last_seen:
                self.same_polls += 1
            else:
                self.last_seen = step_seen
                self.same_polls = 1
            if self.same_polls >= DEAD_POLLS:
                kick = (step_seen // lam) * lam + (lam - 2)
                if kick <= step_seen:
                    kick += lam
                self.kick = kick
                self.phase = _KICK
            return True
        if phase == _COUNT_LEAF:
            if self.joining:
                if values[-1] not in (self.st - 1, self.st - 2):
                    # RESYNC: off by a tick — back to the waiter loop.
                    self.phase = _WAIT
                    self.last_seen = None
                    self.same_polls = 0
                    self.joining = False
                    return True
                self.joining = False
            if values[0] != 0:
                self.live = False
                return False
            self.st += 1
            self.rank = 0
            self.node = self.own_leaf
            self.count_below = 1
            self.level = 0
            if self.c_height == 0:
                self.total = 1
                self.phase = _ALLOC_ROOT
            else:
                self.phase = _COUNT_UP
            return True
        if phase == _UP_LEAF:
            if values[0] != 0:
                self.live = False
                return False
            self.st += 1
            self.node = self.leaf if self.leaf is not None else 0
            self.level = 0
            self.phase = _UP if self.log_l > 0 else _FINAL
            return True
        if phase == _ALLOC_ROOT:
            root_count, done = values[0], values[1]
            if done != 0:
                self.live = False
                return False
            self.st += 1
            unvisited = self.leaves - root_count
            if unvisited > 0:
                target = (self.rank * unvisited) // self.total
                if target >= unvisited:
                    target %= unvisited
                self.target = target
            else:
                self.target = None
            self.node = 1
            self.level = 0
            if self.log_l == 0:
                self._finish_alloc()
            else:
                self.phase = _ALLOC
            return True
        if phase == _FINAL:
            root_count, done = values[0], values[1]
            if done != 0 or root_count >= self.leaves:
                self.live = False
                return False
            self.st += 1
            self.iteration_number = self.st // self.lam
            self.phase = _COUNT_LEAF
            return True
        # phase == _KICK: the kick cycle has no reads; resume polling.
        self.last_seen = None
        self.same_polls = 0
        self.phase = _WAIT
        return True

    def _finish_alloc(self) -> None:
        self.leaf = self.node if self.target is not None else None
        self.offset = 0
        self.phase = _BEAT

    # -- fused quiet lane ---------------------------------------------- #

    def quiet_step(self, cells: Sequence[int], out: List[int]) -> int:
        phase = self.phase
        step_addr = self.step_addr
        done_addr = self.done_addr
        st = self.st
        if phase == _BEAT:
            v0 = cells[done_addr]
            leaf = self.leaf
            if leaf is not None:
                element = (leaf - self.leaves) * self.chunk + self.offset
                out.append(self.x_base + element)
                out.append(1)
            out.append(step_addr)
            out.append(st)
            self.advance((v0,))
            return 1
        if phase == _ALLOC:
            if self.target is None:
                v0 = cells[done_addr]
                out.append(step_addr)
                out.append(st)
                self.advance((v0,))
                return 1
            left_addr = self.d1 + 2 * self.node
            v0 = cells[left_addr]
            v1 = cells[left_addr + 1]
            v2 = cells[done_addr]
            out.append(step_addr)
            out.append(st)
            self.advance((v0, v1, v2))
            return 3
        if phase == _UP:
            if self.leaf is None:
                v0 = cells[done_addr]
                out.append(step_addr)
                out.append(st)
                self.advance((v0,))
                return 1
            parent = self.node // 2
            left_addr = self.d1 + 2 * parent
            v0 = cells[left_addr]
            v1 = cells[left_addr + 1]
            v2 = cells[done_addr]
            out.append(self.d1 + parent)
            out.append(v0 + v1)
            out.append(step_addr)
            out.append(st)
            self.advance((v0, v1, v2))
            return 3
        if phase == _COUNT_UP:
            parent = self.node // 2
            left_addr = self.c1 + 2 * parent
            v0 = cells[left_addr]
            v1 = cells[left_addr + 1]
            v2 = cells[done_addr]
            mult = self.mult
            iteration = self.iteration_number
            left = v0 % mult if v0 // mult == iteration else 0
            right = v1 % mult if v1 // mult == iteration else 0
            out.append(self.c1 + parent)
            out.append(iteration * mult + left + right)
            out.append(step_addr)
            out.append(st)
            self.advance((v0, v1, v2))
            return 3
        if phase == _WAIT:
            v0 = cells[step_addr]
            v1 = cells[done_addr]
            self.advance((v0, v1))
            return 2
        if phase == _COUNT_LEAF:
            payload_value = self.iteration_number * self.mult + 1
            if self.joining:
                v0 = cells[done_addr]
                v1 = cells[step_addr]
                if v1 == st - 1 or v1 == st - 2:
                    out.append(self.c1 + self.own_leaf)
                    out.append(payload_value)
                    out.append(step_addr)
                    out.append(st)
                self.advance((v0, v1))
                return 2
            v0 = cells[done_addr]
            out.append(self.c1 + self.own_leaf)
            out.append(payload_value)
            out.append(step_addr)
            out.append(st)
            self.advance((v0,))
            return 1
        if phase == _UP_LEAF:
            v0 = cells[done_addr]
            leaf = self.leaf
            if leaf is not None:
                out.append(self.d1 + leaf)
                out.append(1)
            out.append(step_addr)
            out.append(st)
            self.advance((v0,))
            return 1
        if phase == _ALLOC_ROOT:
            v0 = cells[self.d1 + 1]
            v1 = cells[done_addr]
            out.append(step_addr)
            out.append(st)
            self.advance((v0, v1))
            return 2
        if phase == _FINAL:
            v0 = cells[self.d1 + 1]
            v1 = cells[done_addr]
            if v0 >= self.leaves:
                out.append(done_addr)
                out.append(1)
            out.append(step_addr)
            out.append(st)
            self.advance((v0, v1))
            return 2
        # phase == _KICK
        out.append(step_addr)
        out.append(self.kick)
        self.advance(())
        return 0

    # -- observable lane ------------------------------------------------ #

    def current_cycle(self) -> Cycle:
        phase = self.phase
        step_addr = self.step_addr
        done_addr = self.done_addr
        step_write = Write(step_addr, self.st)
        if phase == _BEAT:
            leaf = self.leaf
            if leaf is None:
                return Cycle(
                    reads=(done_addr,), writes=(step_write,),
                    label="vw:beat-idle",
                )
            element = (leaf - self.leaves) * self.chunk + self.offset
            return Cycle(
                reads=(done_addr,),
                writes=(Write(self.x_base + element, 1), step_write),
                label="vw:beat",
            )
        if phase == _ALLOC:
            if self.target is None:
                return Cycle(
                    reads=(done_addr,), writes=(step_write,),
                    label="vw:alloc-idle",
                )
            left_addr = self.d1 + 2 * self.node
            return Cycle(
                reads=(left_addr, left_addr + 1, done_addr),
                writes=(step_write,),
                label="vw:alloc-descend",
            )
        if phase == _UP:
            if self.leaf is None:
                return Cycle(
                    reads=(done_addr,), writes=(step_write,),
                    label="vw:up-idle",
                )
            parent = self.node // 2
            left_addr = self.d1 + 2 * parent

            def up_writes(
                values: Tuple[int, ...],
                parent_address: int = self.d1 + parent,
                step_write: Write = step_write,
            ) -> Tuple[Write, ...]:
                return (Write(parent_address, values[0] + values[1]), step_write)

            return Cycle(
                reads=(left_addr, left_addr + 1, done_addr),
                writes=up_writes,
                label="vw:up",
            )
        if phase == _COUNT_UP:
            parent = self.node // 2
            left_addr = self.c1 + 2 * parent

            def sum_writes(
                values: Tuple[int, ...],
                parent_address: int = self.c1 + parent,
                mult: int = self.mult,
                iteration: int = self.iteration_number,
                step_write: Write = step_write,
            ) -> Tuple[Write, ...]:
                total_count = decode_pair(values, mult, iteration)
                return (
                    Write(parent_address, iteration * mult + total_count),
                    step_write,
                )

            return Cycle(
                reads=(left_addr, left_addr + 1, done_addr),
                writes=sum_writes,
                label="w:count-up",
            )
        if phase == _WAIT:
            return Cycle(reads=(step_addr, done_addr), label="vw:wait")
        if phase == _COUNT_LEAF:
            payload = (
                Write(self.c1 + self.own_leaf,
                      self.iteration_number * self.mult + 1),
                step_write,
            )
            if self.joining:
                expected = (self.st - 1, self.st - 2)

                def guarded_writes(
                    values: Tuple[int, ...],
                    expected: Tuple[int, int] = expected,
                    payload: Tuple[Write, ...] = payload,
                ) -> Tuple[Write, ...]:
                    if values[-1] in expected:
                        return payload
                    return ()

                return Cycle(
                    reads=(done_addr, step_addr),
                    writes=guarded_writes,
                    label="w:count-leaf",
                )
            return Cycle(
                reads=(done_addr,), writes=payload, label="w:count-leaf"
            )
        if phase == _UP_LEAF:
            leaf = self.leaf
            if leaf is None:
                return Cycle(
                    reads=(done_addr,), writes=(step_write,),
                    label="vw:up-idle",
                )
            return Cycle(
                reads=(done_addr,),
                writes=(Write(self.d1 + leaf, 1), step_write),
                label="vw:up-leaf",
            )
        if phase == _ALLOC_ROOT:
            return Cycle(
                reads=(self.d1 + 1, done_addr),
                writes=(step_write,),
                label="vw:alloc-root",
            )
        if phase == _FINAL:

            def finalize_writes(
                values: Tuple[int, ...],
                full: int = self.leaves,
                done_addr: int = done_addr,
                step_write: Write = step_write,
            ) -> Tuple[Write, ...]:
                if values[0] >= full:
                    return (Write(done_addr, 1), step_write)
                return (step_write,)

            return Cycle(
                reads=(self.d1 + 1, done_addr),
                writes=finalize_writes,
                label="vw:finalize",
            )
        # phase == _KICK
        return Cycle(
            writes=(Write(step_addr, self.kick),), label="vw:kickstart"
        )
