"""The synchronized-iteration engine shared by algorithms W and V.

Both algorithms of [KS 89]/Section 4.1 run as a sequence of fixed-length
*iterations* over a progress tree with ``L = N / log N`` leaves, each
leaf owning ``log N`` array elements:

* (W only) *enumerate*: live processors count themselves bottom-up in a
  processor-counting tree and obtain a rank;
* *allocate*: processors descend the progress tree top-down, splitting
  proportionally to the unvisited-leaf counts — the Theorem 3.2 balanced
  allocation, driven by the permanent PID in V and by the (rank, total)
  pair in W;
* *work*: each processor performs the work at its leaf's elements;
* *update*: processors ascend from their leaf, rewriting each node with
  the sum of its children's done-counts, and a final cycle raises the
  completion flag once the root count reaches L.

Synchronization and restarts (the paper's "iteration wrap-around
counter", Section 4.1): every active processor writes the absolute step
number into a shared ``step`` cell on every cycle, so the cell always
holds the step executed one tick ago.  A restarted processor polls the
cell; when it reads a value two steps short of an iteration boundary it
joins the next iteration in lock step.  If the cell stays frozen for
three polls, no processor is active — the waiter asserts exactly that
("if after a restart, a processor detects that the counter did not
change for one cycle, it asserts that no processors were active") and
kick-starts a new iteration by writing a pre-boundary step value.

The step counter is *absolute* (monotone, never wrapped) so the
counting-tree entries of W can be tagged with the iteration number and
stale entries from earlier iterations decode to zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.core.base import BaseLayout
from repro.core.tasks import TaskSet
from repro.core.trees import HeapTree
from repro.pram.cycles import Cycle, Write
from repro.pram.errors import ProgramError

#: Consecutive identical step-cell reads a waiter needs before asserting
#: that no processor is active.  Every active cycle writes the cell, so
#: two identical reads already imply a dead machine; three adds margin.
DEAD_POLLS = 3

#: Sentinel returned by :func:`_iterations` when a guarded join failed
#: (the waiter was one tick off); the caller goes back to waiting.
RESYNC = "resync"


@dataclass(frozen=True)
class IterativeLayout(BaseLayout):
    """Shared-memory plan for the V/W iteration engine."""

    d_base: int = 0
    leaves: int = 1
    chunk: int = 1
    step_addr: int = 0
    done_addr: int = 0
    # W only; c_base < 0 means "no counting tree" (algorithm V).
    c_base: int = -1
    p_leaves: int = 1

    @property
    def progress_tree(self) -> HeapTree:
        return HeapTree(base=self.d_base, leaves=self.leaves)

    @property
    def counting_tree(self) -> HeapTree:
        if self.c_base < 0:
            raise ValueError("this layout has no counting tree (algorithm V)")
        return HeapTree(base=self.c_base, leaves=self.p_leaves)

    @property
    def has_counting_tree(self) -> bool:
        return self.c_base >= 0


def iteration_length(layout: IterativeLayout, tasks: TaskSet) -> int:
    """Total update cycles per iteration ("fixed at compile time")."""
    log_l = layout.progress_tree.height
    slot = tasks.cycles_per_task + 1
    length = (1 + log_l) + layout.chunk * slot + (1 + log_l) + 1
    if layout.has_counting_tree:
        length += 1 + layout.counting_tree.height
    return length


def _wrap_with_step(cycle: Cycle, step_write: Write) -> Cycle:
    """Append the step-counter write to a task cycle.

    Task cycles used with V/W may carry at most one write of their own so
    the wrapped cycle stays within the two-write budget.
    """

    def writes(values: Tuple[int, ...]) -> Tuple[Write, ...]:
        own = tuple(cycle.materialize_writes(values))
        if len(own) > 1:
            raise ProgramError(
                f"task cycle {cycle.label!r} has {len(own)} writes; tasks "
                f"used with the V/W engine may write at most one cell"
            )
        return own + (step_write,)

    return Cycle(reads=cycle.reads, writes=writes, label=cycle.label)


def phased_program(
    pid: int, layout: IterativeLayout, tasks: TaskSet
) -> Generator[Cycle, tuple, None]:
    """The per-processor program (waiter/recovery loop + iterations)."""
    lam = iteration_length(layout, tasks)
    step_addr = layout.step_addr
    done_addr = layout.done_addr

    last_seen: Optional[int] = None
    same_polls = 0
    while True:
        values = yield Cycle(reads=(step_addr, done_addr), label="vw:wait")
        step_seen, done = values
        if done != 0:
            return
        if step_seen % lam == lam - 2:
            # The active group executes step `step_seen + 1` this very
            # tick and the iteration boundary (step ≡ 0 mod lam) on the
            # next one — join it there.  The join is *guarded*: the first
            # joined cycle re-reads the step cell and commits only if the
            # cell confirms alignment (a cohort can die on exactly the
            # tick we read it, which would otherwise let a later waiter
            # join one tick off and break the COMMON write discipline).
            outcome = yield from _iterations(
                pid, layout, tasks, lam, step_seen + 2
            )
            if outcome != RESYNC:
                return
            last_seen = None
            same_polls = 0
            continue
        if step_seen == last_seen:
            same_polls += 1
        else:
            last_seen = step_seen
            same_polls = 1
        if same_polls >= DEAD_POLLS:
            # Nobody is active: kick-start the next iteration by placing
            # the counter two steps before its boundary; every waiter
            # (including this one) will then join in lock step.  The kick
            # must move the counter strictly forward — a cohort that died
            # at step ≡ lam-1 would otherwise be "kicked" backwards,
            # breaking the counter's monotonicity (and with it the
            # iteration tags of W's counting tree).
            kick = (step_seen // lam) * lam + (lam - 2)
            if kick <= step_seen:
                kick += lam
            yield Cycle(
                writes=(Write(step_addr, kick),), label="vw:kickstart"
            )
            last_seen = None
            same_polls = 0


def _iterations(
    pid: int,
    layout: IterativeLayout,
    tasks: TaskSet,
    lam: int,
    start_step: int,
) -> Generator[Cycle, tuple, None]:
    """Run iterations forever; return when the done flag is observed."""
    n = layout.n
    p = layout.p
    x_base = layout.x_base
    tree = layout.progress_tree
    leaves = layout.leaves
    log_l = tree.height
    chunk = layout.chunk
    k = tasks.cycles_per_task
    step_addr = layout.step_addr
    done_addr = layout.done_addr
    st = start_step
    joining = True

    def beat(extra: Tuple[Write, ...] = ()) -> Tuple[Write, ...]:
        return extra + (Write(step_addr, st),)

    def guarded(
        reads: Tuple[int, ...], payload: Tuple[Write, ...], label: str
    ) -> Cycle:
        """The join cycle: commit only if the step cell confirms sync.

        The cell must hold ``st - 2`` (frozen boundary value we joined
        on) or ``st - 1`` (a live cohort wrote it last tick).  Any other
        value means we are off by a tick — write nothing.
        """
        expected = (st - 1, st - 2)

        def writes(values: Tuple[int, ...]) -> Tuple[Write, ...]:
            if values[-1] in expected:
                return payload
            return ()

        return Cycle(reads=reads + (step_addr,), writes=writes, label=label)

    while True:
        iteration_number = st // lam

        # ---- enumerate (W only) -------------------------------------- #
        rank, total = pid, p
        if layout.has_counting_tree:
            counting = layout.counting_tree
            mult = 2 * layout.p_leaves + 1

            def decode(raw: int) -> int:
                return raw % mult if raw // mult == iteration_number else 0

            own_leaf = counting.leaf_node(pid)
            leaf_payload = beat(
                (Write(counting.address(own_leaf),
                       iteration_number * mult + 1),)
            )
            if joining:
                values = yield guarded((done_addr,), leaf_payload,
                                       "w:count-leaf")
                if values[-1] not in (st - 1, st - 2):
                    return RESYNC
                joining = False
            else:
                values = yield Cycle(
                    reads=(done_addr,), writes=leaf_payload,
                    label="w:count-leaf",
                )
            if values[0] != 0:
                return
            st += 1
            rank = 0
            node = own_leaf
            count_below = 1
            for _level in range(counting.height):
                parent = node // 2
                left, right = 2 * parent, 2 * parent + 1
                tag = iteration_number * mult

                def sum_writes(
                    values: Tuple[int, ...],
                    parent_address: int = counting.address(parent),
                    tag: int = tag,
                    step_value: int = st,
                ) -> Tuple[Write, ...]:
                    total_count = decode_pair(values, mult, iteration_number)
                    return (
                        Write(parent_address, tag + total_count),
                        Write(step_addr, step_value),
                    )

                values = yield Cycle(
                    reads=(counting.address(left), counting.address(right),
                           done_addr),
                    writes=sum_writes,
                    label="w:count-up",
                )
                left_count, right_count, done = (
                    decode(values[0]), decode(values[1]), values[2],
                )
                if done != 0:
                    return
                if node == right:
                    rank += left_count
                count_below = left_count + right_count
                node = parent
                st += 1
            total = max(1, count_below)
            rank = min(rank, total - 1)

        # ---- allocate: Theorem 3.2 balanced descent ------------------- #
        if joining:
            values = yield guarded(
                (tree.address(1), done_addr), beat(), "vw:alloc-root"
            )
            if values[-1] not in (st - 1, st - 2):
                return RESYNC
            joining = False
        else:
            values = yield Cycle(
                reads=(tree.address(1), done_addr),
                writes=beat(),
                label="vw:alloc-root",
            )
        root_count, done = values[0], values[1]
        if done != 0:
            return
        st += 1
        unvisited = leaves - root_count
        target: Optional[int] = None
        if unvisited > 0:
            target = (rank * unvisited) // total
            if target >= unvisited:
                target = target % unvisited
        node = 1
        for _level in range(log_l):
            if target is None:
                values = yield Cycle(
                    reads=(done_addr,), writes=beat(), label="vw:alloc-idle"
                )
                if values[0] != 0:
                    return
                st += 1
                continue
            left, right = 2 * node, 2 * node + 1
            values = yield Cycle(
                reads=(tree.address(left), tree.address(right), done_addr),
                writes=beat(),
                label="vw:alloc-descend",
            )
            left_done, right_done, done = values
            if done != 0:
                return
            st += 1
            left_unvisited = tree.leaves_under(left) - left_done
            right_unvisited = tree.leaves_under(right) - right_done
            remaining = left_unvisited + right_unvisited
            if remaining <= 0:
                # The parent's count was stale: this subtree is complete
                # although an ancestor believes otherwise.  Keep
                # descending (leftwards) so the bottom-up update phase
                # re-aggregates — and thereby repairs — exactly this
                # path; idling here would leave the stale count in place
                # forever and deadlock the allocation.
                node, target = left, 0
                continue
            slot_index = min(target, remaining - 1)
            if slot_index < left_unvisited:
                node, target = left, slot_index
            else:
                node, target = right, slot_index - left_unvisited
        leaf = node if target is not None else None

        # ---- work at the leaf ----------------------------------------- #
        for offset in range(chunk):
            element: Optional[int] = None
            if leaf is not None:
                element = tree.element_of(leaf) * chunk + offset
            task_cycles: List[Cycle] = []
            if element is not None and k > 0:
                task_cycles = tasks.task_cycles(element, pid)
            for index in range(k):
                if element is None:
                    values = yield Cycle(
                        reads=(done_addr,), writes=beat(), label="vw:work-idle"
                    )
                    if values[0] != 0:
                        return
                else:
                    yield _wrap_with_step(
                        task_cycles[index], Write(step_addr, st)
                    )
                st += 1
            if element is None:
                values = yield Cycle(
                    reads=(done_addr,), writes=beat(), label="vw:beat-idle"
                )
            else:
                values = yield Cycle(
                    reads=(done_addr,),
                    writes=beat((Write(x_base + element, 1),)),
                    label="vw:beat",
                )
            if values[0] != 0:
                return
            st += 1

        # ---- update the progress tree bottom-up ----------------------- #
        if leaf is None:
            values = yield Cycle(
                reads=(done_addr,), writes=beat(), label="vw:up-idle"
            )
        else:
            values = yield Cycle(
                reads=(done_addr,),
                writes=beat((Write(tree.address(leaf), 1),)),
                label="vw:up-leaf",
            )
        if values[0] != 0:
            return
        st += 1
        node = leaf if leaf is not None else 0
        for _level in range(log_l):
            if leaf is None:
                values = yield Cycle(
                    reads=(done_addr,), writes=beat(), label="vw:up-idle"
                )
                if values[0] != 0:
                    return
                st += 1
                continue
            parent = node // 2
            left, right = 2 * parent, 2 * parent + 1

            def up_writes(
                values: Tuple[int, ...],
                parent_address: int = tree.address(parent),
                step_value: int = st,
            ) -> Tuple[Write, ...]:
                return (
                    Write(parent_address, values[0] + values[1]),
                    Write(step_addr, step_value),
                )

            values = yield Cycle(
                reads=(tree.address(left), tree.address(right), done_addr),
                writes=up_writes,
                label="vw:up",
            )
            if values[2] != 0:
                return
            node = parent
            st += 1

        # ---- finalize: raise the done flag when the root is full ------ #
        def finalize_writes(
            values: Tuple[int, ...],
            full: int = leaves,
            step_value: int = st,
        ) -> Tuple[Write, ...]:
            if values[0] >= full:
                return (Write(done_addr, 1), Write(step_addr, step_value))
            return (Write(step_addr, step_value),)

        values = yield Cycle(
            reads=(tree.address(1), done_addr),
            writes=finalize_writes,
            label="vw:finalize",
        )
        root_count, done = values
        if done != 0 or root_count >= leaves:
            return
        st += 1


def decode_pair(values: Tuple[int, ...], mult: int, iteration: int) -> int:
    """Decode and sum two tagged counting-tree cells."""
    left = values[0] % mult if values[0] // mult == iteration else 0
    right = values[1] % mult if values[1] // mult == iteration else 0
    return left + right
