"""Base classes for Write-All algorithms.

Every algorithm in this package describes:

* a *layout* — where its shared data structures live in memory (the
  Write-All array ``x`` always occupies ``[x_base, x_base + n)``); the
  layout is also handed to adversaries via the machine context, which is
  how the paper's omniscient adversaries find the progress tree and the
  processor position array;
* a *program* — the per-processor generator of update cycles, written in
  recovery style (the [SS 83] action/recovery construct of Remark 6):
  the program's first cycles read shared checkpoints to decide where to
  resume, because a restarted processor re-enters at its initial state
  knowing only its PID.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.core.tasks import TaskSet, TrivialTasks
from repro.pram.cycles import Cycle
from repro.pram.memory import MemoryReader, SharedMemory


@dataclass(frozen=True)
class BaseLayout:
    """Common fields of every Write-All layout."""

    n: int
    p: int
    x_base: int
    size: int


class WriteAllAlgorithm:
    """A Write-All solution parameterized by a :class:`TaskSet`."""

    #: Short name used in tables and benchmark output.
    name = "abstract"
    #: Whether the algorithm needs unit-cost memory snapshots (Thm 3.2).
    requires_snapshot = False
    #: Whether the algorithm tolerates processor failures at all.
    fault_tolerant = True
    #: Whether the algorithm guarantees termination under arbitrary
    #: failure/restart patterns (V does not — Section 4.1).
    terminates_under_restarts = True

    def build_layout(self, n: int, p: int) -> BaseLayout:
        """Plan the shared-memory layout for an (n, p) instance."""
        raise NotImplementedError

    def initialize_memory(self, memory: SharedMemory, layout: BaseLayout) -> None:
        """Set up non-zero initial shared state (most algorithms: none).

        The model clears shared memory to zeroes; anything else written
        here must be justified as part of the input encoding.
        """

    def program(
        self, layout: BaseLayout, tasks: TaskSet
    ) -> Callable[[int], Generator[Cycle, tuple, None]]:
        """Return the per-processor program factory."""
        raise NotImplementedError

    def compiled_program(
        self, layout: BaseLayout, tasks: Optional[TaskSet] = None
    ) -> Optional[Callable[[int], object]]:
        """Optional compiled kernel factory for this configuration.

        Returns a ``pid -> CompiledProgram`` factory (see
        :mod:`repro.pram.compiled`) that is observationally identical
        to :meth:`program`, or ``None`` when no kernel applies (the
        default — e.g. non-trivial task sets).  Like the adversary's
        ``passive``/``quiet_until`` promises, the hook is only honored
        when it is declared by the class that defines the effective
        ``program()`` (``repro.pram.compiled.trusted_compiled_program``
        enforces this), so a subclass overriding ``program()`` cannot
        accidentally inherit a stale kernel.
        """
        return None

    def vectorized_program(
        self, layout: BaseLayout, tasks: Optional[TaskSet] = None
    ) -> Optional[object]:
        """Optional whole-machine vector program for this configuration.

        Returns a :class:`repro.pram.vectorized.VectorProgram` that is
        observationally identical to :meth:`program`, or ``None`` when
        the configuration cannot be vectorized (the default).  Trusted
        under the same MRO guard as :meth:`compiled_program`
        (``repro.pram.vectorized.trusted_vectorized_program``), and
        only consulted when the run opted in with ``--vectorized``.
        """
        return None

    def is_done(self, memory: MemoryReader, layout: BaseLayout) -> bool:
        """Whether the Write-All array is fully visited (uncharged check)."""
        x_base = layout.x_base
        return all(memory.read(x_base + index) != 0 for index in range(layout.n))

    def until_predicate(
        self, layout: BaseLayout, incremental: bool = True
    ) -> Callable[[MemoryReader], bool]:
        """The machine's termination predicate for this algorithm.

        The default is :func:`done_predicate` over the Write-All array.
        Algorithms whose completion certificate lives elsewhere — e.g.
        :class:`repro.core.fault_routing.FaultRouting`, whose ``x`` cells
        may be permanently dead under static memory faults — override
        this to watch their own certificate region.
        """
        return done_predicate(layout, incremental)


def done_predicate(
    layout: BaseLayout,
    incremental: bool = True,
    region: Optional[tuple] = None,
) -> Callable[[MemoryReader], bool]:
    """An ``until`` predicate for the machine: all of x is written.

    ``region=(base, count)`` watches an arbitrary memory region instead
    of the Write-All array — used by algorithms whose completion
    certificate lives outside ``x``.

    With ``incremental=True`` (the default) the predicate registers a
    zero-region tracker over ``x`` with the memory layer on its first
    call; every write path maintains the tracker, so the per-tick
    termination check is O(1) instead of an O(N) rescan.  Memory views
    without trackers — and ``incremental=False``, which the perf harness
    uses as the pre-optimization baseline — fall back to the scan.
    """
    x_base, n = region if region is not None else (layout.x_base, layout.n)
    state = {"tracker": None}

    def all_written(memory: MemoryReader) -> bool:
        tracker = state["tracker"]
        if tracker is not None:
            return tracker.zeros == 0
        if incremental:
            track = getattr(memory, "track_zeros", None)
            if track is not None:
                tracker = track(x_base, n)
                state["tracker"] = tracker
                return tracker.zeros == 0
        for index in range(n):
            if memory.read(x_base + index) == 0:
                return False
        return True

    if incremental:
        # Machine-readable shape of the goal: "the region [x_base,
        # x_base + n) has no zeros".  The vectorized lane batches whole
        # quiet windows and uses this to evaluate the predicate inside
        # the batch (computing the exact first tick it flips) instead
        # of breaking the window every tick.
        all_written.zero_goal = (x_base, n)

    return all_written


def default_tasks(tasks: Optional[TaskSet]) -> TaskSet:
    return tasks if tasks is not None else TrivialTasks()
