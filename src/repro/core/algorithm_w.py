"""Algorithm W of [KS 89] — the fail-stop (no-restart) baseline.

The four synchronized phases of Section 4.1:

1. live processors are counted and enumerated bottom-up in a processor
   counting tree;
2. processors are allocated to unvisited leaves top-down using their
   (rank, total) from phase 1;
3. the work at the leaves is performed (log N elements per leaf);
4. the progress tree is updated bottom-up.

W is efficient under fail-stop errors *without* restarts; with restarts
its enumeration becomes stale (revived processors are invisible until
the next iteration, failed ones are over-counted), which motivates
algorithm V.  Our implementation runs under restarts anyway (the same
wrap-around counter mechanism as V) so the degradation is measurable.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.core.algorithm_v import progress_geometry
from repro.core.base import WriteAllAlgorithm, default_tasks
from repro.core.iterative import (
    IterativeLayout,
    PhasedKernel,
    iteration_length,
    phased_program,
)
from repro.core.tasks import TaskSet
from repro.pram.cycles import Cycle
from repro.util.bits import next_power_of_two


class WLayout(IterativeLayout):
    pass


class AlgorithmW(WriteAllAlgorithm):
    """Four synchronized phases per iteration; rank-driven allocation."""

    name = "W"
    terminates_under_restarts = False

    def build_layout(self, n: int, p: int) -> WLayout:
        leaves, chunk = progress_geometry(n)
        p_leaves = next_power_of_two(p)
        x_base = 0
        d_base = n
        c_base = d_base + (2 * leaves - 1)
        step_addr = c_base + (2 * p_leaves - 1)
        done_addr = step_addr + 1
        size = done_addr + 1
        return WLayout(
            n=n, p=p, x_base=x_base, size=size,
            d_base=d_base, leaves=leaves, chunk=chunk,
            step_addr=step_addr, done_addr=done_addr,
            c_base=c_base, p_leaves=p_leaves,
        )

    def program(
        self, layout: WLayout, tasks: Optional[TaskSet] = None
    ) -> Callable[[int], Generator[Cycle, tuple, None]]:
        tasks = default_tasks(tasks)

        def factory(pid: int) -> Generator[Cycle, tuple, None]:
            return phased_program(pid, layout, tasks)

        return factory

    def compiled_program(
        self, layout: WLayout, tasks: Optional[TaskSet] = None
    ) -> Optional[Callable[[int], PhasedKernel]]:
        tasks = default_tasks(tasks)
        if tasks.cycles_per_task != 0:
            return None  # task cycles need the generator path
        lam = iteration_length(layout, tasks)

        def factory(pid: int) -> PhasedKernel:
            return PhasedKernel(pid, layout, lam)

        return factory

    def vectorized_program(
        self, layout: WLayout, tasks: Optional[TaskSet] = None
    ) -> Optional[object]:
        tasks = default_tasks(tasks)
        if tasks.cycles_per_task != 0:
            return None  # task cycles need the generator path
        from repro.core.vector_kernels import WVector

        return WVector(layout, iteration_length(layout, tasks))
