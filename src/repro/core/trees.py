"""Heap-coded full binary trees in shared memory.

"The algorithm uses a full binary tree of size 2N-1, stored as a heap
d[1 .. 2N-1] in shared memory.  An internal tree node d[i] has the left
child d[2i] and the right child d[2i+1]" (Section 4.2).  The same
encoding backs algorithm V's progress tree and algorithm W's processor
counting tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.bits import bit_length_of_power, is_power_of_two


@dataclass(frozen=True)
class HeapTree:
    """Address arithmetic for a heap-coded full binary tree.

    Nodes are numbered 1 (root) through ``2 * leaves - 1``; node ``i``
    lives at shared-memory address ``base + i - 1``.  Leaf ``j`` (element
    index, 0-based) is node ``leaves + j``.
    """

    base: int
    leaves: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.leaves):
            raise ValueError(
                f"HeapTree needs a power-of-two leaf count, got {self.leaves}"
            )

    @property
    def size(self) -> int:
        """Number of nodes (= cells) in the tree."""
        return 2 * self.leaves - 1

    @property
    def height(self) -> int:
        """Edges from root to leaf: log2(leaves)."""
        return bit_length_of_power(self.leaves)

    @property
    def root(self) -> int:
        return 1

    def address(self, node: int) -> int:
        """Shared-memory address of node ``node``."""
        if not 1 <= node <= self.size:
            raise ValueError(f"node {node} out of range [1, {self.size}]")
        return self.base + node - 1

    def left(self, node: int) -> int:
        return 2 * node

    def right(self, node: int) -> int:
        return 2 * node + 1

    def parent(self, node: int) -> int:
        return node // 2

    def is_leaf(self, node: int) -> bool:
        return node >= self.leaves

    def leaf_node(self, element: int) -> int:
        """Tree node holding leaf ``element`` (0-based)."""
        if not 0 <= element < self.leaves:
            raise ValueError(
                f"leaf element {element} out of range [0, {self.leaves})"
            )
        return self.leaves + element

    def element_of(self, node: int) -> int:
        """Leaf element index (0-based) of leaf node ``node``."""
        if not self.is_leaf(node):
            raise ValueError(f"node {node} is not a leaf")
        return node - self.leaves

    def depth(self, node: int) -> int:
        """Depth of ``node`` (root = 0)."""
        if not 1 <= node <= self.size:
            raise ValueError(f"node {node} out of range [1, {self.size}]")
        return node.bit_length() - 1

    def leaves_under(self, node: int) -> int:
        """Number of leaves in the subtree rooted at ``node``."""
        return self.leaves >> self.depth(node)
