"""The Write-All problem: instance validation and solution checking.

    "Given a P-processor PRAM and a 0-valued array of N elements,
    write value 1 into all array locations."  (Section 1)

N must be a power of two ("Nonpowers of 2 can be handled using
conventional padding techniques", Section 4); :func:`padded_size` applies
that convention for callers with awkward sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pram.memory import MemoryReader
from repro.util.bits import is_power_of_two, next_power_of_two
from repro.util.checks import require_positive


@dataclass(frozen=True)
class WriteAllInstance:
    """An (N, P) Write-All instance."""

    n: int
    p: int

    def __post_init__(self) -> None:
        require_positive(self.n, "n")
        require_positive(self.p, "p")
        if not is_power_of_two(self.n):
            raise ValueError(
                f"Write-All size n must be a power of two, got {self.n} "
                f"(pad to {next_power_of_two(self.n)})"
            )


def padded_size(n: int) -> int:
    """The padded power-of-two instance size for a raw size ``n``."""
    require_positive(n, "n")
    return next_power_of_two(n)


def verify_solution(
    memory: MemoryReader, x_base: int, n: int, skip=frozenset()
) -> bool:
    """Check that every element of the Write-All array equals 1.

    This is the harness-level correctness oracle (uncharged reads); the
    algorithms themselves must discover completion through charged update
    cycles.  ``skip`` is the set of statically-dead cell addresses under
    the CGP memory-fault model: a dead cell can never hold a written
    value, so the oracle (like CGP's problem statement) only requires
    the *live* cells of the array to be written.
    """
    region = getattr(memory, "region", None)
    if region is not None and not skip:
        # One C-level slice + compare instead of n validated reads; the
        # oracle runs after every benchmarked run, so its cost must not
        # drown small-machine timings.
        return region(x_base, n) == [1] * n
    return all(
        memory.read(x_base + index) == 1
        for index in range(n)
        if x_base + index not in skip
    )


def unvisited_count(memory: MemoryReader, x_base: int, n: int) -> int:
    """Number of still-unwritten elements (harness-level)."""
    region = getattr(memory, "region", None)
    if region is not None:
        return region(x_base, n).count(0)
    return sum(1 for index in range(n) if memory.read(x_base + index) == 0)
