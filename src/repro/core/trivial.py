"""The trivial (non-fault-tolerant) parallel assignment.

"In the absence of failures, this problem is solved by a trivial and
optimal parallel assignment" (Section 1).  Each processor writes its
N/P-th share of the array.  It is the work-optimal baseline every
fault-tolerant algorithm is compared against — and it simply never
finishes if a processor with unwritten elements stays failed, which the
failure-injection tests demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence, Tuple

from repro.core.base import BaseLayout, WriteAllAlgorithm, default_tasks
from repro.core.tasks import TaskSet
from repro.pram.compiled import CompiledProgram
from repro.pram.cycles import Cycle, Write
from repro.util.bits import is_power_of_two


@dataclass(frozen=True)
class TrivialLayout(BaseLayout):
    pass


class TrivialAssignment(WriteAllAlgorithm):
    """One pass over a static partition of the array; no recovery."""

    name = "trivial"
    fault_tolerant = False
    terminates_under_restarts = False

    def build_layout(self, n: int, p: int) -> TrivialLayout:
        if not is_power_of_two(n):
            raise ValueError(f"trivial assignment needs power-of-two n, got {n}")
        return TrivialLayout(n=n, p=p, x_base=0, size=n)

    def program(
        self, layout: TrivialLayout, tasks: Optional[TaskSet] = None
    ) -> Callable[[int], Generator[Cycle, tuple, None]]:
        tasks = default_tasks(tasks)
        n = layout.n
        p = layout.p
        x_base = layout.x_base

        def factory(pid: int) -> Generator[Cycle, tuple, None]:
            def run() -> Generator[Cycle, tuple, None]:
                for element in range(pid, n, p):
                    for task_cycle in tasks.task_cycles(element, pid):
                        yield task_cycle
                    yield Cycle(
                        writes=(Write(x_base + element, 1),),
                        label="trivial:write",
                    )

            return run()

        return factory

    def compiled_program(
        self, layout: TrivialLayout, tasks: Optional[TaskSet] = None
    ) -> Optional[Callable[[int], "TrivialKernel"]]:
        tasks = default_tasks(tasks)
        if tasks.cycles_per_task != 0:
            return None  # task cycles need the generator path
        n = layout.n
        p = layout.p
        x_base = layout.x_base

        def factory(pid: int) -> TrivialKernel:
            return TrivialKernel(pid, n, p, x_base)

        return factory

    def vectorized_program(
        self, layout: TrivialLayout, tasks: Optional[TaskSet] = None
    ) -> Optional[object]:
        tasks = default_tasks(tasks)
        if tasks.cycles_per_task != 0:
            return None  # task cycles need the generator path
        from repro.core.vector_kernels import TrivialVector

        return TrivialVector(layout)


class TrivialKernel(CompiledProgram):
    """Compiled form of the trivial assignment's program.

    State is the current element index; the program halts after writing
    its last element (or immediately at spawn when ``pid >= n``, the
    compiled analogue of the generator's empty range).
    """

    __slots__ = ("pid", "n", "p", "x_base", "element")

    def __init__(self, pid: int, n: int, p: int, x_base: int) -> None:
        self.pid = pid
        self.n = n
        self.p = p
        self.x_base = x_base
        self.element = pid
        self.live = False

    def reset(self) -> bool:
        self.element = self.pid
        self.live = self.pid < self.n
        return self.live

    def current_cycle(self) -> Cycle:
        return Cycle(
            writes=(Write(self.x_base + self.element, 1),),
            label="trivial:write",
        )

    def advance(self, values: Tuple[int, ...]) -> bool:
        element = self.element + self.p
        self.element = element
        self.live = element < self.n
        return self.live

    def quiet_step(self, cells: Sequence[int], out: List[int]) -> int:
        element = self.element
        out.append(self.x_base + element)
        out.append(1)
        element += self.p
        self.element = element
        self.live = element < self.n
        return 0
