"""The harness that runs a Write-All algorithm on the simulated PRAM."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.base import BaseLayout, WriteAllAlgorithm
from repro.core.problem import WriteAllInstance, verify_solution
from repro.core.tasks import TaskSet
from repro.faults.static import apply_memory_faults
from repro.pram.compiled import resolve_kernel
from repro.pram.vectorized import resolve_vectorized
from repro.pram.ledger import RunLedger
from repro.pram.machine import Machine
from repro.pram.memory import MemoryReader, SharedMemory
from repro.pram.policies import WritePolicy


@dataclass
class WriteAllResult:
    """Outcome of one Write-All run."""

    algorithm: str
    n: int
    p: int
    ledger: RunLedger
    layout: BaseLayout
    memory: SharedMemory
    solved: bool

    @property
    def completed_work(self) -> int:
        """S — the paper's completed-work measure."""
        return self.ledger.completed_work

    @property
    def charged_work(self) -> int:
        """S' — completed plus interrupted cycles."""
        return self.ledger.charged_work

    @property
    def pattern_size(self) -> int:
        """|F| — failures plus restarts."""
        return self.ledger.pattern_size

    @property
    def overhead_ratio(self) -> float:
        """sigma = S / (N + |F|)."""
        return self.ledger.overhead_ratio(self.n)

    @property
    def parallel_time(self) -> int:
        return self.ledger.parallel_time

    def summary(self) -> str:
        return (
            f"{self.algorithm}(N={self.n}, P={self.p}): "
            f"{self.ledger.describe(self.n)}"
        )


def solve_write_all(
    algorithm: WriteAllAlgorithm,
    n: int,
    p: int,
    adversary: Optional[object] = None,
    tasks: Optional[TaskSet] = None,
    policy: Optional[WritePolicy] = None,
    max_ticks: Optional[int] = None,
    enforce_progress: bool = True,
    fairness_window: Optional[int] = None,
    raise_on_limit: bool = False,
    fast_path: bool = True,
    fast_forward: bool = True,
    phase_counters: Optional[object] = None,
    incremental_until: bool = True,
    compiled: bool = True,
    vectorized: "Union[bool, str]" = False,
) -> WriteAllResult:
    """Run ``algorithm`` on an (n, p) instance under ``adversary``.

    The algorithm's layout is placed in the machine context under
    ``"layout"`` so omniscient adversaries (halving, stalking) can locate
    the Write-All array and auxiliary structures.  The run ends when all
    of ``x`` is written, when every processor halts, or at ``max_ticks``
    (recorded in the ledger; ``raise_on_limit=True`` raises instead).

    ``fast_path=False`` selects the machine's reference tick
    implementation (the executable specification — slower, used by the
    differential suite and perf comparisons); ``fast_forward=False``
    keeps the fast path but disables event-horizon tick batching (the
    ``--no-fast-forward`` escape hatch); ``phase_counters`` is an
    optional per-phase timing accumulator for the perf harness.
    ``compiled=False`` disables the compiled-kernel lane and forces the
    generator protocol even for algorithms that ship a trusted
    :meth:`~repro.core.base.WriteAllAlgorithm.compiled_program`.
    ``vectorized=True`` opts in to the numpy batch lane
    (:mod:`repro.pram.vectorized`) for algorithms that ship a trusted
    ``vectorized_program``; it raises
    :class:`~repro.pram.vectorized.VectorizedUnavailable` when the
    optional numpy extra is missing.  ``vectorized="auto"`` (the
    ``--lane auto`` mode) instead lets the calibrated cost model in
    :mod:`repro.pram.dispatch` pick vec vs scalar per fused quiet
    window, and silently degrades to the scalar compiled lane when
    numpy is absent — results are bit-identical either way.
    """
    WriteAllInstance(n, p)  # validates the instance shape
    layout = algorithm.build_layout(n, p)
    memory = SharedMemory(layout.size)
    algorithm.initialize_memory(memory, layout)
    if adversary is not None and hasattr(adversary, "reset"):
        adversary.reset()
    # Static-memory-fault adversaries (CGP model) carry a plan of dead
    # cells; pin them before the first tick so every lane sees them.
    apply_memory_faults(memory, adversary, layout)
    machine = Machine(
        num_processors=p,
        memory=memory,
        policy=policy,
        adversary=adversary,
        allow_snapshot=algorithm.requires_snapshot,
        enforce_progress=enforce_progress,
        fairness_window=fairness_window,
        context={"layout": layout, "algorithm": algorithm.name},
        fast_path=fast_path,
        fast_forward=fast_forward,
        phase_counters=phase_counters,
    )
    machine.load_program(
        algorithm.program(layout, tasks),
        compiled_program=resolve_kernel(algorithm, layout, tasks, compiled),
        vectorized_program=resolve_vectorized(
            algorithm, layout, tasks, vectorized
        ),
        vector_dispatch="auto" if vectorized == "auto" else "always",
    )
    if max_ticks is None:
        max_ticks = default_tick_budget(n, p)
    ledger = machine.run(
        until=algorithm.until_predicate(layout, incremental=incremental_until),
        max_ticks=max_ticks,
        raise_on_limit=raise_on_limit,
    )
    solved = verify_solution(
        MemoryReader(memory), layout.x_base, n,
        skip=memory.faulty_addresses(),
    )
    return WriteAllResult(
        algorithm=algorithm.name,
        n=n,
        p=p,
        ledger=ledger,
        layout=layout,
        memory=memory,
        solved=solved,
    )


@dataclass(frozen=True)
class RunMeasures:
    """The paper's measures of one run, detached from the machine.

    :class:`WriteAllResult` drags the whole ledger and shared memory
    along, which is what interactive callers want but is needlessly
    heavy (and irrelevant) to ship between processes.  This is the
    picklable value that sweep workers return.
    """

    algorithm: str
    n: int
    p: int
    solved: bool
    completed_work: int
    charged_work: int
    pattern_size: int
    overhead_ratio: float
    parallel_time: int


def measure_write_all(
    algorithm_factory,
    n: int,
    p: int,
    adversary: Optional[object] = None,
    max_ticks: Optional[int] = None,
    fairness_window: Optional[int] = None,
    fast_forward: bool = True,
    compiled: bool = True,
    vectorized: "Union[bool, str]" = False,
) -> RunMeasures:
    """Picklable sweep entry point: run one instance, return measures.

    ``algorithm_factory`` is a zero-argument callable (the algorithm
    class, or a ``functools.partial`` of it) so that a fresh instance is
    built *inside* the worker process — algorithms hold incidental state
    and must never be shared across runs.
    """
    result = solve_write_all(
        algorithm_factory(), n, p,
        adversary=adversary,
        max_ticks=max_ticks,
        fairness_window=fairness_window,
        fast_forward=fast_forward,
        compiled=compiled,
        vectorized=vectorized,
    )
    return RunMeasures(
        algorithm=result.algorithm,
        n=n,
        p=p,
        solved=result.solved,
        completed_work=result.completed_work,
        charged_work=result.charged_work,
        pattern_size=result.pattern_size,
        overhead_ratio=result.overhead_ratio,
        parallel_time=result.parallel_time,
    )


def default_tick_budget(n: int, p: int) -> int:
    """A generous default tick limit.

    Worst-case runs (stalking adversaries) take far more ticks than
    failure-free ones; the default scales super-linearly in N so honest
    runs never trip it, while still bounding runaway configurations.
    Benchmarks that exercise adversarial worst cases pass an explicit
    budget.
    """
    return 20_000 + 64 * n * max(1, n // max(1, p))
