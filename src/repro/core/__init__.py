"""The paper's contribution: robust Write-All algorithms.

Algorithms available:

* :class:`TrivialAssignment` — the optimal failure-free baseline;
* :class:`AlgorithmW` — the four-phase fail-stop algorithm of [KS 89];
* :class:`AlgorithmV` — W modified for restarts (Section 4.1);
* :class:`AlgorithmX` — the local-traversal algorithm (Section 4.2);
* :class:`AlgorithmVX` — the interleaved combination (Theorem 4.9);
* :class:`SnapshotAlgorithm` — Theorem 3.2's unit-cost-snapshot matcher;
* :class:`AccAlgorithm` — the randomized ACC reconstruction (Section 5);
* :class:`FaultRouting` — fault-aware sweep for the CGP static
  memory-fault model (routes its certificate around dead cells).
"""

from repro.core.acc import AccAlgorithm, AccLayout
from repro.core.algorithm_v import AlgorithmV, VLayout
from repro.core.algorithm_vx import AlgorithmVX, VXLayout
from repro.core.algorithm_w import AlgorithmW, WLayout
from repro.core.algorithm_x import AlgorithmX, XLayout
from repro.core.base import BaseLayout, WriteAllAlgorithm, done_predicate
from repro.core.fault_routing import FaultRouting, FaultRoutingLayout
from repro.core.generational import GenerationalX, GenXLayout
from repro.core.problem import (
    WriteAllInstance,
    padded_size,
    unvisited_count,
    verify_solution,
)
from repro.core.runner import (
    RunMeasures,
    WriteAllResult,
    default_tick_budget,
    measure_write_all,
    solve_write_all,
)
from repro.core.snapshot import SnapshotAlgorithm, SnapshotLayout
from repro.core.tasks import CycleFactoryTasks, TaskSet, TrivialTasks
from repro.core.trees import HeapTree
from repro.core.trivial import TrivialAssignment, TrivialLayout

__all__ = [
    "AccAlgorithm",
    "AccLayout",
    "AlgorithmV",
    "AlgorithmVX",
    "AlgorithmW",
    "AlgorithmX",
    "BaseLayout",
    "CycleFactoryTasks",
    "FaultRouting",
    "FaultRoutingLayout",
    "GenXLayout",
    "GenerationalX",
    "HeapTree",
    "RunMeasures",
    "SnapshotAlgorithm",
    "SnapshotLayout",
    "TaskSet",
    "TrivialAssignment",
    "TrivialLayout",
    "TrivialTasks",
    "VLayout",
    "VXLayout",
    "WLayout",
    "WriteAllAlgorithm",
    "WriteAllInstance",
    "WriteAllResult",
    "XLayout",
    "default_tick_budget",
    "done_predicate",
    "measure_write_all",
    "padded_size",
    "solve_write_all",
    "unvisited_count",
    "verify_solution",
]
