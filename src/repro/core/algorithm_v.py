"""Algorithm V — the restart-capable modification of W (Section 4.1).

V drops W's processor-enumeration phase (which restarts render
"inefficient and possibly incorrect, since no accurate estimates of
active processors can be obtained") and instead allocates processors by
their *permanent PID* in a top-down divide-and-conquer descent of the
progress tree, realizing the Theorem 3.2 balanced assignment in
O(log N) time.  Completed work:

* without restarts (Lemma 4.2):  ``S = O(N + P log^2 N)``;
* with restarts (Theorem 4.3):   ``S = O(N + P log^2 N + M log N)``.

V may fail to terminate when the adversary never lets any processor
finish an iteration (which is why Theorem 4.9 interleaves it with X);
``terminates_under_restarts`` is False accordingly.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.core.base import WriteAllAlgorithm, default_tasks
from repro.core.iterative import IterativeLayout, phased_program
from repro.core.tasks import TaskSet
from repro.pram.cycles import Cycle
from repro.util.bits import ceil_log2, is_power_of_two, next_power_of_two


class VLayout(IterativeLayout):
    pass


def progress_geometry(n: int) -> tuple:
    """Split n elements into (leaves, chunk): ~N/log N leaves of ~log N.

    Both factors are powers of two so the heap arithmetic stays exact.
    """
    if not is_power_of_two(n):
        raise ValueError(f"need power-of-two n, got {n}")
    chunk = min(n, next_power_of_two(max(1, ceil_log2(max(2, n)))))
    leaves = n // chunk
    return leaves, chunk


class AlgorithmV(WriteAllAlgorithm):
    """Three synchronized phases per iteration; PID-driven allocation.

    ``chunk`` overrides the elements-per-leaf factor (default ~log N,
    the paper's choice).  It must be a power of two dividing N; the
    ablation benchmark sweeps it to show why log N balances the
    allocation overhead against leaf granularity.
    """

    name = "V"
    terminates_under_restarts = False

    def __init__(self, chunk: Optional[int] = None) -> None:
        self.chunk_override = chunk
        if chunk is not None:
            self.name = f"V[chunk={chunk}]"

    def build_layout(self, n: int, p: int) -> VLayout:
        leaves, chunk = progress_geometry(n)
        if self.chunk_override is not None:
            chunk = self.chunk_override
            if not is_power_of_two(chunk) or chunk > n or n % chunk:
                raise ValueError(
                    f"chunk must be a power of two dividing n, got {chunk}"
                )
            leaves = n // chunk
        x_base = 0
        d_base = n
        step_addr = d_base + (2 * leaves - 1)
        done_addr = step_addr + 1
        size = done_addr + 1
        return VLayout(
            n=n, p=p, x_base=x_base, size=size,
            d_base=d_base, leaves=leaves, chunk=chunk,
            step_addr=step_addr, done_addr=done_addr,
        )

    def program(
        self, layout: VLayout, tasks: Optional[TaskSet] = None
    ) -> Callable[[int], Generator[Cycle, tuple, None]]:
        tasks = default_tasks(tasks)

        def factory(pid: int) -> Generator[Cycle, tuple, None]:
            return phased_program(pid, layout, tasks)

        return factory
