"""ASCII rendering of algorithm state (progress trees, processor maps).

Debug/teaching aids: render algorithm X's progress heap with processor
positions, or V/W's counted progress tree, straight from a shared
memory snapshot.
"""

from __future__ import annotations

from typing import List

from repro.core.algorithm_x import XLayout
from repro.core.iterative import IterativeLayout
from repro.pram.memory import MemoryReader


def render_x_state(memory: MemoryReader, layout: XLayout) -> str:
    """Algorithm X's heap, one line per level, with processor positions.

    Done nodes render as ``#``, open nodes as ``.``; the leaf row is
    followed by the x array (0/1) and a processor map ``pid@node``.
    """
    tree = layout.tree
    lines: List[str] = []
    level_start = 1
    while level_start <= tree.leaves:
        level_nodes = range(level_start, level_start * 2)
        width = (2 * tree.leaves) // level_start
        cells = []
        for node in level_nodes:
            done = memory.read(tree.address(node))
            cells.append("#" if done else ".")
        lines.append("".join(cell.center(width) for cell in cells).rstrip())
        level_start *= 2
    x_row = "".join(
        str(memory.read(layout.x_base + index)) for index in range(layout.n)
    )
    lines.append("x: " + x_row)
    positions = []
    for pid in range(layout.p):
        where = memory.read(layout.w_base + pid)
        if where == 0:
            place = "start"
        elif where >= layout.exit_marker:
            place = "exit"
        else:
            place = f"n{where}"
        positions.append(f"{pid}@{place}")
    lines.append("w: " + " ".join(positions))
    return "\n".join(lines)


def render_progress_counts(
    memory: MemoryReader, layout: IterativeLayout
) -> str:
    """V/W's counted progress tree: each node shows done-leaves below."""
    tree = layout.progress_tree
    lines: List[str] = []
    level_start = 1
    while level_start <= tree.leaves:
        level_nodes = range(level_start, level_start * 2)
        width = max(4, (4 * tree.leaves) // level_start)
        cells = []
        for node in level_nodes:
            count = memory.read(tree.address(node))
            total = tree.leaves_under(node)
            cells.append(f"{count}/{total}")
        lines.append("".join(cell.center(width) for cell in cells).rstrip())
        level_start *= 2
    lines.append(
        "step="
        + str(memory.read(layout.step_addr))
        + " done="
        + str(memory.read(layout.done_addr))
    )
    return "\n".join(lines)
