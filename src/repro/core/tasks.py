"""Generalized Write-All task sets.

The Write-All problem proper assigns the trivial unit task "write 1 into
x[i]".  The simulation strategy of Section 4.3 replaces that assignment
with "the appropriate components of the PRAM steps" — each element of
the Write-All instance becomes an idempotent unit of real work.  The
algorithms in this package are written against the :class:`TaskSet`
interface so the *same* V/X/V+X code solves plain Write-All and executes
simulated PRAM steps.

Contract for task cycles:

* exactly ``cycles_per_task`` update cycles per element, each within the
  machine's read/write budget;
* *idempotent*: re-executing (after a failure) or executing concurrently
  (several processors at the same element, COMMON CRCW) must be safe —
  all executions read the same immutable inputs and write the same
  values;
* task cycles never touch the Write-All array ``x`` — the algorithm
  itself marks ``x[i] = 1`` after the task cycles complete, which is what
  makes re-execution after a mid-task failure possible.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.pram.cycles import Cycle


class TaskSet:
    """A set of N idempotent tasks, one per Write-All element."""

    #: Update cycles each task consumes (uniform across elements, so the
    #: synchronous algorithms V and W can keep fixed-length iterations).
    cycles_per_task: int = 0

    def task_cycles(self, element: int, pid: int) -> List[Cycle]:
        """The update cycles realizing task ``element``.

        Must return exactly ``cycles_per_task`` cycles.
        """
        return []


class TrivialTasks(TaskSet):
    """Plain Write-All: the x[i] := 1 assignment *is* the work."""

    cycles_per_task = 0


class CycleFactoryTasks(TaskSet):
    """A task set built from a cycle-factory callable.

    ``factory(element, pid)`` returns the task's cycles; the caller
    promises they are idempotent and exactly ``cycles_per_task`` long.
    Used by the simulation executor and by tests.
    """

    def __init__(
        self,
        cycles_per_task: int,
        factory: Callable[[int, int], Sequence[Cycle]],
    ) -> None:
        if cycles_per_task < 0:
            raise ValueError(
                f"cycles_per_task must be non-negative, got {cycles_per_task}"
            )
        self.cycles_per_task = cycles_per_task
        self._factory = factory

    def task_cycles(self, element: int, pid: int) -> List[Cycle]:
        cycles = list(self._factory(element, pid))
        if len(cycles) != self.cycles_per_task:
            raise ValueError(
                f"task {element}: factory produced {len(cycles)} cycles, "
                f"declared {self.cycles_per_task}"
            )
        return cycles
