"""A reconstruction of the randomized ACC algorithm ([MSP 90], Section 5).

The paper cites the "asynchronous coupon clipping" (ACC) randomized
Write-All algorithm of Martel, Subramonian and Park and observes that a
simple on-line *stalking* adversary ruins its expected performance,
while off-line adversaries leave it efficient.  The original source is
unavailable to us; this is a faithful-behavior reconstruction from the
paper's own description (see DESIGN.md, substitutions): processors
independently descend a binary progress tree over the array, choosing
*uniformly at random* between children whose subtrees are unfinished,
perform the work at the leaf they reach, propagate done-marks upwards —
and, having lost their position on a failure, restart from the root
with fresh randomness.

What matters for Section 5 is preserved: progress at any single leaf is
a random event the adversary can veto one tick at a time, so an on-line
stalker starves a chosen leaf for an expected super-polynomial time in
the restart game, while random/off-line failure patterns barely slow
the algorithm down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional, Tuple

from repro.core.base import BaseLayout, WriteAllAlgorithm, default_tasks
from repro.core.tasks import TaskSet
from repro.core.trees import HeapTree
from repro.pram.cycles import Cycle, Write
from repro.util.bits import is_power_of_two
from repro.util.rng import derive_seed, make_rng


@dataclass(frozen=True)
class AccLayout(BaseLayout):
    d_base: int = 0

    @property
    def tree(self) -> HeapTree:
        return HeapTree(base=self.d_base, leaves=self.n)


class AccAlgorithm(WriteAllAlgorithm):
    """Randomized tree descent with restart-from-root recovery."""

    name = "ACC"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._incarnations: Dict[int, int] = {}

    def build_layout(self, n: int, p: int) -> AccLayout:
        if not is_power_of_two(n):
            raise ValueError(f"ACC needs power-of-two n, got {n}")
        return AccLayout(n=n, p=p, x_base=0, size=n + 2 * n - 1, d_base=n)

    def program(
        self, layout: AccLayout, tasks: Optional[TaskSet] = None
    ) -> Callable[[int], Generator[Cycle, tuple, None]]:
        tasks = default_tasks(tasks)
        if tasks.cycles_per_task != 0:
            raise ValueError(
                "the ACC reconstruction solves plain Write-All only "
                "(it exists for the Section 5 adversary study)"
            )

        def factory(pid: int) -> Generator[Cycle, tuple, None]:
            incarnation = self._incarnations.get(pid, 0)
            self._incarnations[pid] = incarnation + 1
            seed = derive_seed(self.seed, pid, incarnation)
            return _acc_program(pid, layout, seed)

        return factory


def _acc_program(
    pid: int, layout: AccLayout, seed: int
) -> Generator[Cycle, tuple, None]:
    n = layout.n
    x_base = layout.x_base
    tree = layout.tree
    rng = make_rng(seed)

    node = tree.root  # private position: lost (reset to root) on restart
    while True:
        at_leaf = node >= n
        if at_leaf:
            reads: Tuple[int, ...] = (
                tree.address(node),
                x_base + (node - n),
            )
        else:
            reads = (
                tree.address(node),
                tree.address(2 * node),
                tree.address(2 * node + 1),
            )
        # Draw this cycle's coin before yielding so the write function
        # and the post-cycle move agree on it.
        coin = rng.getrandbits(1)

        def writes(
            values: Tuple[int, ...],
            node: int = node,
            at_leaf: bool = at_leaf,
        ) -> Tuple[Write, ...]:
            if values[0] != 0:
                return ()  # subtree done: move up, no write
            if at_leaf:
                if values[1] == 0:
                    return (Write(x_base + (node - n), 1),)
                return (Write(tree.address(node), 1),)
            left, right = values[1], values[2]
            if left != 0 and right != 0:
                return (Write(tree.address(node), 1),)
            return ()  # descending: position is private, no write

        values = yield Cycle(reads=reads, writes=writes, label="acc:step")

        if values[0] != 0:  # this subtree is done
            if node == tree.root:
                return
            node = tree.parent(node)
            continue
        if at_leaf:
            continue  # stay: next cycle marks done / was interrupted
        left, right = values[1], values[2]
        if left != 0 and right != 0:
            continue  # we just marked this node done; re-read and move up
        if left == 0 and right == 0:
            node = 2 * node + coin  # both open: clip a random coupon
        elif left == 0:
            node = 2 * node
        else:
            node = 2 * node + 1
