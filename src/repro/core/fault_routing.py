"""Fault-aware Write-All: route the certificate around dead cells.

Under the CGP static-memory-fault model (see
:mod:`repro.faults.static`) a dead shared cell drops writes and returns
the :data:`~repro.pram.memory.POISON` sentinel on reads.  Any algorithm
whose completion certificate *is* the Write-All array can then be
fooled twice over: a dead ``x`` cell can never be written (so honest
termination checks spin forever), yet its poison value is non-zero (so
visited-style checks declare victory over an unwritten cell).

:class:`FaultRouting` keeps its certificate out of harm's way: an
acknowledgement array ``ack`` in safe memory (CGP let control
structures live in the fault-free region — only the data array is
exposed) records, per element, that the element has been *handled*.
Handling element ``e`` means

1. probe ``ack[e]`` and ``x[e]`` in one cycle — if acked, skip; if
   ``x[e]`` already reads 1, another processor wrote it;
2. otherwise write ``x[e] = 1`` and read it back;
3. if the read-back is 1 the write stuck (live cell) — acknowledge; if
   not, the cell is dead — acknowledge anyway, *routing the certificate
   around* the dead cell instead of retrying a write that can never
   land.

The machine's termination predicate watches the ``ack`` region (via the
:meth:`~repro.core.base.WriteAllAlgorithm.until_predicate` hook), so a
run completes exactly when every element is handled; the harness oracle
(:func:`repro.core.problem.verify_solution` with the faulty set
skipped) then confirms every *live* cell holds 1.

Processors sweep the whole array from pid-rotated start positions (the
single-sweep half of [KS 89]'s contending-processors idea), so the
algorithm also tolerates arbitrary fail/restart patterns: the ack array
is the shared checkpoint a restarted processor recovers from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.core.base import (
    BaseLayout,
    WriteAllAlgorithm,
    default_tasks,
    done_predicate,
)
from repro.core.tasks import TaskSet
from repro.pram.cycles import Cycle, Write
from repro.pram.memory import MemoryReader


@dataclass(frozen=True)
class FaultRoutingLayout(BaseLayout):
    """``x`` at ``[x_base, n)``; the ack certificate right after it."""

    ack_base: int = 0


class FaultRouting(WriteAllAlgorithm):
    """Single-sweep Write-All with read-back dead-cell detection."""

    name = "froute"

    def build_layout(self, n: int, p: int) -> FaultRoutingLayout:
        return FaultRoutingLayout(
            n=n, p=p, x_base=0, size=2 * n, ack_base=n
        )

    def program(
        self, layout: FaultRoutingLayout, tasks: Optional[TaskSet] = None
    ) -> Callable[[int], Generator[Cycle, tuple, None]]:
        tasks = default_tasks(tasks)
        n = layout.n
        x_base = layout.x_base
        ack_base = layout.ack_base
        stride = max(1, n // layout.p)

        def factory(pid: int) -> Generator[Cycle, tuple, None]:
            start = (pid * stride) % n

            def run() -> Generator[Cycle, tuple, None]:
                while True:
                    all_acked = True
                    for offset in range(n):
                        element = start + offset
                        if element >= n:
                            element -= n
                        ack_addr = ack_base + element
                        x_addr = x_base + element
                        values = yield Cycle(
                            reads=(ack_addr, x_addr), label="froute:probe"
                        )
                        if values[0] != 0:
                            continue
                        all_acked = False
                        x_val = values[1]
                        if x_val == 0:
                            for task_cycle in tasks.task_cycles(element, pid):
                                yield task_cycle
                            yield Cycle(
                                writes=(Write(x_addr, 1),),
                                label="froute:write",
                            )
                            values = yield Cycle(
                                reads=(x_addr,), label="froute:verify"
                            )
                            x_val = values[0]
                        # x_val == 1: the write stuck (or a peer's did).
                        # Anything else is the poison of a dead cell —
                        # acknowledge anyway and route around it.
                        yield Cycle(
                            writes=(Write(ack_addr, 1),),
                            label="froute:ack" if x_val == 1
                            else "froute:route",
                        )
                    if all_acked:
                        return

            return run()

        return factory

    def is_done(self, memory: MemoryReader, layout: FaultRoutingLayout) -> bool:
        ack_base = layout.ack_base
        return all(
            memory.read(ack_base + index) != 0 for index in range(layout.n)
        )

    def until_predicate(
        self, layout: FaultRoutingLayout, incremental: bool = True
    ) -> Callable[[MemoryReader], bool]:
        return done_predicate(
            layout, incremental, region=(layout.ack_base, layout.n)
        )
