"""Algorithm X (Section 4.2 and the appendix of the paper).

X is the paper's new Write-All algorithm whose completed work is bounded
for *any* failure/restart pattern: ``S = O(N * P^{log(3/2)+delta})``
(Theorem 4.7), i.e. sub-quadratic, with a matching stalking-adversary
lower bound of ``Omega(N^{log 3})`` at ``P = N`` (Theorem 4.8).

Structure (Figure 5): a progress heap ``d[1 .. 2N-1]`` over the input
array ``x[1 .. N]``; each processor independently walks the tree, storing
its position in the shared array ``w[0 .. P-1]``:

* at a node marked done — move up;
* at an unvisited leaf — perform the work, then mark the leaf done;
* at an interior node — mark it done if both children are, descend into
  a single undone child, or, when *both* are undone, descend left/right
  according to the PID bit at the node's depth (MSB first).

Each loop body is one update cycle: at most 4 reads (``w[PID]``,
``d[where]``, and either the leaf's ``x`` cell or the two children), a
fixed compute, and exactly one write.  Two properties carry the
fault-tolerance story:

* the position array ``w`` lives in shared memory, so a restarted
  processor resumes exactly where it stopped ([SS 83] action/recovery,
  Remark 6) — no free teleports back to the initial leaf, which is what
  keeps the work bounded under restarts;
* *every* cycle writes (position value 0 means "not yet initialized" and
  triggers the initial leaf assignment; the sentinel ``2N`` means
  "exited").  There is no repeatable read-only cycle an adversary could
  let complete for free, so the model's progress condition ("at least
  one update cycle completes at any time") forces genuine progress —
  this is why X terminates under arbitrary failure/restart patterns
  (Lemma 4.4) while algorithm V, whose restarted processors poll
  read-only while waiting, can be starved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence, Tuple

from repro.core.base import BaseLayout, WriteAllAlgorithm, default_tasks
from repro.core.tasks import TaskSet
from repro.core.trees import HeapTree
from repro.pram.compiled import CompiledProgram
from repro.pram.cycles import Cycle, Write
from repro.util.bits import bit_length_of_power, is_power_of_two, msb_first_bit
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class XLayout(BaseLayout):
    """Shared-memory plan: ``x`` | ``d`` heap | ``w`` positions."""

    d_base: int = 0
    w_base: int = 0

    @property
    def tree(self) -> HeapTree:
        return HeapTree(base=self.d_base, leaves=self.n)

    @property
    def exit_marker(self) -> int:
        """The ``w`` value of a processor that has left the tree."""
        return 2 * self.n


#: Routing rules for the "both subtrees undone" case.  The paper's X
#: uses the PID bit at the node's depth; the alternatives exist for the
#: ablation study (benchmarks/bench_ablation_x_routing.py) showing why
#: the PID split matters.
ROUTING_RULES = ("pid", "left", "right", "random")


class AlgorithmX(WriteAllAlgorithm):
    """The appendix's algorithm X, generalized over task sets.

    ``routing`` selects the both-children-undone descent rule: "pid"
    (the paper's balanced PID-bit split), "left"/"right" (everyone
    piles into one subtree), or "random" (a stateless hash coin —
    balanced in expectation but uncoordinated, so processors following
    it do not partition the tree the way PID bits do).
    """

    name = "X"

    def __init__(self, routing: str = "pid", spread: bool = False) -> None:
        if routing not in ROUTING_RULES:
            raise ValueError(
                f"unknown routing {routing!r}; options: {ROUTING_RULES}"
            )
        self.routing = routing
        #: Remark 5(i): space the P processors N/P leaves apart instead
        #: of packing them into the first P leaves (Theorem 4.7's proof
        #: layout).  "Our worst case analysis does not benefit from
        #: these modifications" — but failure-free runs with P < N do.
        self.spread = spread
        if routing != "pid" or spread:
            tags = [routing] if routing != "pid" else []
            tags += ["spread"] if spread else []
            self.name = f"X[{','.join(tags)}]"

    def build_layout(self, n: int, p: int) -> XLayout:
        if not is_power_of_two(n):
            raise ValueError(f"algorithm X needs power-of-two n, got {n}")
        x_base = 0
        d_base = n
        w_base = d_base + (2 * n - 1)
        size = w_base + p
        return XLayout(
            n=n, p=p, x_base=x_base, size=size,
            d_base=d_base, w_base=w_base,
        )

    def program(
        self, layout: XLayout, tasks: Optional[TaskSet] = None
    ) -> Callable[[int], Generator[Cycle, tuple, None]]:
        tasks = default_tasks(tasks)

        routing = self.routing
        spread = self.spread

        def factory(pid: int) -> Generator[Cycle, tuple, None]:
            return _x_program(pid, layout, tasks, routing, spread)

        return factory

    def compiled_program(
        self, layout: XLayout, tasks: Optional[TaskSet] = None
    ) -> Optional[Callable[[int], "XKernel"]]:
        tasks = default_tasks(tasks)
        if tasks.cycles_per_task != 0:
            return None  # the task/mark sub-loop needs the generator path
        routing = self.routing
        spread = self.spread

        def factory(pid: int) -> XKernel:
            return XKernel(pid, layout, routing, spread)

        return factory

    def vectorized_program(
        self, layout: XLayout, tasks: Optional[TaskSet] = None
    ) -> Optional[object]:
        tasks = default_tasks(tasks)
        if tasks.cycles_per_task != 0:
            return None  # the task/mark sub-loop needs the generator path
        if self.routing == "random":
            # The stateless (pid, node) hash coin is evaluated per
            # descent; there is no array form of derive_seed.
            return None
        from repro.core.vector_kernels import XVector

        return XVector(layout, self.routing, self.spread)


def _x_initial_leaf(pid: int, layout: XLayout, spread: bool) -> int:
    """The node a position-0 processor takes as its first leaf."""
    n = layout.n
    if spread and layout.p < n:
        return n + (pid * (n // layout.p)) % n
    return n + (pid % n)


def _x_cycle_body(
    pid: int,
    layout: XLayout,
    routing: str,
    spread: bool,
    trivial: bool,
) -> Tuple[tuple, Callable[[Tuple[int, ...]], Tuple[Write, ...]]]:
    """Build the (reads, writes) body of X's single update cycle.

    Shared by the generator program and :class:`XKernel`'s materialized
    cycles, so both lanes are observationally identical by construction.
    """
    n = layout.n
    x_base = layout.x_base
    tree = layout.tree
    w_address = layout.w_base + pid
    exit_marker = layout.exit_marker
    log_n = bit_length_of_power(n)
    route_pid = pid % n
    initial_leaf = _x_initial_leaf(pid, layout, spread)

    def in_tree(where: int) -> bool:
        return 1 <= where < exit_marker

    def read_done(so_far: Tuple[int, ...]) -> Optional[int]:
        where = so_far[0]
        return tree.address(where) if in_tree(where) else None

    def read_third(so_far: Tuple[int, ...]) -> Optional[int]:
        where, done = so_far[0], so_far[1]
        if not in_tree(where) or done != 0:
            return None
        if where >= n:  # leaf: read its x element
            return x_base + (where - n)
        return tree.address(2 * where)  # interior: left child

    def read_fourth(so_far: Tuple[int, ...]) -> Optional[int]:
        where, done = so_far[0], so_far[1]
        if not in_tree(where) or done != 0 or where >= n:
            return None
        return tree.address(2 * where + 1)  # interior: right child

    body_reads = (w_address, read_done, read_third, read_fourth)

    def body_writes(values: Tuple[int, ...]) -> Tuple[Write, ...]:
        where, done, third, fourth = values
        if where == 0:
            # First-ever cycle: take the initial leaf assignment.
            return (Write(w_address, initial_leaf),)
        if where == exit_marker:
            # Final cycle before halting (idempotent rewrite, so even
            # this cycle is not a free read-only completion).
            return (Write(w_address, exit_marker),)
        if done != 0:
            parent = where // 2
            return (
                Write(w_address, parent if parent >= 1 else exit_marker),
            )  # move up one level / leave the tree
        if where >= n:  # at a leaf
            element = where - n
            if third == 0:  # leaf not yet visited
                if trivial:
                    return (Write(x_base + element, 1),)
                # Non-trivial task: the task cycles emitted below do the
                # work; rewrite the position so this cycle still writes.
                return (Write(w_address, where),)
            return (Write(tree.address(where), 1),)  # indicate "done"
        # interior node, not done
        left, right = third, fourth
        if left != 0 and right != 0:
            return (Write(tree.address(where), 1),)  # both children done
        if left == 0 and right != 0:
            return (Write(w_address, 2 * where),)  # go left
        if left != 0 and right == 0:
            return (Write(w_address, 2 * where + 1),)  # go right
        # both subtrees not done: move down according to the routing rule
        if routing == "pid":
            bit = msb_first_bit(route_pid, tree.depth(where), log_n)
        elif routing == "left":
            bit = 0
        elif routing == "right":
            bit = 1
        else:  # "random": a stateless coin keyed by (pid, node)
            bit = derive_seed(pid, where) & 1
        return (Write(w_address, 2 * where + bit),)

    return body_reads, body_writes


def _x_program(
    pid: int,
    layout: XLayout,
    tasks: TaskSet,
    routing: str = "pid",
    spread: bool = False,
) -> Generator[Cycle, tuple, None]:
    n = layout.n
    x_base = layout.x_base
    exit_marker = layout.exit_marker
    trivial = tasks.cycles_per_task == 0
    body_reads, body_writes = _x_cycle_body(pid, layout, routing, spread, trivial)

    while True:
        values = yield Cycle(reads=body_reads, writes=body_writes, label="x:step")
        where, done, third, _fourth = values
        if where == exit_marker:
            return  # exited the tree: the processor halts
        if where == 0:
            continue  # position just initialized
        if done == 0 and where >= n and third == 0 and not trivial:
            # Unvisited leaf with a non-trivial task: run its cycles,
            # then mark x (the marking cycle makes re-execution after a
            # mid-task failure safe — x stays 0 until the task finished).
            element = where - n
            for task_cycle in tasks.task_cycles(element, pid):
                yield task_cycle
            yield Cycle(
                writes=(Write(x_base + element, 1),),
                label="x:mark",
            )

class XKernel(CompiledProgram):
    """Compiled form of X's single-cycle loop (trivial task sets only).

    X keeps all of its recovery state in shared memory (the position
    array ``w``), so the kernel itself is stateless between cycles:
    ``reset()`` is trivial and a restarted stepper is indistinguishable
    from a fresh one — exactly the [SS 83] recovery property the
    algorithm is built on.  ``quiet_step`` re-implements the cycle body
    over raw cells with no ``Cycle``/``Write`` allocation; the
    materialized cycle for observed ticks reuses the *same* body
    closures as the generator program (:func:`_x_cycle_body`), so both
    lanes agree by construction.
    """

    __slots__ = (
        "pid", "layout", "routing", "spread", "n", "x_base", "d1",
        "w_address", "exit_marker", "log_n", "route_pid", "route_code",
        "initial_leaf", "_cycle",
    )

    _ROUTE_CODES = {"pid": 0, "left": 1, "right": 2, "random": 3}

    def __init__(
        self, pid: int, layout: XLayout, routing: str, spread: bool
    ) -> None:
        self.pid = pid
        self.layout = layout
        self.routing = routing
        self.spread = spread
        n = layout.n
        self.n = n
        self.x_base = layout.x_base
        # tree.address(node) == d_base + node - 1; fold the -1 once.
        self.d1 = layout.d_base - 1
        self.w_address = layout.w_base + pid
        self.exit_marker = layout.exit_marker
        self.log_n = bit_length_of_power(n)
        self.route_pid = pid % n
        self.route_code = self._ROUTE_CODES[routing]
        self.initial_leaf = _x_initial_leaf(pid, layout, spread)
        self._cycle: Optional[Cycle] = None
        self.live = False

    def reset(self) -> bool:
        # All recovery state lives in shared memory (w[pid]); the
        # stepper has none of its own.  X never halts at spawn.
        self.live = True
        return True

    def current_cycle(self) -> Cycle:
        cycle = self._cycle
        if cycle is None:
            body_reads, body_writes = _x_cycle_body(
                self.pid, self.layout, self.routing, self.spread, True
            )
            cycle = Cycle(reads=body_reads, writes=body_writes, label="x:step")
            self._cycle = cycle
        return cycle

    def advance(self, values: Tuple[int, ...]) -> bool:
        self.live = values[0] != self.exit_marker
        return self.live

    def quiet_step(self, cells: Sequence[int], out: List[int]) -> int:
        w_address = self.w_address
        where = cells[w_address]
        reads = 1
        exit_marker = self.exit_marker
        n = self.n
        d1 = self.d1
        done = 0
        third = 0
        fourth = 0
        in_tree = 1 <= where < exit_marker
        if in_tree:
            done = cells[d1 + where]
            reads += 1
            if done == 0:
                if where >= n:  # leaf: read its x element
                    third = cells[self.x_base + (where - n)]
                    reads += 1
                else:  # interior: read both children
                    third = cells[d1 + 2 * where]
                    fourth = cells[d1 + 2 * where + 1]
                    reads += 2
        # Mirror _x_cycle_body's body_writes branch for branch.
        if where == 0:
            out.append(w_address)
            out.append(self.initial_leaf)
        elif where == exit_marker:
            out.append(w_address)
            out.append(exit_marker)
            self.live = False
        elif done != 0:
            parent = where // 2
            out.append(w_address)
            out.append(parent if parent >= 1 else exit_marker)
        elif where >= n:  # at a leaf
            if third == 0:  # leaf not yet visited
                out.append(self.x_base + (where - n))
                out.append(1)
            else:
                out.append(d1 + where)  # indicate "done"
                out.append(1)
        elif third != 0 and fourth != 0:
            out.append(d1 + where)  # both children done
            out.append(1)
        elif third == 0 and fourth != 0:
            out.append(w_address)
            out.append(2 * where)  # go left
        elif third != 0:
            out.append(w_address)
            out.append(2 * where + 1)  # go right
        else:
            # both subtrees not done: the routing rule picks a child
            code = self.route_code
            if code == 0:  # the paper's MSB-first PID bit at this depth
                depth = where.bit_length() - 1
                bit = (self.route_pid >> (self.log_n - 1 - depth)) & 1
            elif code == 1:
                bit = 0
            elif code == 2:
                bit = 1
            else:
                bit = derive_seed(self.pid, where) & 1
            out.append(w_address)
            out.append(2 * where + bit)
        return reads
