"""Algorithm X (Section 4.2 and the appendix of the paper).

X is the paper's new Write-All algorithm whose completed work is bounded
for *any* failure/restart pattern: ``S = O(N * P^{log(3/2)+delta})``
(Theorem 4.7), i.e. sub-quadratic, with a matching stalking-adversary
lower bound of ``Omega(N^{log 3})`` at ``P = N`` (Theorem 4.8).

Structure (Figure 5): a progress heap ``d[1 .. 2N-1]`` over the input
array ``x[1 .. N]``; each processor independently walks the tree, storing
its position in the shared array ``w[0 .. P-1]``:

* at a node marked done — move up;
* at an unvisited leaf — perform the work, then mark the leaf done;
* at an interior node — mark it done if both children are, descend into
  a single undone child, or, when *both* are undone, descend left/right
  according to the PID bit at the node's depth (MSB first).

Each loop body is one update cycle: at most 4 reads (``w[PID]``,
``d[where]``, and either the leaf's ``x`` cell or the two children), a
fixed compute, and exactly one write.  Two properties carry the
fault-tolerance story:

* the position array ``w`` lives in shared memory, so a restarted
  processor resumes exactly where it stopped ([SS 83] action/recovery,
  Remark 6) — no free teleports back to the initial leaf, which is what
  keeps the work bounded under restarts;
* *every* cycle writes (position value 0 means "not yet initialized" and
  triggers the initial leaf assignment; the sentinel ``2N`` means
  "exited").  There is no repeatable read-only cycle an adversary could
  let complete for free, so the model's progress condition ("at least
  one update cycle completes at any time") forces genuine progress —
  this is why X terminates under arbitrary failure/restart patterns
  (Lemma 4.4) while algorithm V, whose restarted processors poll
  read-only while waiting, can be starved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional, Tuple

from repro.core.base import BaseLayout, WriteAllAlgorithm, default_tasks
from repro.core.tasks import TaskSet
from repro.core.trees import HeapTree
from repro.pram.cycles import Cycle, Write
from repro.util.bits import bit_length_of_power, is_power_of_two, msb_first_bit
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class XLayout(BaseLayout):
    """Shared-memory plan: ``x`` | ``d`` heap | ``w`` positions."""

    d_base: int = 0
    w_base: int = 0

    @property
    def tree(self) -> HeapTree:
        return HeapTree(base=self.d_base, leaves=self.n)

    @property
    def exit_marker(self) -> int:
        """The ``w`` value of a processor that has left the tree."""
        return 2 * self.n


#: Routing rules for the "both subtrees undone" case.  The paper's X
#: uses the PID bit at the node's depth; the alternatives exist for the
#: ablation study (benchmarks/bench_ablation_x_routing.py) showing why
#: the PID split matters.
ROUTING_RULES = ("pid", "left", "right", "random")


class AlgorithmX(WriteAllAlgorithm):
    """The appendix's algorithm X, generalized over task sets.

    ``routing`` selects the both-children-undone descent rule: "pid"
    (the paper's balanced PID-bit split), "left"/"right" (everyone
    piles into one subtree), or "random" (a stateless hash coin —
    balanced in expectation but uncoordinated, so processors following
    it do not partition the tree the way PID bits do).
    """

    name = "X"

    def __init__(self, routing: str = "pid", spread: bool = False) -> None:
        if routing not in ROUTING_RULES:
            raise ValueError(
                f"unknown routing {routing!r}; options: {ROUTING_RULES}"
            )
        self.routing = routing
        #: Remark 5(i): space the P processors N/P leaves apart instead
        #: of packing them into the first P leaves (Theorem 4.7's proof
        #: layout).  "Our worst case analysis does not benefit from
        #: these modifications" — but failure-free runs with P < N do.
        self.spread = spread
        if routing != "pid" or spread:
            tags = [routing] if routing != "pid" else []
            tags += ["spread"] if spread else []
            self.name = f"X[{','.join(tags)}]"

    def build_layout(self, n: int, p: int) -> XLayout:
        if not is_power_of_two(n):
            raise ValueError(f"algorithm X needs power-of-two n, got {n}")
        x_base = 0
        d_base = n
        w_base = d_base + (2 * n - 1)
        size = w_base + p
        return XLayout(
            n=n, p=p, x_base=x_base, size=size,
            d_base=d_base, w_base=w_base,
        )

    def program(
        self, layout: XLayout, tasks: Optional[TaskSet] = None
    ) -> Callable[[int], Generator[Cycle, tuple, None]]:
        tasks = default_tasks(tasks)

        routing = self.routing
        spread = self.spread

        def factory(pid: int) -> Generator[Cycle, tuple, None]:
            return _x_program(pid, layout, tasks, routing, spread)

        return factory


def _x_program(
    pid: int,
    layout: XLayout,
    tasks: TaskSet,
    routing: str = "pid",
    spread: bool = False,
) -> Generator[Cycle, tuple, None]:
    n = layout.n
    x_base = layout.x_base
    tree = layout.tree
    w_address = layout.w_base + pid
    exit_marker = layout.exit_marker
    log_n = bit_length_of_power(n)
    route_pid = pid % n
    trivial = tasks.cycles_per_task == 0
    if spread and layout.p < n:
        initial_leaf = n + (pid * (n // layout.p)) % n
    else:
        initial_leaf = n + (pid % n)

    def in_tree(where: int) -> bool:
        return 1 <= where < exit_marker

    def read_done(so_far: Tuple[int, ...]) -> Optional[int]:
        where = so_far[0]
        return tree.address(where) if in_tree(where) else None

    def read_third(so_far: Tuple[int, ...]) -> Optional[int]:
        where, done = so_far[0], so_far[1]
        if not in_tree(where) or done != 0:
            return None
        if where >= n:  # leaf: read its x element
            return x_base + (where - n)
        return tree.address(2 * where)  # interior: left child

    def read_fourth(so_far: Tuple[int, ...]) -> Optional[int]:
        where, done = so_far[0], so_far[1]
        if not in_tree(where) or done != 0 or where >= n:
            return None
        return tree.address(2 * where + 1)  # interior: right child

    body_reads = (w_address, read_done, read_third, read_fourth)

    def body_writes(values: Tuple[int, ...]) -> Tuple[Write, ...]:
        where, done, third, fourth = values
        if where == 0:
            # First-ever cycle: take the initial leaf assignment.
            return (Write(w_address, initial_leaf),)
        if where == exit_marker:
            # Final cycle before halting (idempotent rewrite, so even
            # this cycle is not a free read-only completion).
            return (Write(w_address, exit_marker),)
        if done != 0:
            parent = where // 2
            return (
                Write(w_address, parent if parent >= 1 else exit_marker),
            )  # move up one level / leave the tree
        if where >= n:  # at a leaf
            element = where - n
            if third == 0:  # leaf not yet visited
                if trivial:
                    return (Write(x_base + element, 1),)
                # Non-trivial task: the task cycles emitted below do the
                # work; rewrite the position so this cycle still writes.
                return (Write(w_address, where),)
            return (Write(tree.address(where), 1),)  # indicate "done"
        # interior node, not done
        left, right = third, fourth
        if left != 0 and right != 0:
            return (Write(tree.address(where), 1),)  # both children done
        if left == 0 and right != 0:
            return (Write(w_address, 2 * where),)  # go left
        if left != 0 and right == 0:
            return (Write(w_address, 2 * where + 1),)  # go right
        # both subtrees not done: move down according to the routing rule
        if routing == "pid":
            bit = msb_first_bit(route_pid, tree.depth(where), log_n)
        elif routing == "left":
            bit = 0
        elif routing == "right":
            bit = 1
        else:  # "random": a stateless coin keyed by (pid, node)
            bit = derive_seed(pid, where) & 1
        return (Write(w_address, 2 * where + bit),)

    while True:
        values = yield Cycle(reads=body_reads, writes=body_writes, label="x:step")
        where, done, third, _fourth = values
        if where == exit_marker:
            return  # exited the tree: the processor halts
        if where == 0:
            continue  # position just initialized
        if done == 0 and where >= n and third == 0 and not trivial:
            # Unvisited leaf with a non-trivial task: run its cycles,
            # then mark x (the marking cycle makes re-execution after a
            # mid-task failure safe — x stays 0 until the task finished).
            element = where - n
            for task_cycle in tasks.task_cycles(element, pid):
                yield task_cycle
            yield Cycle(
                writes=(Write(x_base + element, 1),),
                label="x:mark",
            )
