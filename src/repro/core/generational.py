"""Generational algorithm X: iterated Write-All without resets.

The executor in :mod:`repro.simulation.executor` starts each Write-All
phase with fresh scratch structures (a documented substitution).  The
paper's own pipeline ([Shv 89], cited in Section 4.3) instead reuses the
structures across phases by *tagging* them with a generation number —
this module implements that technique on top of algorithm X, so one
persistent machine executes an arbitrary sequence of task sets:

* the array cell ``x[i]`` holds the last generation in which task ``i``
  completed (monotone increasing);
* the progress-heap cell ``d[v]`` holds the last generation for which
  the subtree below ``v`` finished (monotone increasing: generation g's
  walk only writes where every relevant value has reached g, and by the
  time generation g is globally complete every tree cell equals g — so
  writers of different generations can never collide in one tick);
* the position ``w[pid]`` is tagged (``g * mult + node``) so a restarted
  processor resumes within its generation but re-enters fresh for a new
  one;
* a flag array ``done[0..G]`` gates the generations: a processor starts
  generation g when ``done[g-1]`` is set and finishes its walk by
  setting ``done[g]``.

Every cycle writes (gates rewrite the processor's own position cell),
preserving X's starvation immunity; crashes and restarts may now span
phase boundaries, which the tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence, Tuple

from repro.core.base import BaseLayout
from repro.core.tasks import TaskSet
from repro.core.trees import HeapTree
from repro.pram.cycles import Cycle, Write
from repro.pram.memory import MemoryReader, SharedMemory
from repro.util.bits import bit_length_of_power, is_power_of_two, msb_first_bit


@dataclass(frozen=True)
class GenXLayout(BaseLayout):
    """``x`` | ``d`` heap | tagged ``w`` | generation flags."""

    d_base: int = 0
    w_base: int = 0
    flags_base: int = 0
    generations: int = 1

    @property
    def tree(self) -> HeapTree:
        return HeapTree(base=self.d_base, leaves=self.n)

    @property
    def position_mult(self) -> int:
        """Tag multiplier for w cells: ``w = g * mult + node``.

        Positions range over 1..2N-1 plus the exit marker 2N, so the
        multiplier must exceed 2N.
        """
        return 2 * self.n + 1

    def flag_address(self, generation: int) -> int:
        if not 0 <= generation <= self.generations:
            raise ValueError(
                f"generation {generation} out of range "
                f"[0, {self.generations}]"
            )
        return self.flags_base + generation


class GenerationalX:
    """Executes a sequence of task sets as tagged Write-All generations."""

    name = "X*gen"
    requires_snapshot = False

    def __init__(self, phase_tasks: Sequence[TaskSet]) -> None:
        if not phase_tasks:
            raise ValueError("GenerationalX needs at least one phase")
        self.phase_tasks: List[TaskSet] = list(phase_tasks)

    @property
    def generations(self) -> int:
        return len(self.phase_tasks)

    def build_layout(self, n: int, p: int) -> GenXLayout:
        if not is_power_of_two(n):
            raise ValueError(f"generational X needs power-of-two n, got {n}")
        x_base = 0
        d_base = n
        w_base = d_base + (2 * n - 1)
        flags_base = w_base + p
        size = flags_base + self.generations + 1
        return GenXLayout(
            n=n, p=p, x_base=x_base, size=size,
            d_base=d_base, w_base=w_base, flags_base=flags_base,
            generations=self.generations,
        )

    def initialize_memory(self, memory: SharedMemory, layout: GenXLayout) -> None:
        memory.poke(layout.flag_address(0), 1)  # generation 0 is vacuous

    def program(
        self, layout: GenXLayout
    ) -> Callable[[int], Generator[Cycle, tuple, None]]:
        phase_tasks = self.phase_tasks

        def factory(pid: int) -> Generator[Cycle, tuple, None]:
            return _generational_program(pid, layout, phase_tasks)

        return factory

    def is_done(self, memory: MemoryReader, layout: GenXLayout) -> bool:
        return memory.read(layout.flag_address(self.generations)) == 1


def done_flags_predicate(layout: GenXLayout):
    """Machine ``until``: the final generation's flag is raised."""
    final = layout.flag_address(layout.generations)

    def all_generations_done(memory: MemoryReader) -> bool:
        return memory.read(final) == 1

    return all_generations_done


def _generational_program(
    pid: int, layout: GenXLayout, phase_tasks: Sequence[TaskSet]
) -> Generator[Cycle, tuple, None]:
    n = layout.n
    x_base = layout.x_base
    tree = layout.tree
    w_address = layout.w_base + pid
    mult = layout.position_mult
    log_n = bit_length_of_power(n)
    route_pid = pid % n
    total_generations = len(phase_tasks)

    def gate_cycle(flag_index: int) -> Cycle:
        """Probe one flag; rewrite our own position so the cycle writes
        (no free read-only completions — X's starvation immunity)."""
        return Cycle(
            reads=(layout.flag_address(flag_index), w_address),
            writes=lambda v: (Write(w_address, v[1]),),
            label="gx:gate",
        )

    generation = 1
    while generation <= total_generations:
        # --- locate the first unfinished generation ------------------- #
        # The flags are a monotone prefix (done[g] is only ever set
        # after done[g-1]), so a restarted processor finds its place by
        # galloping + binary search in O(log G) gate cycles instead of
        # the O(G) linear crawl (which made every restart pay the whole
        # program length on long pipelines).
        low = generation  # invariant: done[low - 1] is set
        stride = 1
        high = None
        while high is None:
            probe = min(low + stride - 1, total_generations)
            values = yield gate_cycle(probe)
            if values[0]:
                if probe == total_generations:
                    return  # everything already finished
                low = probe + 1
                stride *= 2
            else:
                high = probe  # first unset flag lies in [low, high]
        while low < high:
            mid = (low + high) // 2
            values = yield gate_cycle(mid)
            if values[0]:
                low = mid + 1
            else:
                high = mid
        generation = low
        # --- the tagged X walk for this generation -------------------- #
        yield from _generation_walk(
            pid, layout, phase_tasks[generation - 1], generation,
            n, x_base, tree, w_address, mult, log_n, route_pid,
        )
        # The walk returns once the root is done for this generation.
        yield Cycle(
            writes=(Write(layout.flag_address(generation), 1),),
            label="gx:flag",
        )
        generation += 1


def _generation_walk(
    pid: int,
    layout: GenXLayout,
    tasks: TaskSet,
    generation: int,
    n: int,
    x_base: int,
    tree: HeapTree,
    w_address: int,
    mult: int,
    log_n: int,
    route_pid: int,
) -> Generator[Cycle, tuple, None]:
    trivial = tasks.cycles_per_task == 0
    initial_leaf = n + (pid % n)
    exit_position = 2 * n  # in-tag marker: finished this generation

    def decode(raw: int) -> int:
        """Position within this generation (0 = not yet entered)."""
        if raw // mult == generation:
            return raw % mult
        return 0

    def encode(node: int) -> int:
        return generation * mult + node

    def read_done(so_far: Tuple[int, ...]) -> Optional[int]:
        where = decode(so_far[0])
        return tree.address(where) if 1 <= where <= 2 * n - 1 else None

    def read_third(so_far: Tuple[int, ...]) -> Optional[int]:
        where = decode(so_far[0])
        if not 1 <= where <= 2 * n - 1 or so_far[1] >= generation:
            return None
        if where >= n:
            return x_base + (where - n)
        return tree.address(2 * where)

    def read_fourth(so_far: Tuple[int, ...]) -> Optional[int]:
        where = decode(so_far[0])
        if not 1 <= where <= 2 * n - 1 or so_far[1] >= generation or where >= n:
            return None
        return tree.address(2 * where + 1)

    body_reads = (w_address, read_done, read_third, read_fourth)

    def body_writes(values: Tuple[int, ...]) -> Tuple[Write, ...]:
        where = decode(values[0])
        done, third, fourth = values[1], values[2], values[3]
        if where == 0:
            return (Write(w_address, encode(initial_leaf)),)
        if where == exit_position:
            return (Write(w_address, encode(exit_position)),)
        if done >= generation:
            parent = where // 2
            return (
                Write(
                    w_address,
                    encode(parent if parent >= 1 else exit_position),
                ),
            )
        if where >= n:  # leaf
            element = where - n
            if third < generation:
                if trivial:
                    return (Write(x_base + element, generation),)
                return (Write(w_address, encode(where)),)
            return (Write(tree.address(where), generation),)
        left, right = third, fourth
        if left >= generation and right >= generation:
            return (Write(tree.address(where), generation),)
        if left < generation and right >= generation:
            return (Write(w_address, encode(2 * where)),)
        if left >= generation and right < generation:
            return (Write(w_address, encode(2 * where + 1)),)
        bit = msb_first_bit(route_pid, tree.depth(where), log_n)
        return (Write(w_address, encode(2 * where + bit)),)

    while True:
        values = yield Cycle(reads=body_reads, writes=body_writes,
                             label="gx:step")
        where = decode(values[0])
        done, third = values[1], values[2]
        if where == exit_position:
            return
        if where == 0:
            continue
        if (
            done < generation
            and where >= n
            and third < generation
            and not trivial
        ):
            element = where - n
            for task_cycle in tasks.task_cycles(element, pid):
                yield task_cycle
            yield Cycle(
                writes=(Write(x_base + element, generation),),
                label="gx:mark",
            )
