"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``solve``     — run one Write-All instance and print the accounting;
* ``sweep``     — sweep N (and seeds), print the aggregate table and the
  fitted growth exponent, optionally export CSV; ``--workers`` fans the
  grid out over processes with caching/resume (``--cache-dir``,
  ``--resume``) and per-point ``--timeout``/``--retries``;
* ``bench``     — run registered benchmark scenarios through the
  parallel engine and write a machine-readable ``BENCH_<tag>.json``;
* ``chaos``     — soak the engine itself under deterministic fault
  injection (worker crashes, stalls, transient errors, cache
  corruption) and assert the sweep still converges to results
  bit-identical to a fault-free serial run;
* ``fuzz``      — property-based soak of the Theorem 4.1 simulator:
  seeded random PRAM programs run through all four machine lanes under
  randomly drawn adversaries (plus inline chaos injection), checked
  bit-identical against the ideal fault-free oracle over three passes;
  failures are delta-debugged to minimal replayable JSON fixtures;
* ``serve``     — run the distributed sweep scheduler: a daemon holding
  the work queue and the shared content-addressed result store,
  leasing points to connected workers and re-queueing leases whose
  worker dies or stalls (the paper's fail-stop/restart model applied
  to the fleet itself);
* ``worker``    — one restartable fail-stop worker: connects to a serve
  daemon, executes leased points in a sandboxed subprocess, and is
  restarted by its supervisor when it dies;
* ``perf``      — micro-benchmark the simulator core: fast path (with
  and without event-horizon batching) vs the reference baseline under
  selectable fault scenarios (``--adversary``), min-of-k timing,
  per-phase breakdown, optional cProfile capture and
  ``BENCH_<tag>.json`` export;
* ``simulate``  — robustly execute a library PRAM program and verify it;
* ``trace``     — run a small instance and print the per-processor
  failure/restart timeline;
* ``showdown``  — the algorithms × adversaries matrix.

Adversaries are selected by name; stochastic ones take ``--fail``,
``--restart-prob`` and ``--seed``.  ``--no-fast-forward`` disables the
machine's event-horizon tick batching, ``--no-compiled`` disables the
compiled-kernel lane, and ``--vectorized`` opts in to the numpy batch
lane (``solve``, ``sweep``, ``trace``, ``perf``; needs the optional
numpy extra — ``pip install .[numpy]``).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.core import (
    AccAlgorithm,
    AlgorithmV,
    AlgorithmVX,
    AlgorithmW,
    AlgorithmX,
    FaultRouting,
    SnapshotAlgorithm,
    TrivialAssignment,
    solve_write_all,
)
from repro.experiments import SweepSpec, run_sweep, run_sweep_parallel
from repro.experiments.factories import (
    NamedAdversary,
    build_named_adversary,
)
from repro.faults import (
    HalvingAdversary,
    NoFailures,
    NoRestartAdversary,
    RandomAdversary,
    ThrashingAdversary,
)
from repro.faults import registry as adversary_registry
from repro.metrics.tables import render_table
from repro.pram.trace import Tracer, render_timeline
from repro.simulation import RobustSimulator
from repro.simulation.programs import (
    list_ranking_program,
    matvec_program,
    max_find_program,
    odd_even_sort_program,
    prefix_sum_program,
)

ALGORITHMS = {
    "trivial": TrivialAssignment,
    "W": AlgorithmW,
    "V": AlgorithmV,
    "X": AlgorithmX,
    "VX": AlgorithmVX,
    "snapshot": SnapshotAlgorithm,
    "ACC": AccAlgorithm,
    # The fault-aware Write-All variant: verifies writes by read-back
    # and certifies through an ack region, so it terminates under
    # static-mem adversaries that poison cells.
    "froute": FaultRouting,
}

#: ``--adversary`` choices — derived from the unified registry
#: (:mod:`repro.faults.registry`), the single enumeration point.
#: Already sorted.
ADVERSARIES = adversary_registry.names()

PROGRAMS = {
    "prefix-sum": prefix_sum_program,
    "max-find": max_find_program,
    "list-ranking": list_ranking_program,
    "odd-even-sort": odd_even_sort_program,
    "matvec": matvec_program,
}


def build_adversary(name: str, fail: float, restart_prob: float, seed: int):
    try:
        return build_named_adversary(name, fail, restart_prob, seed)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _adversary_help() -> str:
    """The ``--adversary`` help line, with each name's model tags."""
    entries = ", ".join(
        f"{name} [{'/'.join(adversary_registry.tags_for(name))}]"
        for name in ADVERSARIES
    )
    return f"named adversary (model tags in brackets): {entries}"


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--algorithm", default="X", choices=sorted(ALGORITHMS))
    parser.add_argument("--adversary", default="random",
                        choices=ADVERSARIES, metavar="NAME",
                        help=_adversary_help())
    parser.add_argument("--fail", type=float, default=0.1,
                        help="per-tick failure probability (stochastic)")
    parser.add_argument("--restart-prob", type=float, default=0.3,
                        help="per-tick restart probability (stochastic)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-ticks", type=int, default=None)
    parser.add_argument("--no-fast-forward", action="store_true",
                        help="disable event-horizon tick batching (run "
                             "every tick through the per-tick loop)")
    parser.add_argument("--no-compiled", action="store_true",
                        help="disable compiled program kernels (force "
                             "the generator protocol)")
    _add_vectorized(parser)


def _add_vectorized(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--vectorized", dest="vectorized",
                        action="store_true",
                        help="opt in to the numpy batch lane: advance "
                             "all P processors per tick as array ops "
                             "(needs the optional numpy extra)")
    parser.add_argument("--no-vectorized", dest="vectorized",
                        action="store_false",
                        help="stay on the scalar lanes (the default)")
    parser.add_argument("--lane", dest="lane", default=None,
                        choices=("auto", "vec", "scalar"),
                        help="lane selection: 'auto' dispatches vec vs "
                             "scalar per quiet window via the calibrated "
                             "cost model (silently scalar without numpy), "
                             "'vec'/'scalar' force one lane; overrides "
                             "--vectorized/--no-vectorized")
    parser.set_defaults(vectorized=False)


def _vectorized_from_args(args: argparse.Namespace):
    """The tri-state ``vectorized`` switch from --lane / --vectorized."""
    lane = getattr(args, "lane", None)
    if lane == "auto":
        return "auto"
    if lane == "vec":
        return True
    if lane == "scalar":
        return False
    return args.vectorized


def _add_engine(parser: argparse.ArgumentParser) -> None:
    """Parallel-engine flags shared by ``sweep`` and ``bench``."""
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: in-process)")
    parser.add_argument("--backend", default=None,
                        help="executor backend: 'serial', 'pool', or "
                             "'remote:host:port' (a `repro serve` "
                             "daemon; results are bit-identical across "
                             "backends). Default: chosen by --workers")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory "
                             "(default: .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--resume", action="store_true",
                        help="resume from cached points (sweep: also "
                             "switches to the engine)")
    parser.add_argument("--no-resume", action="store_true",
                        help="recompute every point, overwriting cache "
                             "entries")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-point wall-clock timeout in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts per timed-out/crashed point")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        help="enable deterministic fault injection with "
                             "this seed (soak-testing only; default: off)")
    parser.add_argument("--chaos-crash", type=float, default=0.05,
                        help="injected worker-crash probability per "
                             "attempt (with --chaos-seed)")
    parser.add_argument("--chaos-stall", type=float, default=0.05,
                        help="injected stall probability per attempt "
                             "(with --chaos-seed)")
    parser.add_argument("--chaos-error", type=float, default=0.05,
                        help="injected transient-error probability per "
                             "attempt (with --chaos-seed)")
    parser.add_argument("--chaos-corrupt", type=float, default=0.05,
                        help="cache-entry corruption probability per "
                             "point (with --chaos-seed)")


def _chaos_from_args(args: argparse.Namespace):
    """The opt-in ChaosPolicy for engine commands, or None (default)."""
    if getattr(args, "chaos_seed", None) is None:
        return None
    from repro.experiments.chaos import ChaosPolicy

    return ChaosPolicy(
        seed=args.chaos_seed,
        crash=args.chaos_crash,
        stall=args.chaos_stall,
        error=args.chaos_error,
        corrupt=args.chaos_corrupt,
        stall_s=(max(4.0 * args.timeout, 2.0)
                 if args.timeout is not None else 5.0),
    )


def cmd_solve(args: argparse.Namespace) -> int:
    adversary = build_adversary(args.adversary, args.fail,
                                args.restart_prob, args.seed)
    result = solve_write_all(
        ALGORITHMS[args.algorithm](), args.n, args.p, adversary=adversary,
        max_ticks=args.max_ticks,
        fast_forward=not args.no_fast_forward,
        compiled=not args.no_compiled,
        vectorized=_vectorized_from_args(args),
    )
    print(result.summary())
    return 0 if result.solved else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    sizes = [int(token) for token in args.sizes.split(",")]
    spec = SweepSpec(
        name=f"{args.algorithm}/{args.adversary}",
        algorithm=ALGORITHMS[args.algorithm],
        sizes=sizes,
        processors=(lambda n: n) if args.p is None else args.p,
        adversary=NamedAdversary(args.adversary, args.fail,
                                 args.restart_prob),
        seeds=range(args.seeds),
        max_ticks=args.max_ticks,
        fast_forward=not args.no_fast_forward,
        compiled=not args.no_compiled,
        vectorized=_vectorized_from_args(args),
    )
    chaos = _chaos_from_args(args)
    use_engine = (
        args.workers is not None or args.resume
        or args.timeout is not None or args.cache_dir is not None
        or chaos is not None or args.backend is not None
    )
    if use_engine:
        result = run_sweep_parallel(
            spec,
            workers=args.workers,
            backend=args.backend,
            cache_dir=(
                None if args.no_cache
                else (args.cache_dir or ".repro-cache")
            ),
            resume=not args.no_resume,
            timeout=args.timeout,
            retries=args.retries,
            chaos=chaos,
            progress=lambda line: print(f"[sweep] {line}"),
        )
    else:
        result = run_sweep(spec)
    print(result.table())
    if len(sizes) >= 2 and result.points:
        print(f"\nfitted work exponent (worst case): "
              f"{result.fitted_exponent():.3f}")
    if use_engine:
        stats = result.stats
        print(
            f"\nengine: {stats.total} points, {stats.executed} executed, "
            f"{stats.cache_hits} cache hits "
            f"({100.0 * stats.hit_rate:.1f}% hit rate), "
            f"{stats.failed} failed, {stats.retries} retries, "
            f"{stats.wall_s:.2f}s wall"
        )
        if (stats.crashes or stats.pool_restarts or stats.cache_corrupt
                or stats.requeues):
            degraded = ", degraded to serial" if stats.degraded_serial else ""
            print(
                f"recovery: {stats.crashes} crash attempts, "
                f"{stats.pool_restarts} pool restarts{degraded}, "
                f"{stats.requeues} lease re-queues, "
                f"{stats.cache_corrupt} corrupt cache entries discarded"
            )
        if stats.injected:
            print(f"chaos injected: {stats.injected}")
        for failure in result.failures:
            print(
                f"  FAILED (N={failure.n}, P={failure.p}, "
                f"seed={failure.seed}): {failure.kind} "
                f"after {failure.attempts} attempts"
            )
    if args.csv:
        result.export_csv(args.csv)
        print(f"wrote {args.csv}")
    solved = result.all_solved() and not getattr(result, "failures", [])
    return 0 if solved else 1


def _scenario_matches_model(scenario, model_tag: Optional[str]) -> bool:
    """Does a bench scenario exercise the given model tag?

    Scenarios name their adversaries via ``BenchScenario.adversaries``;
    legacy scenarios that predate the annotation all run KS91
    adversaries, so they match only ``fail-stop-restart``.
    """
    if model_tag is None:
        return True
    names = getattr(scenario, "adversaries", ())
    if not names:
        return model_tag == "fail-stop-restart"
    return any(
        model_tag in adversary_registry.tags_for(name) for name in names
    )


def cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.experiments.bench import (
        EXCLUDED,
        SCENARIOS,
        default_scenario_tags,
        run_benchmarks,
        scenario_tags,
    )
    from repro.metrics.report import dump_report

    if args.list:
        for tag in scenario_tags():
            scenario = SCENARIOS[tag]
            if not _scenario_matches_model(scenario, args.model_tag):
                continue
            heavy = "  [heavy]" if scenario.heavy else ""
            adversaries = getattr(scenario, "adversaries", ())
            named = f"  @{','.join(adversaries)}" if adversaries else ""
            print(f"{tag:30s} {scenario.title}{heavy}{named}")
        print("\nbespoke (not engine-runnable):")
        for source, reason in sorted(EXCLUDED.items()):
            print(f"  {source}: {reason}")
        names = (adversary_registry.names_for_tag(args.model_tag)
                 if args.model_tag else adversary_registry.names())
        print(
            f"\nadversary registry ({len(names)} names, "
            f"{len(adversary_registry.MODEL_TAGS)} model tags):"
        )
        for name in names:
            entry = adversary_registry.get(name)
            fuzz = "  [fuzzable]" if entry.fuzzable else ""
            print(f"  {name:14s} [{', '.join(entry.tags)}]  "
                  f"{entry.summary}{fuzz}")
        return 0

    if args.scenarios is None:
        tags = default_scenario_tags()
    elif args.scenarios == "all":
        tags = scenario_tags()
    else:
        tags = [token.strip() for token in args.scenarios.split(",")
                if token.strip()]
    unknown = [tag for tag in tags if tag not in SCENARIOS]
    if unknown:
        raise SystemExit(
            f"unknown scenario(s): {', '.join(unknown)} "
            f"(see `repro bench --list`)"
        )
    if args.model_tag:
        tags = [tag for tag in tags
                if _scenario_matches_model(SCENARIOS[tag], args.model_tag)]
        if not tags:
            raise SystemExit(
                f"no selected scenario carries model tag "
                f"{args.model_tag!r} (see `repro bench --list "
                f"--model-tag {args.model_tag}`)"
            )
    report, by_scenario = run_benchmarks(
        tags,
        tag=args.tag,
        workers=args.workers,
        backend=args.backend,
        cache_dir=None if args.no_cache else (args.cache_dir
                                              or ".repro-cache"),
        resume=not args.no_resume,
        timeout=args.timeout,
        retries=args.retries,
        chaos=_chaos_from_args(args),
        progress=lambda line: print(f"[bench] {line}"),
    )
    for tag in tags:
        for result in by_scenario[tag]:
            print(result.table())
            print()
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, f"BENCH_{args.tag}.json")
    dump_report(report, path)
    totals = report["totals"]
    print(
        f"wrote {path}: {len(tags)} scenarios, {totals['points']} points, "
        f"{totals['executed']} executed, {totals['cache_hits']} cached, "
        f"{totals['failed']} failed, {totals['wall_s']:.2f}s"
    )
    return 0 if totals["failed"] == 0 else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import run_soak_series

    ok, outcomes = run_soak_series(
        iterations=args.iterations,
        chaos_seed=args.chaos_seed,
        workers=args.workers,
        seeds=tuple(range(args.seeds)),
        timeout=args.timeout,
        retries=args.retries,
        crash=args.chaos_crash,
        stall=args.chaos_stall,
        error=args.chaos_error,
        corrupt=args.chaos_corrupt,
        worker_kill=args.worker_kill,
        backend=args.backend,
        log=lambda line: print(f"[chaos] {line}"),
    )
    converged = sum(1 for outcome in outcomes if outcome.converged)
    print(f"[chaos] {converged}/{len(outcomes)} iteration(s) converged")
    return 0 if ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.experiments.serve import SweepServer, fetch_status
    from repro.experiments.wire import TOKEN_ENV, WireError

    if args.status is not None:
        try:
            status = fetch_status(args.status)
        except WireError as exc:
            raise SystemExit(
                f"[serve] {args.status}: {exc} "
                f"(set {TOKEN_ENV} if the daemon requires auth)"
            )
        eta = status.get("eta_s")
        mean = status.get("mean_point_s")
        print(f"[serve] {args.status}: "
              f"{status.get('workers', 0)} worker(s) "
              f"{status.get('worker_names', [])}, "
              f"{status.get('pending', 0)} pending, "
              f"{status.get('leased', 0)} leased, "
              f"{status.get('completed', 0)} completed "
              f"({status.get('cache_hits', 0)} cache hits, "
              f"{status.get('requeues', 0)} re-queues, "
              f"{status.get('quarantined', 0)} quarantined)")
        print(f"[serve] mean point "
              f"{'n/a' if mean is None else f'{mean:.3f}s'}, "
              f"eta {'n/a' if eta is None else f'~{eta:.0f}s'}; "
              f"store: {status.get('cache_dir')}")
        return 0
    server = SweepServer(
        host=args.host, port=args.port,
        cache_dir=None if args.no_cache else (args.cache_dir
                                              or ".repro-cache"),
        lease_ttl=args.lease_ttl,
        max_lease_tries=args.max_lease_tries,
    )
    server.start()
    print(f"[serve] listening on {server.address}", flush=True)
    print(f"[serve] shared store: "
          f"{'disabled' if server.cache is None else server.cache.root}",
          flush=True)
    server.serve_forever()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.experiments.worker import run_worker

    code = run_worker(
        args.connect,
        name=args.name,
        max_restarts=args.max_restarts,
        log=lambda line: print(f"[worker] {line}", flush=True),
    )
    return 0 if code == 0 else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    import time as time_module

    from repro.fuzz import run_fuzz
    from repro.fuzz.driver import LANES
    from repro.fuzz.generator import GeneratorConfig

    if args.lanes is None:
        lanes = tuple(LANES)
    else:
        lanes = tuple(
            token.strip() for token in args.lanes.split(",") if token.strip()
        )
        unknown = [lane for lane in lanes if lane not in LANES]
        if unknown:
            raise SystemExit(
                f"unknown lane(s): {', '.join(unknown)} "
                f"(known: {', '.join(LANES)})"
            )
    config = GeneratorConfig(
        max_width=args.max_width,
        max_steps=args.max_steps,
    )
    started = time_module.perf_counter()
    outcome = run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        passes=args.passes,
        lanes=lanes,
        config=config,
        chaos=not args.no_chaos,
        fixture_dir=args.fixture_dir,
        max_fixtures=args.max_fixtures,
        backend=args.backend,
        log=lambda line: print(f"[fuzz] {line}"),
    )
    wall_s = time_module.perf_counter() - started
    print(f"[fuzz] {outcome.summary()}")
    print(
        f"[fuzz] adversary draws: "
        + ", ".join(
            f"{name}={count}"
            for name, count in sorted(outcome.adversary_histogram.items())
        )
        + f"; {wall_s:.2f}s wall"
    )
    return 0 if outcome.converged else 1


def _parse_size(token: str) -> tuple:
    try:
        n_text, p_text = token.lower().split("x", 1)
        n, p = int(n_text), int(p_text)
    except ValueError:
        raise SystemExit(
            f"bad --size {token!r}: expected NxP, e.g. 4096x64"
        ) from None
    if n < 1 or p < 1:
        raise SystemExit(f"bad --size {token!r}: N and P must be positive")
    return n, p


def cmd_perf(args: argparse.Namespace) -> int:
    import os
    import time as time_module

    from repro.metrics.report import dump_report
    from repro.perf.micro import (
        DEFAULT_ADVERSARY,
        DEFAULT_ALGORITHM,
        DEFAULT_SIZE,
        describe_comparison,
        perf_report,
        run_perf,
    )
    from repro.perf.profile_hook import maybe_profile

    algorithms = args.algorithm or [DEFAULT_ALGORITHM]
    sizes = [_parse_size(token) for token in (args.size or [])]
    if not sizes:
        sizes = [DEFAULT_SIZE]
    adversaries = args.adversary or [DEFAULT_ADVERSARY]
    configurations = [
        (algorithm, n, p) for algorithm in algorithms for n, p in sizes
    ]
    started = time_module.perf_counter()
    with maybe_profile(args.profile):
        comparisons = run_perf(
            configurations,
            repeats=args.repeats,
            warmup=args.warmup,
            include_baseline=not args.no_baseline,
            adversaries=adversaries,
            fast_forward=not args.no_fast_forward,
            compiled=not args.no_compiled,
            vectorized=_vectorized_from_args(args),
        )
    wall_s = time_module.perf_counter() - started
    for comparison in comparisons:
        print(describe_comparison(comparison))
    speedups = [c.speedup for c in comparisons if c.speedup is not None]
    if speedups:
        worst = min(speedups)
        print(
            f"\n{len(speedups)} configuration(s); worst speedup "
            f"{worst:.2f}x, best "
            f"{max(speedups):.2f}x (fast path vs reference baseline)"
        )
    ff_speedups = [
        c.ff_speedup for c in comparisons if c.ff_speedup is not None
    ]
    if ff_speedups:
        print(
            f"fast-forward batching alone: worst {min(ff_speedups):.2f}x, "
            f"best {max(ff_speedups):.2f}x (vs per-tick fast path)"
        )
    kernel_speedups = [
        c.kernel_speedup for c in comparisons
        if c.kernel_speedup is not None
    ]
    if kernel_speedups:
        print(
            f"compiled kernels alone: worst {min(kernel_speedups):.2f}x, "
            f"best {max(kernel_speedups):.2f}x (vs generator dispatch)"
        )
    vec_speedups = [
        c.vec_speedup for c in comparisons
        if getattr(c, "vec_speedup", None) is not None
    ]
    if vec_speedups:
        print(
            f"vectorized lane alone: worst {min(vec_speedups):.2f}x, "
            f"best {max(vec_speedups):.2f}x (vs scalar compiled lane)"
        )
    auto_speedups = [
        c.auto_speedup for c in comparisons
        if getattr(c, "auto_speedup", None) is not None
    ]
    if auto_speedups:
        print(
            f"adaptive dispatch: worst {min(auto_speedups):.2f}x, "
            f"best {max(auto_speedups):.2f}x (vs scalar compiled lane)"
        )
    if args.tag is not None:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"BENCH_{args.tag}.json")
        dump_report(perf_report(comparisons, args.tag, wall_s), path)
        print(f"wrote {path}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    width = args.width
    if args.program == "list-ranking":
        from repro.simulation.programs.list_ranking import list_ranking_input

        successor = list(range(1, width)) + [width - 1]
        initial, _ = list_ranking_input(successor)
        program = list_ranking_program(width)
    elif args.program == "matvec":
        program = matvec_program(width)
        initial = (
            [rng.randint(-3, 3) for _ in range(width * width)]
            + [rng.randint(-3, 3) for _ in range(width)]
            + [0] * width
        )
    else:
        program = PROGRAMS[args.program](width)
        initial = [rng.randint(0, 9) for _ in range(width)]
    adversary = build_adversary(args.adversary, args.fail,
                                args.restart_prob, args.seed)
    if args.persistent:
        from repro.simulation import PersistentSimulator

        persistent = PersistentSimulator(p=args.p, adversary=adversary)
        result = persistent.execute(program, initial)
        status = "solved" if result.solved else "INCOMPLETE"
        print(f"{program.name} (persistent): {status}; "
              f"total S={result.total_work}, "
              f"|F|={result.total_pattern_size}, "
              f"generations={result.generations}")
        print("memory head:", result.memory[: min(16, len(result.memory))])
        return 0 if result.solved else 1
    simulator = RobustSimulator(
        p=args.p, algorithm=ALGORITHMS[args.algorithm](), adversary=adversary,
        fast_forward=not args.no_fast_forward, compiled=not args.no_compiled,
        vectorized=_vectorized_from_args(args),
    )
    result = simulator.execute(program, initial)
    status = "solved" if result.solved else "INCOMPLETE"
    print(f"{program.name}: {status}; total S={result.total_work}, "
          f"|F|={result.total_pattern_size}, "
          f"max per-step sigma={result.max_step_overhead_ratio:.2f}")
    print("memory head:", result.memory[: min(16, len(result.memory))])
    return 0 if result.solved else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.faults import UnionAdversary

    tracer = Tracer()
    adversary = UnionAdversary([
        tracer,
        build_adversary(args.adversary, args.fail, args.restart_prob,
                        args.seed),
    ])
    result = solve_write_all(
        ALGORITHMS[args.algorithm](), args.n, args.p, adversary=adversary,
        max_ticks=args.max_ticks,
        fast_forward=not args.no_fast_forward,
        compiled=not args.no_compiled,
        vectorized=_vectorized_from_args(args),
    )
    print(result.summary())
    print()
    print(render_timeline(tracer, result.ledger, width=args.width))
    return 0 if result.solved else 1


def cmd_showdown(args: argparse.Namespace) -> int:
    adversaries = [
        ("none", NoFailures()),
        ("crash", NoRestartAdversary(RandomAdversary(0.05, seed=args.seed))),
        ("random", RandomAdversary(0.1, 0.3, seed=args.seed)),
        ("thrashing", ThrashingAdversary()),
        ("halving", HalvingAdversary()),
    ]
    names = ["W", "V", "X", "VX"]
    rows = []
    for label, adversary in adversaries:
        row = [label]
        for name in names:
            result = solve_write_all(
                ALGORITHMS[name](), args.n, args.p or args.n,
                adversary=adversary, max_ticks=args.max_ticks or 2_000_000,
            )
            row.append(result.completed_work if result.solved else "DNF")
        rows.append(row)
    print(render_table(["adversary"] + names, rows,
                       title=f"completed work S at N={args.n}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Restartable fail-stop PRAM reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="run one Write-All instance")
    solve.add_argument("--n", type=int, default=256)
    solve.add_argument("--p", type=int, default=None)
    _add_common(solve)
    solve.set_defaults(func=cmd_solve)

    sweep = commands.add_parser("sweep", help="sweep sizes and seeds")
    sweep.add_argument("--sizes", default="32,64,128")
    sweep.add_argument("--p", type=int, default=None,
                       help="fixed P (default: P = N)")
    sweep.add_argument("--seeds", type=int, default=3)
    sweep.add_argument("--csv", default=None)
    _add_engine(sweep)
    _add_common(sweep)
    sweep.set_defaults(func=cmd_sweep)

    bench = commands.add_parser(
        "bench",
        help="run benchmark scenarios, write BENCH_<tag>.json",
    )
    bench.add_argument("--scenarios", default=None,
                       help="comma-separated scenario tags; 'all' for "
                            "every registered scenario (default: the "
                            "non-heavy set)")
    bench.add_argument("--list", action="store_true",
                       help="list registered scenarios and the adversary "
                            "registry, then exit")
    bench.add_argument("--model-tag", default=None,
                       choices=adversary_registry.MODEL_TAGS,
                       help="restrict to scenarios (and, with --list, "
                            "registry entries) exercising this fault "
                            "model")
    bench.add_argument("--tag", default="local",
                       help="report tag: writes BENCH_<tag>.json")
    bench.add_argument("--out", default="benchmarks/results",
                       help="output directory for the JSON report")
    _add_engine(bench)
    bench.set_defaults(func=cmd_bench)

    chaos = commands.add_parser(
        "chaos",
        help="soak the sweep engine under deterministic fault injection",
    )
    chaos.add_argument("--workers", type=int, default=2,
                       help="worker processes for the chaos pass")
    chaos.add_argument("--seeds", type=int, default=4,
                       help="sweep seeds per size (grid is 4 sizes x "
                            "this, 16 points by default)")
    chaos.add_argument("--iterations", type=int, default=1,
                       help="independent soak iterations (chaos seeds "
                            "are spaced 1000 apart)")
    chaos.add_argument("--chaos-seed", type=int, default=0,
                       help="base chaos seed (stepped deterministically "
                            "until the plan covers crash+stall+corrupt)")
    chaos.add_argument("--timeout", type=float, default=2.0,
                       help="per-point wall-clock budget; injected "
                            "stalls spin past it")
    chaos.add_argument("--retries", type=int, default=8,
                       help="extra attempts per faulted point (keep "
                            "above the per-point injection cap)")
    chaos.add_argument("--chaos-crash", type=float, default=0.15,
                       help="worker-crash injection rate per attempt")
    chaos.add_argument("--chaos-stall", type=float, default=0.10,
                       help="stall injection rate per attempt")
    chaos.add_argument("--chaos-error", type=float, default=0.10,
                       help="transient-error injection rate per attempt")
    chaos.add_argument("--chaos-corrupt", type=float, default=0.25,
                       help="cache-corruption injection rate per point")
    chaos.add_argument("--worker-kill", type=float, default=0.0,
                       help="whole-worker fail-stop injection rate per "
                            "attempt (the distributed fabric's lease "
                            "re-queue path; local backends degrade it "
                            "to an ordinary crash)")
    chaos.add_argument("--backend", default=None,
                       help="soak a specific backend: 'serial', 'pool', "
                            "'remote:host:port', or plain 'remote' to "
                            "self-host a serve daemon plus --workers "
                            "spawned CLI workers for the chaos pass")
    chaos.set_defaults(func=cmd_chaos)

    serve = commands.add_parser(
        "serve",
        help="run the distributed sweep scheduler daemon",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback; the "
                            "protocol trusts its peers — never expose "
                            "it beyond hosts you control; export "
                            "REPRO_SERVE_TOKEN on daemon and fleet to "
                            "require a shared secret at the handshake)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default: OS-assigned; printed "
                            "on startup)")
    serve.add_argument("--cache-dir", default=None,
                       help="shared content-addressed result store "
                            "(default: .repro-cache)")
    serve.add_argument("--no-cache", action="store_true",
                       help="schedule without a shared store (no "
                            "dedupe across clients)")
    serve.add_argument("--lease-ttl", type=float, default=60.0,
                       help="seconds a worker may hold a lease before "
                            "it is presumed dead and the job re-queues")
    serve.add_argument("--max-lease-tries", type=int, default=5,
                       help="leases a job may burn before it is "
                            "quarantined as a crash")
    serve.add_argument("--status", default=None, metavar="HOST:PORT",
                       help="query a running daemon's status (queue "
                            "depth, fleet, ETA) and exit")
    serve.set_defaults(func=cmd_serve)

    worker = commands.add_parser(
        "worker",
        help="run one restartable fail-stop worker against a serve "
             "daemon",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="address of the serve daemon")
    worker.add_argument("--name", default=None,
                        help="worker name shown in serve status "
                             "(default: assigned by the server)")
    worker.add_argument("--max-restarts", type=int, default=None,
                        help="session restarts before the supervisor "
                             "gives up (default: unbounded — the "
                             "paper's restartable processor)")
    worker.set_defaults(func=cmd_worker)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzz of the Theorem 4.1 simulator "
             "(random programs x lanes x adversaries)",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="fuzz seed; every draw is a pure function "
                           "of it")
    fuzz.add_argument("--iterations", type=int, default=200,
                      help="generated programs per run")
    fuzz.add_argument("--passes", type=int, default=3,
                      help="bit-identical convergence passes per "
                           "program (the repro-chaos contract)")
    fuzz.add_argument("--lanes", default=None,
                      help="comma-separated lanes to exercise; lanes "
                           "this environment cannot run (vec without "
                           "the numpy extra) are skipped with a note "
                           "(default: all registered lanes)")
    fuzz.add_argument("--max-width", type=int, default=5,
                      help="max simulated processors per program")
    fuzz.add_argument("--max-steps", type=int, default=4,
                      help="max steps per program")
    fuzz.add_argument("--no-chaos", action="store_true",
                      help="disable inline chaos injection around "
                           "executions")
    fuzz.add_argument("--fixture-dir", default="tests/fuzz/fixtures",
                      help="where shrunk failure fixtures land "
                           "(loaded forever after by "
                           "tests/fuzz/test_fixtures.py)")
    fuzz.add_argument("--backend", default=None,
                      help="'serial' (default, in-process) or "
                           "'remote:HOST:PORT' to fan complete fuzz "
                           "iterations out over a repro serve fleet "
                           "(bit-identical outcome)")
    fuzz.add_argument("--max-fixtures", type=int, default=5,
                      help="cap on shrunk fixtures per run")
    fuzz.set_defaults(func=cmd_fuzz)

    perf = commands.add_parser(
        "perf",
        help="micro-benchmark the simulator core (fast vs baseline)",
    )
    # Choices derive from the perf module's own tables, not hand copies.
    from repro.perf.micro import PERF_ADVERSARIES, PERF_ALGORITHMS

    perf.add_argument("--algorithm", action="append", default=None,
                      choices=sorted(PERF_ALGORITHMS),
                      help="algorithm to time; repeatable (default: X)")
    perf.add_argument("--size", action="append", default=None,
                      metavar="NxP",
                      help="instance size, e.g. 4096x64; repeatable "
                           "(default: 4096x64)")
    perf.add_argument("--adversary", action="append", default=None,
                      choices=sorted(PERF_ADVERSARIES),
                      help="fault scenario to time under; repeatable "
                           "(default: none = fault-free)")
    perf.add_argument("--no-fast-forward", action="store_true",
                      help="time the fast leg without event-horizon "
                           "batching (skips the separate no-ff leg)")
    perf.add_argument("--no-compiled", action="store_true",
                      help="time the fast leg without compiled kernels "
                           "(skips the separate no-kernel leg)")
    _add_vectorized(perf)
    perf.add_argument("--repeats", type=int, default=5,
                      help="measured repeats per leg (min is reported)")
    perf.add_argument("--warmup", type=int, default=1,
                      help="unmeasured warmup runs per leg")
    perf.add_argument("--no-baseline", action="store_true",
                      help="skip the reference-core baseline leg")
    perf.add_argument("--profile", default=None, metavar="PATH",
                      help="capture a cProfile of the whole run to PATH")
    perf.add_argument("--tag", default=None,
                      help="also write BENCH_<tag>.json")
    perf.add_argument("--out", default="benchmarks/results",
                      help="output directory for the JSON report")
    perf.set_defaults(func=cmd_perf)

    simulate = commands.add_parser(
        "simulate", help="robustly execute a PRAM program"
    )
    simulate.add_argument("--program", default="prefix-sum",
                          choices=sorted(PROGRAMS))
    simulate.add_argument("--width", type=int, default=16)
    simulate.add_argument("--p", type=int, default=4)
    simulate.add_argument("--persistent", action="store_true",
                          help="use the generational no-reset executor")
    _add_common(simulate)
    simulate.set_defaults(func=cmd_simulate)

    trace = commands.add_parser("trace", help="print a failure timeline")
    trace.add_argument("--n", type=int, default=16)
    trace.add_argument("--p", type=int, default=8)
    trace.add_argument("--width", type=int, default=72)
    _add_common(trace)
    trace.set_defaults(func=cmd_trace)

    showdown = commands.add_parser(
        "showdown", help="algorithms x adversaries matrix"
    )
    showdown.add_argument("--n", type=int, default=64)
    showdown.add_argument("--p", type=int, default=None)
    showdown.add_argument("--seed", type=int, default=0)
    showdown.add_argument("--max-ticks", type=int, default=None)
    showdown.set_defaults(func=cmd_showdown)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.pram.vectorized import VectorizedUnavailable

    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "p", None) is None and hasattr(args, "n"):
        args.p = args.n
    try:
        return args.func(args)
    except VectorizedUnavailable as exc:
        raise SystemExit(str(exc))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
