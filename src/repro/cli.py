"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``solve``     — run one Write-All instance and print the accounting;
* ``sweep``     — sweep N (and seeds), print the aggregate table and the
  fitted growth exponent, optionally export CSV;
* ``simulate``  — robustly execute a library PRAM program and verify it;
* ``trace``     — run a small instance and print the per-processor
  failure/restart timeline;
* ``showdown``  — the algorithms × adversaries matrix.

Adversaries are selected by name; stochastic ones take ``--fail``,
``--restart-prob`` and ``--seed``.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.core import (
    AccAlgorithm,
    AlgorithmV,
    AlgorithmVX,
    AlgorithmW,
    AlgorithmX,
    SnapshotAlgorithm,
    TrivialAssignment,
    solve_write_all,
)
from repro.experiments import SweepSpec, run_sweep
from repro.faults import (
    AccStalker,
    BurstAdversary,
    HalvingAdversary,
    IterationStarver,
    NoFailures,
    NoRestartAdversary,
    RandomAdversary,
    StalkingAdversaryX,
    ThrashingAdversary,
)
from repro.metrics.tables import render_table
from repro.pram.trace import Tracer, render_timeline
from repro.simulation import RobustSimulator
from repro.simulation.programs import (
    list_ranking_program,
    matvec_program,
    max_find_program,
    odd_even_sort_program,
    prefix_sum_program,
)

ALGORITHMS = {
    "trivial": TrivialAssignment,
    "W": AlgorithmW,
    "V": AlgorithmV,
    "X": AlgorithmX,
    "VX": AlgorithmVX,
    "snapshot": SnapshotAlgorithm,
    "ACC": AccAlgorithm,
}

ADVERSARIES = ["none", "random", "crash", "thrashing", "halving",
               "stalker", "starver", "acc-stalker", "burst"]

PROGRAMS = {
    "prefix-sum": prefix_sum_program,
    "max-find": max_find_program,
    "list-ranking": list_ranking_program,
    "odd-even-sort": odd_even_sort_program,
    "matvec": matvec_program,
}


def build_adversary(name: str, fail: float, restart_prob: float, seed: int):
    if name == "none":
        return NoFailures()
    if name == "random":
        return RandomAdversary(fail, restart_prob, seed=seed)
    if name == "crash":
        return NoRestartAdversary(RandomAdversary(fail, seed=seed))
    if name == "thrashing":
        return ThrashingAdversary()
    if name == "halving":
        return HalvingAdversary()
    if name == "stalker":
        return StalkingAdversaryX()
    if name == "starver":
        return IterationStarver()
    if name == "acc-stalker":
        return AccStalker()
    if name == "burst":
        return BurstAdversary(period=3, fraction=0.5, downtime=1)
    raise SystemExit(f"unknown adversary {name!r}; known: {ADVERSARIES}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--algorithm", default="X", choices=sorted(ALGORITHMS))
    parser.add_argument("--adversary", default="random", choices=ADVERSARIES)
    parser.add_argument("--fail", type=float, default=0.1,
                        help="per-tick failure probability (stochastic)")
    parser.add_argument("--restart-prob", type=float, default=0.3,
                        help="per-tick restart probability (stochastic)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-ticks", type=int, default=None)


def cmd_solve(args: argparse.Namespace) -> int:
    adversary = build_adversary(args.adversary, args.fail,
                                args.restart_prob, args.seed)
    result = solve_write_all(
        ALGORITHMS[args.algorithm](), args.n, args.p, adversary=adversary,
        max_ticks=args.max_ticks,
    )
    print(result.summary())
    return 0 if result.solved else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    sizes = [int(token) for token in args.sizes.split(",")]
    spec = SweepSpec(
        name=f"{args.algorithm}/{args.adversary}",
        algorithm=ALGORITHMS[args.algorithm],
        sizes=sizes,
        processors=(lambda n: n) if args.p is None else args.p,
        adversary=lambda seed: build_adversary(
            args.adversary, args.fail, args.restart_prob, seed
        ),
        seeds=range(args.seeds),
        max_ticks=args.max_ticks,
    )
    result = run_sweep(spec)
    print(result.table())
    if len(sizes) >= 2:
        print(f"\nfitted work exponent (worst case): "
              f"{result.fitted_exponent():.3f}")
    if args.csv:
        result.export_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0 if result.all_solved() else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    width = args.width
    if args.program == "list-ranking":
        from repro.simulation.programs.list_ranking import list_ranking_input

        successor = list(range(1, width)) + [width - 1]
        initial, _ = list_ranking_input(successor)
        program = list_ranking_program(width)
    elif args.program == "matvec":
        program = matvec_program(width)
        initial = (
            [rng.randint(-3, 3) for _ in range(width * width)]
            + [rng.randint(-3, 3) for _ in range(width)]
            + [0] * width
        )
    else:
        program = PROGRAMS[args.program](width)
        initial = [rng.randint(0, 9) for _ in range(width)]
    adversary = build_adversary(args.adversary, args.fail,
                                args.restart_prob, args.seed)
    if args.persistent:
        from repro.simulation import PersistentSimulator

        persistent = PersistentSimulator(p=args.p, adversary=adversary)
        result = persistent.execute(program, initial)
        status = "solved" if result.solved else "INCOMPLETE"
        print(f"{program.name} (persistent): {status}; "
              f"total S={result.total_work}, "
              f"|F|={result.total_pattern_size}, "
              f"generations={result.generations}")
        print("memory head:", result.memory[: min(16, len(result.memory))])
        return 0 if result.solved else 1
    simulator = RobustSimulator(
        p=args.p, algorithm=ALGORITHMS[args.algorithm](), adversary=adversary
    )
    result = simulator.execute(program, initial)
    status = "solved" if result.solved else "INCOMPLETE"
    print(f"{program.name}: {status}; total S={result.total_work}, "
          f"|F|={result.total_pattern_size}, "
          f"max per-step sigma={result.max_step_overhead_ratio:.2f}")
    print("memory head:", result.memory[: min(16, len(result.memory))])
    return 0 if result.solved else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.faults import UnionAdversary

    tracer = Tracer()
    adversary = UnionAdversary([
        tracer,
        build_adversary(args.adversary, args.fail, args.restart_prob,
                        args.seed),
    ])
    result = solve_write_all(
        ALGORITHMS[args.algorithm](), args.n, args.p, adversary=adversary,
        max_ticks=args.max_ticks,
    )
    print(result.summary())
    print()
    print(render_timeline(tracer, result.ledger, width=args.width))
    return 0 if result.solved else 1


def cmd_showdown(args: argparse.Namespace) -> int:
    adversaries = [
        ("none", NoFailures()),
        ("crash", NoRestartAdversary(RandomAdversary(0.05, seed=args.seed))),
        ("random", RandomAdversary(0.1, 0.3, seed=args.seed)),
        ("thrashing", ThrashingAdversary()),
        ("halving", HalvingAdversary()),
    ]
    names = ["W", "V", "X", "VX"]
    rows = []
    for label, adversary in adversaries:
        row = [label]
        for name in names:
            result = solve_write_all(
                ALGORITHMS[name](), args.n, args.p or args.n,
                adversary=adversary, max_ticks=args.max_ticks or 2_000_000,
            )
            row.append(result.completed_work if result.solved else "DNF")
        rows.append(row)
    print(render_table(["adversary"] + names, rows,
                       title=f"completed work S at N={args.n}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Restartable fail-stop PRAM reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="run one Write-All instance")
    solve.add_argument("--n", type=int, default=256)
    solve.add_argument("--p", type=int, default=None)
    _add_common(solve)
    solve.set_defaults(func=cmd_solve)

    sweep = commands.add_parser("sweep", help="sweep sizes and seeds")
    sweep.add_argument("--sizes", default="32,64,128")
    sweep.add_argument("--p", type=int, default=None,
                       help="fixed P (default: P = N)")
    sweep.add_argument("--seeds", type=int, default=3)
    sweep.add_argument("--csv", default=None)
    _add_common(sweep)
    sweep.set_defaults(func=cmd_sweep)

    simulate = commands.add_parser(
        "simulate", help="robustly execute a PRAM program"
    )
    simulate.add_argument("--program", default="prefix-sum",
                          choices=sorted(PROGRAMS))
    simulate.add_argument("--width", type=int, default=16)
    simulate.add_argument("--p", type=int, default=4)
    simulate.add_argument("--persistent", action="store_true",
                          help="use the generational no-reset executor")
    _add_common(simulate)
    simulate.set_defaults(func=cmd_simulate)

    trace = commands.add_parser("trace", help="print a failure timeline")
    trace.add_argument("--n", type=int, default=16)
    trace.add_argument("--p", type=int, default=8)
    trace.add_argument("--width", type=int, default=72)
    _add_common(trace)
    trace.set_defaults(func=cmd_trace)

    showdown = commands.add_parser(
        "showdown", help="algorithms x adversaries matrix"
    )
    showdown.add_argument("--n", type=int, default=64)
    showdown.add_argument("--p", type=int, default=None)
    showdown.add_argument("--seed", type=int, default=0)
    showdown.add_argument("--max-ticks", type=int, default=None)
    showdown.set_defaults(func=cmd_showdown)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "p", None) is None and hasattr(args, "n"):
        args.p = args.n
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
