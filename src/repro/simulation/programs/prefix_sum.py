"""Parallel prefix sums (inclusive scan) by recursive doubling.

The classic O(log N)-time N-processor PRAM scan: in round ``d``,
processor ``i`` (for ``i >= 2^d``) replaces ``a[i]`` with
``a[i] + a[i - 2^d]``.  In-place is safe because the robust executor
gives exact synchronous semantics (all reads of a step observe the
previous step's memory).
"""

from __future__ import annotations

from repro.simulation.step import SimProgram, SimStep
from repro.util.bits import ceil_log2


class _ScanStep(SimStep):
    def __init__(self, shift: int) -> None:
        self.shift = shift
        self.label = f"scan(shift={shift})"

    def read_addresses(self, processor: int):
        if processor < self.shift:
            return ()
        return (processor, processor - self.shift)

    def write_addresses(self, processor: int):
        if processor < self.shift:
            return ()
        return (processor,)

    def compute(self, processor: int, values):
        return (values[0] + values[1],)


def prefix_sum_program(m: int) -> SimProgram:
    """Inclusive prefix sums over ``a[0..m-1]`` held at addresses 0..m-1."""
    if m <= 0:
        raise ValueError(f"prefix sum needs m > 0, got {m}")
    rounds = ceil_log2(m) if m > 1 else 0
    steps = [_ScanStep(1 << d) for d in range(rounds)]
    return SimProgram(
        width=m, memory_size=m, steps=steps, name=f"prefix-sum[{m}]"
    )
