"""Matrix-vector product by per-row accumulation.

Memory layout: the m×m matrix ``A`` row-major at ``0..m*m-1``, the
vector ``x`` at ``m*m..m*m+m-1``, and the output ``y`` at
``m*m+m..m*m+2m-1``.  Round ``k`` has simulated processor ``i`` fold
``A[i][k] * x[k]`` into ``y[i]`` — m rounds of m processors, the
classic work-optimal layout for this cost model (three reads and one
write per processor per step).
"""

from __future__ import annotations

from repro.simulation.step import SimProgram, SimStep


class _AccumulateStep(SimStep):
    def __init__(self, m: int, k: int) -> None:
        self.m = m
        self.k = k
        self.label = f"matvec(k={k})"

    def read_addresses(self, processor: int):
        m, k = self.m, self.k
        return (
            m * m + m + processor,   # y[i]
            processor * m + k,       # A[i][k]
            m * m + k,               # x[k]
        )

    def write_addresses(self, processor: int):
        return (self.m * self.m + self.m + processor,)

    def compute(self, processor: int, values):
        y, a, x = values
        return (y + a * x,)


def matvec_program(m: int) -> SimProgram:
    """Compute ``y = A @ x`` for an m×m integer matrix."""
    if m <= 0:
        raise ValueError(f"matvec needs m > 0, got {m}")
    steps = [_AccumulateStep(m, k) for k in range(m)]
    return SimProgram(
        width=m, memory_size=m * m + 2 * m, steps=steps,
        name=f"matvec[{m}]",
    )
