"""Level-synchronous BFS / shortest paths on bounded-degree graphs.

Each simulated processor owns one vertex and repeatedly relaxes its
distance against its neighbors' (Bellman-Ford style)::

    dist[v] = min(dist[v], 1 + min(dist[u] for u in adj[v]))

With degree <= 3 this fits the update-cycle read budget (dist[v] plus
three neighbor cells); ``diameter`` rounds suffice, and running a few
extra rounds is harmless (the relaxation is monotone).  Distances use
``m`` (the vertex count) as the "infinity" encoding, so everything
stays in small non-negative words.

Memory layout: ``dist[0..m-1]`` at addresses ``0..m-1``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.simulation.step import SimProgram, SimStep

MAX_DEGREE = 3


class _RelaxStep(SimStep):
    label = "bfs-relax"

    def __init__(self, adjacency: Sequence[Sequence[int]], infinity: int) -> None:
        self.adjacency = adjacency
        self.infinity = infinity

    def read_addresses(self, processor: int):
        return (processor, *self.adjacency[processor])

    def write_addresses(self, processor: int):
        return (processor,)

    def compute(self, processor: int, values):
        own = values[0]
        best = own
        for neighbor_distance in values[1:]:
            candidate = neighbor_distance + 1
            if candidate < best:
                best = candidate
        return (min(best, self.infinity),)


def bfs_program(
    adjacency: Sequence[Sequence[int]], rounds: int = 0
) -> SimProgram:
    """BFS distances on a degree-<=3 graph given as adjacency lists.

    ``rounds`` defaults to ``m - 1`` (always enough); pass the diameter
    to tighten it.
    """
    m = len(adjacency)
    if m == 0:
        raise ValueError("bfs needs at least one vertex")
    for vertex, neighbors in enumerate(adjacency):
        if len(neighbors) > MAX_DEGREE:
            raise ValueError(
                f"vertex {vertex} has degree {len(neighbors)}; the "
                f"update-cycle read budget caps BFS at degree {MAX_DEGREE}"
            )
        for neighbor in neighbors:
            if not 0 <= neighbor < m:
                raise ValueError(
                    f"vertex {vertex}: neighbor {neighbor} out of range"
                )
    if rounds <= 0:
        rounds = max(1, m - 1)
    step = _RelaxStep(adjacency, infinity=m)
    return SimProgram(
        width=m, memory_size=m, steps=[step] * rounds,
        name=f"bfs[{m}]",
    )


def bfs_input(m: int, sources: Sequence[int]) -> List[int]:
    """Initial distance array: 0 at sources, 'infinity' (= m) elsewhere."""
    distances = [m] * m
    for source in sources:
        if not 0 <= source < m:
            raise ValueError(f"source {source} out of range [0, {m})")
        distances[source] = 0
    return distances


def reference_bfs(
    adjacency: Sequence[Sequence[int]], sources: Sequence[int]
) -> List[int]:
    """Plain-Python BFS oracle (distance m = unreachable)."""
    m = len(adjacency)
    distances = [m] * m
    frontier = list(dict.fromkeys(sources))
    for source in frontier:
        distances[source] = 0
    # Undirected relaxation mirror: build reverse edges too, because the
    # simulated relaxation reads *out*-neighbors; for symmetric inputs
    # this matches ordinary BFS.
    while frontier:
        next_frontier = []
        for vertex in frontier:
            for other in range(m):
                if vertex in adjacency[other] and (
                    distances[other] > distances[vertex] + 1
                ):
                    distances[other] = distances[vertex] + 1
                    next_frontier.append(other)
        frontier = next_frontier
    return distances
