"""Tournament maximum: log N halving rounds.

Memory layout: the input ``a[0..m-1]`` at addresses ``0..m-1``; a
working array at ``m..2m-1``.  A copy step seeds the working array, then
each round halves it pairwise; the maximum ends at address ``m``.
"""

from __future__ import annotations

from repro.simulation.step import SimProgram, SimStep
from repro.util.bits import ceil_log2, is_power_of_two


class _CopyStep(SimStep):
    label = "copy"

    def __init__(self, m: int) -> None:
        self.m = m

    def read_addresses(self, processor: int):
        return (processor,)

    def write_addresses(self, processor: int):
        return (self.m + processor,)

    def compute(self, processor: int, values):
        return (values[0],)


class _HalveStep(SimStep):
    def __init__(self, m: int, length: int) -> None:
        self.m = m
        self.length = length  # working-array length before this round
        self.label = f"halve({length})"

    def read_addresses(self, processor: int):
        if processor >= self.length // 2:
            return ()
        return (self.m + 2 * processor, self.m + 2 * processor + 1)

    def write_addresses(self, processor: int):
        if processor >= self.length // 2:
            return ()
        return (self.m + processor,)

    def compute(self, processor: int, values):
        return (max(values[0], values[1]),)


def max_find_program(m: int) -> SimProgram:
    """Maximum of ``a[0..m-1]``; the result lands at address ``m``."""
    if not is_power_of_two(m):
        raise ValueError(f"max-find needs power-of-two m, got {m}")
    steps = [_CopyStep(m)]
    length = m
    for _round in range(ceil_log2(m)):
        steps.append(_HalveStep(m, length))
        length //= 2
    return SimProgram(
        width=m, memory_size=2 * m, steps=steps, name=f"max-find[{m}]"
    )
