"""Odd-even transposition sort: m rounds of compare-exchange.

Round ``s`` compares the pairs ``(j, j+1)`` with ``j ≡ s (mod 2)``.
Each simulated processor owns one pair and writes both cells (the
sorted order), so every write address is data-independent.
"""

from __future__ import annotations

from repro.simulation.step import SimProgram, SimStep


class _TranspositionStep(SimStep):
    def __init__(self, m: int, parity: int) -> None:
        self.m = m
        self.parity = parity
        self.label = f"transpose(parity={parity})"

    def _pair(self, processor: int):
        j = 2 * processor + self.parity
        if j + 1 >= self.m:
            return None
        return j

    def read_addresses(self, processor: int):
        j = self._pair(processor)
        if j is None:
            return ()
        return (j, j + 1)

    def write_addresses(self, processor: int):
        j = self._pair(processor)
        if j is None:
            return ()
        return (j, j + 1)

    def compute(self, processor: int, values):
        low, high = sorted(values)
        return (low, high)


def odd_even_sort_program(m: int) -> SimProgram:
    """Sort ``a[0..m-1]`` ascending, in place."""
    if m <= 1:
        return SimProgram(width=1, memory_size=max(1, m), steps=[],
                          name=f"odd-even-sort[{m}]")
    steps = [_TranspositionStep(m, s % 2) for s in range(m)]
    return SimProgram(
        width=m // 2, memory_size=m, steps=steps,
        name=f"odd-even-sort[{m}]",
    )
