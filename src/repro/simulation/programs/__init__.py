"""Classic PRAM programs expressed as :class:`SimProgram` step lists.

These are the workloads the simulation benchmarks (Theorem 4.1,
Corollary 4.12) execute on faulty processors:

* :func:`prefix_sum_program` — log N rounds of pairwise accumulation;
* :func:`max_find_program` — tournament maximum;
* :func:`list_ranking_program` — pointer-jumping list ranking;
* :func:`odd_even_sort_program` — odd-even transposition sort;
* :func:`matvec_program` — matrix-vector product by accumulation.
"""

from repro.simulation.programs.bfs import bfs_input, bfs_program
from repro.simulation.programs.list_ranking import list_ranking_program
from repro.simulation.programs.matrix import matvec_program
from repro.simulation.programs.max_find import max_find_program
from repro.simulation.programs.polynomial import (
    polynomial_input,
    polynomial_program,
)
from repro.simulation.programs.prefix_sum import prefix_sum_program
from repro.simulation.programs.sorting import odd_even_sort_program

__all__ = [
    "bfs_input",
    "bfs_program",
    "list_ranking_program",
    "matvec_program",
    "max_find_program",
    "odd_even_sort_program",
    "polynomial_input",
    "polynomial_program",
    "prefix_sum_program",
]
