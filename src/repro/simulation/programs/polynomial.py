"""Parallel polynomial evaluation: p(x) = sum c_i * x^i.

Three phases, all in O(log m) synchronous steps:

1. *powers by doubling* — ``pow[i] = x^i`` computed as
   ``pow[i] = pow[i - 2^d] * pow[2^d]`` for ``d = 0, 1, ...``;
2. *pointwise products* — ``term[i] = c_i * pow[i]``;
3. *tournament sum* — halve the term array until ``term[0] = p(x)``.

Memory layout: ``c[0..m-1]`` | ``pow[0..m-1]`` | ``term[0..m-1]``; the
caller seeds ``pow[1] = x`` (and ``pow[0] = 1``) via
:func:`polynomial_input`.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.simulation.step import SimProgram, SimStep
from repro.util.bits import ceil_log2, is_power_of_two


class _PowerStep(SimStep):
    def __init__(self, m: int, shift: int) -> None:
        self.m = m
        self.shift = shift
        self.label = f"powers(shift={shift})"

    def read_addresses(self, processor: int):
        if processor < self.shift or processor >= self.m:
            return ()
        m = self.m
        return (m + processor - self.shift, m + self.shift)

    def write_addresses(self, processor: int):
        if processor < self.shift or processor >= self.m:
            return ()
        return (self.m + processor,)

    def compute(self, processor: int, values):
        return (values[0] * values[1],)


class _TermStep(SimStep):
    label = "terms"

    def __init__(self, m: int) -> None:
        self.m = m

    def read_addresses(self, processor: int):
        return (processor, self.m + processor)

    def write_addresses(self, processor: int):
        return (2 * self.m + processor,)

    def compute(self, processor: int, values):
        coefficient, power = values
        return (coefficient * power,)


class _SumStep(SimStep):
    def __init__(self, m: int, length: int) -> None:
        self.m = m
        self.length = length
        self.label = f"sum({length})"

    def read_addresses(self, processor: int):
        if processor >= self.length // 2:
            return ()
        base = 2 * self.m
        return (base + 2 * processor, base + 2 * processor + 1)

    def write_addresses(self, processor: int):
        if processor >= self.length // 2:
            return ()
        return (2 * self.m + processor,)

    def compute(self, processor: int, values):
        return (values[0] + values[1],)


def polynomial_program(m: int) -> SimProgram:
    """Evaluate a degree-(m-1) polynomial; the value lands at ``2m``."""
    if not is_power_of_two(m):
        raise ValueError(f"polynomial evaluation needs power-of-two m, got {m}")
    steps: List[SimStep] = []
    for d in range(ceil_log2(m)):
        steps.append(_PowerStep(m, 1 << d))
    steps.append(_TermStep(m))
    length = m
    for _round in range(ceil_log2(m)):
        steps.append(_SumStep(m, length))
        length //= 2
    return SimProgram(
        width=m, memory_size=3 * m, steps=steps,
        name=f"polynomial[{m}]",
    )


def polynomial_input(coefficients: Sequence[int], x: int) -> List[int]:
    """Initial memory: coefficients, then pow seeded with [1, x, 0, ...]."""
    m = len(coefficients)
    powers = [0] * m
    powers[0] = 1
    if m > 1:
        powers[1] = x
    return list(coefficients) + powers + [0] * m


def reference_polynomial(coefficients: Sequence[int], x: int) -> int:
    value = 0
    for coefficient in reversed(coefficients):
        value = value * x + coefficient
    return value
