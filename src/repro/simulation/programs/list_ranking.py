"""Pointer-jumping list ranking.

Memory layout: ``next[0..m-1]`` at addresses ``0..m-1`` (the list tail
points to itself) and ``rank`` at ``m..2m-1`` (initialized by the caller
to 0 at the tail, 1 elsewhere).  Each of the ``ceil(log m)`` rounds does
the textbook jump::

    rank[i] += rank[next[i]];  next[i] = next[next[i]]

The reads chain through the pointer (``rank[next[i]]`` is a dependent
read — legal within one update cycle, and consistent because all reads
of a simulated step observe the previous step's memory).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.simulation.step import SimProgram, SimStep
from repro.util.bits import ceil_log2


class _JumpStep(SimStep):
    label = "pointer-jump"

    def __init__(self, m: int) -> None:
        self.m = m

    def read_addresses(self, processor: int):
        m = self.m
        return (
            processor,                      # next[i]
            m + processor,                  # rank[i]
            lambda values: values[0],       # next[next[i]]
            lambda values: m + values[0],   # rank[next[i]]
        )

    def write_addresses(self, processor: int):
        return (processor, self.m + processor)

    def compute(self, processor: int, values):
        next_i, rank_i, next_next, rank_next = values
        if next_i == processor:  # tail: already done
            return (next_i, rank_i)
        return (next_next, rank_i + rank_next)


def list_ranking_program(m: int) -> SimProgram:
    """Rank every node of an m-node linked list (distance to the tail)."""
    if m <= 0:
        raise ValueError(f"list ranking needs m > 0, got {m}")
    rounds = ceil_log2(m) if m > 1 else 0
    steps = [_JumpStep(m) for _ in range(rounds)]
    return SimProgram(
        width=m, memory_size=2 * m, steps=steps, name=f"list-ranking[{m}]"
    )


def list_ranking_input(successor: List[int]) -> Tuple[List[int], int]:
    """Build the initial memory for a list given successor pointers.

    ``successor[i]`` is the next node of ``i``; the tail must point to
    itself.  Returns ``(initial_memory, m)``.
    """
    m = len(successor)
    tails = [i for i in range(m) if successor[i] == i]
    if len(tails) != 1:
        raise ValueError(
            f"list must have exactly one self-looped tail, found {tails}"
        )
    ranks = [0 if successor[i] == i else 1 for i in range(m)]
    return list(successor) + ranks, m
