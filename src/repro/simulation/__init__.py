"""Robust execution of arbitrary PRAM programs (Section 4.3).

    "The simulations of the individual PRAM steps are based on replacing
    the trivial array assignments in a Write-All solution with the
    appropriate components of the PRAM steps. ... the results of
    computations are stored in temporary memory before simulating the
    synchronous updates of the shared memory with the new values."

An N-processor synchronous PRAM program is expressed as a sequence of
:class:`SimStep` objects.  The :class:`RobustSimulator` executes each
step as *two* Write-All instances run with any of the robust algorithms
(V+X by default): a compute phase stages every simulated processor's
write values, and a commit phase installs them — so re-executed or
concurrently executed tasks are idempotent and every simulated read
observes the previous step's memory (exact synchronous semantics on
faulty hardware).

A library of classic PRAM programs for the simulator lives in
:mod:`repro.simulation.programs`.
"""

from repro.simulation.executor import (
    PhaseRecord,
    RobustSimulator,
    SimulationResult,
)
from repro.simulation.persistent import (
    CheckpointPolicy,
    PersistentResult,
    PersistentSimulator,
)
from repro.simulation.step import FunctionStep, SimProgram, SimStep

__all__ = [
    "CheckpointPolicy",
    "FunctionStep",
    "PersistentResult",
    "PersistentSimulator",
    "PhaseRecord",
    "RobustSimulator",
    "SimProgram",
    "SimStep",
    "SimulationResult",
]
