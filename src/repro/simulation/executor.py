"""The iterated Write-All executor (Section 4.3, Theorem 4.1).

Every simulated step runs as two robust Write-All instances over
``width`` idempotent tasks each:

* **compute phase** — task ``i`` re-reads simulated processor ``i``'s
  inputs (stable: nothing writes simulated memory during this phase) and
  stores each output value into a private staging slot; one staging
  write per update cycle, so the tasks compose with the V/W engine's
  write budget;
* **commit phase** — task ``i`` copies its staging slots into the
  simulated memory cells (addresses are data-independent, so the commit
  needs no address indirection).

Because a phase's Write-All array ``x`` only reaches all-ones when every
task completed, a finished phase certifies the simulated step; both
re-execution (failures) and concurrent execution (several processors at
one leaf, COMMON CRCW) write identical values.

Substitution note (see DESIGN.md): the paper carries the Write-All
scratch structures across steps with generation counters ([KPS 90],
[Shv 89]); we start each phase with fresh scratch structures instead —
an accounting-neutral simplification (clearing is O(size) host work, not
charged machine work).  Phase boundaries also restart failed processors,
which is a legal adversary behavior in the restart model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.core.algorithm_vx import AlgorithmVX
from repro.core.base import WriteAllAlgorithm, done_predicate
from repro.core.tasks import CycleFactoryTasks
from repro.pram.compiled import resolve_kernel
from repro.pram.vectorized import resolve_vectorized
from repro.pram.cycles import Cycle, Write
from repro.pram.ledger import RunLedger
from repro.pram.machine import Machine
from repro.pram.memory import MemoryReader, SharedMemory
from repro.pram.policies import WritePolicy
from repro.simulation.step import SimProgram, SimStep
from repro.util.bits import next_power_of_two


@dataclass
class PhaseRecord:
    """Accounting for one Write-All phase of one simulated step."""

    step_index: int
    phase: str  # "compute" | "commit"
    n_tasks: int
    ledger: RunLedger
    solved: bool
    #: Simulated-memory snapshot taken right after this phase, when the
    #: simulator runs with ``capture_snapshots=True`` (None otherwise).
    #: The fuzz shrinker uses these to localize the first divergent
    #: phase of a failing program.
    memory: Optional[List[int]] = None

    @property
    def completed_work(self) -> int:
        return self.ledger.completed_work

    @property
    def pattern_size(self) -> int:
        return self.ledger.pattern_size


@dataclass
class SimulationResult:
    """Outcome of robustly executing a simulated PRAM program."""

    program: str
    width: int
    p: int
    algorithm: str
    phases: List[PhaseRecord] = field(default_factory=list)
    memory: List[int] = field(default_factory=list)
    solved: bool = True

    @property
    def steps_executed(self) -> int:
        return len({record.step_index for record in self.phases})

    @property
    def total_work(self) -> int:
        """Total completed work S across all phases."""
        return sum(record.completed_work for record in self.phases)

    @property
    def total_pattern_size(self) -> int:
        return sum(record.pattern_size for record in self.phases)

    def step_work(self, step_index: int) -> int:
        return sum(
            record.completed_work
            for record in self.phases
            if record.step_index == step_index
        )

    def step_overhead_ratio(self, step_index: int) -> float:
        """Per-simulated-step sigma = S_step / (N + |F|_step) (Thm 4.1)."""
        records = [r for r in self.phases if r.step_index == step_index]
        if not records:
            raise ValueError(
                f"step {step_index} of {self.program!r} has no recorded "
                f"phases (a write-free step is skipped as a no-op), so "
                f"its overhead ratio sigma is undefined"
            )
        pattern = sum(r.pattern_size for r in records)
        n = max(r.n_tasks for r in records)
        if n + pattern == 0:
            raise ValueError(
                f"step {step_index} of {self.program!r} has zero pattern "
                f"size and zero tasks; sigma = S / (N + |F|) is undefined"
            )
        return self.step_work(step_index) / (n + pattern)

    @property
    def max_step_overhead_ratio(self) -> float:
        indexes = {record.step_index for record in self.phases}
        return max(self.step_overhead_ratio(index) for index in indexes)


class RobustSimulator:
    """Executes N-processor PRAM programs on P faulty processors."""

    def __init__(
        self,
        p: int,
        algorithm: Optional[WriteAllAlgorithm] = None,
        adversary: Optional[object] = None,
        policy: Optional[WritePolicy] = None,
        max_ticks_per_phase: int = 2_000_000,
        fast_path: bool = True,
        fast_forward: bool = True,
        compiled: bool = True,
        vectorized: "Union[bool, str]" = False,
        capture_snapshots: bool = False,
    ) -> None:
        if p <= 0:
            raise ValueError(f"simulator needs p > 0, got {p}")
        self.p = p
        self.algorithm = algorithm if algorithm is not None else AlgorithmVX()
        self.adversary = adversary
        self.policy = policy
        self.max_ticks_per_phase = max_ticks_per_phase
        # Lane selection, mirroring solve_write_all (see
        # repro.pram.lanes for the registry): ``fast_forward`` /
        # ``compiled`` / ``vectorized`` are the --no-fast-forward /
        # --no-compiled / --vectorized switches (``vectorized="auto"``
        # is --lane auto adaptive dispatch).  The fuzz driver runs
        # every program through all available lanes.  Note the robust
        # phases always use non-trivial task sets (CycleFactoryTasks),
        # which every vectorized_program hook gates to None — so the
        # vec lane here exercises exactly the scalar-fallback path.
        self.fast_path = fast_path
        self.fast_forward = fast_forward
        self.compiled = compiled
        self.vectorized = vectorized
        self.capture_snapshots = capture_snapshots

    def execute(
        self, program: SimProgram, initial_memory: Optional[List[int]] = None
    ) -> SimulationResult:
        """Run every step of ``program`` robustly; return the outcome."""
        program.validate()
        simulated = list(initial_memory or [])
        if len(simulated) > program.memory_size:
            raise ValueError(
                f"initial memory ({len(simulated)} cells) exceeds the "
                f"program's memory size {program.memory_size}"
            )
        simulated += [0] * (program.memory_size - len(simulated))

        if self.adversary is not None and hasattr(self.adversary, "reset"):
            self.adversary.reset()

        result = SimulationResult(
            program=program.name,
            width=program.width,
            p=self.p,
            algorithm=self.algorithm.name,
        )
        for step_index, step in enumerate(program.steps):
            slots = max(
                (len(step.write_addresses(i)) for i in range(program.width)),
                default=0,
            )
            if slots == 0:
                continue  # a step that writes nothing is a no-op
            staging = [0] * (program.width * slots)
            ok = self._run_phase(
                result, step_index, "compute", step, slots, staging, simulated
            )
            if not ok:
                result.solved = False
                break
            ok = self._run_phase(
                result, step_index, "commit", step, slots, staging, simulated
            )
            if not ok:
                result.solved = False
                break
        result.memory = simulated
        return result

    # ------------------------------------------------------------------ #

    def _run_phase(
        self,
        result: SimulationResult,
        step_index: int,
        phase: str,
        step: SimStep,
        slots: int,
        staging: List[int],
        simulated: List[int],
    ) -> bool:
        width = len(staging) // slots
        n_tasks = next_power_of_two(width)
        layout = self.algorithm.build_layout(n_tasks, self.p)
        staging_base = layout.size
        sim_base = staging_base + len(staging)
        total_size = sim_base + len(simulated)

        memory = SharedMemory(total_size)
        self.algorithm.initialize_memory(memory, layout)
        memory.load(staging, staging_base)
        memory.load(simulated, sim_base)

        factory = _compute_task_factory if phase == "compute" else _commit_task_factory
        tasks = CycleFactoryTasks(
            cycles_per_task=slots,
            factory=factory(step, slots, width, staging_base, sim_base),
        )
        machine = Machine(
            num_processors=self.p,
            memory=memory,
            policy=self.policy,
            adversary=self.adversary,
            allow_snapshot=self.algorithm.requires_snapshot,
            fast_path=self.fast_path,
            fast_forward=self.fast_forward,
            context={
                "layout": layout,
                "algorithm": self.algorithm.name,
                "phase": phase,
                "step": step_index,
            },
        )
        machine.load_program(
            self.algorithm.program(layout, tasks),
            compiled_program=resolve_kernel(
                self.algorithm, layout, tasks, self.compiled
            ),
            vectorized_program=resolve_vectorized(
                self.algorithm, layout, tasks, self.vectorized
            ),
            vector_dispatch="auto" if self.vectorized == "auto" else "always",
        )
        ledger = machine.run(
            until=done_predicate(layout),
            max_ticks=self.max_ticks_per_phase,
            raise_on_limit=False,
        )
        solved = ledger.goal_reached
        reader = MemoryReader(memory)
        staging[:] = reader.region(staging_base, len(staging))
        simulated[:] = reader.region(sim_base, len(simulated))
        result.phases.append(
            PhaseRecord(
                step_index=step_index,
                phase=phase,
                n_tasks=n_tasks,
                ledger=ledger,
                solved=solved,
                memory=list(simulated) if self.capture_snapshots else None,
            )
        )
        return solved


def _compute_task_factory(
    step: SimStep, slots: int, width: int, staging_base: int, sim_base: int
):
    """Compute-phase tasks: stage each simulated write's value."""

    def factory(element: int, pid: int) -> List[Cycle]:
        if element >= width:
            return [Cycle(label="sim:pad")] * slots
        write_addresses = step.write_addresses(element)
        raw_reads = step.read_addresses(element)
        reads = tuple(_translate_read(spec, sim_base) for spec in raw_reads)
        cycles: List[Cycle] = []
        for slot in range(slots):
            if slot >= len(write_addresses):
                cycles.append(Cycle(label="sim:pad"))
                continue

            def writes(
                values: Tuple[int, ...],
                element: int = element,
                slot: int = slot,
            ) -> Tuple[Write, ...]:
                outputs = step.compute(element, values)
                return (
                    Write(staging_base + element * slots + slot,
                          outputs[slot]),
                )

            cycles.append(
                Cycle(reads=reads, writes=writes, label=f"sim:{step.label}")
            )
        return cycles

    return factory


def _commit_task_factory(
    step: SimStep, slots: int, width: int, staging_base: int, sim_base: int
):
    """Commit-phase tasks: install staged values into simulated memory."""

    def factory(element: int, pid: int) -> List[Cycle]:
        if element >= width:
            return [Cycle(label="sim:pad")] * slots
        write_addresses = step.write_addresses(element)
        cycles: List[Cycle] = []
        for slot in range(slots):
            if slot >= len(write_addresses):
                cycles.append(Cycle(label="sim:pad"))
                continue
            source = staging_base + element * slots + slot
            target = sim_base + write_addresses[slot]

            def writes(
                values: Tuple[int, ...], target: int = target
            ) -> Tuple[Write, ...]:
                return (Write(target, values[0]),)

            cycles.append(
                Cycle(reads=(source,), writes=writes, label="sim:commit")
            )
        return cycles

    return factory


def _translate_read(spec, sim_base: int):
    """Offset a simulated read spec into host addresses."""
    if isinstance(spec, int):
        return sim_base + spec
    def translated(so_far: Tuple[int, ...]):
        address = spec(so_far)
        return None if address is None else sim_base + address
    return translated
