"""The persistent (no-reset) robust executor.

:class:`~repro.simulation.executor.RobustSimulator` builds a fresh
machine per Write-All phase — a documented substitution for the paper's
generation-counter technique.  :class:`PersistentSimulator` removes the
substitution: the *entire* simulated program runs as one machine run,
with :class:`~repro.core.generational.GenerationalX` executing the
2-per-step sequence of compute/commit task phases over generation-tagged
structures.  Consequences:

* failures and restarts span phase boundaries — a processor crashed in
  step 3's compute phase is still down in step 7 unless the adversary
  revives it;
* nothing is ever cleared by the harness: one shared memory, one
  ledger, one continuous failure pattern;
* per-phase accounting comes from a passive flag-clock observer that
  records the tick at which each generation's flag rises.

The simulator optionally runs under the *parallel persistent memory*
model (Blelloch et al., "The Parallel Persistent Memory Model"): with a
:class:`CheckpointPolicy`, a processor's private state is checkpointed
to persistent storage every ``interval`` completed cycles at a charged
cost of ``cost`` no-op cycles, and a restart resumes from the last
checkpoint instead of the program top.  KS91's Theorem 4.3 simulation
overhead carries an ``M log N`` term precisely because every restart
re-enters the program with nothing but a PID; as checkpoint frequency
rises that term collapses toward the checkpoint overhead itself, which
is what the ``pmem-checkpoint`` bench scenario measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.generational import (
    GenerationalX,
    GenXLayout,
    done_flags_predicate,
)
from repro.core.tasks import CycleFactoryTasks
from repro.faults.base import Adversary
from repro.faults.compose import UnionAdversary
from repro.pram.cycles import noop_cycle
from repro.pram.failures import Decision
from repro.pram.ledger import RunLedger
from repro.pram.machine import Machine
from repro.pram.memory import MemoryReader, SharedMemory
from repro.pram.policies import WritePolicy
from repro.pram.view import TickView
from repro.simulation.executor import (
    _commit_task_factory,
    _compute_task_factory,
)
from repro.simulation.step import SimProgram
from repro.util.bits import next_power_of_two


class _FlagClock(Adversary):
    """Records the first tick at which each generation flag rises."""

    def __init__(self, layout: GenXLayout) -> None:
        self._layout = layout
        self.raised_at: Dict[int, int] = {}

    def reset(self) -> None:
        self.raised_at = {}

    def decide(self, view: TickView) -> Decision:
        for generation in range(1, self._layout.generations + 1):
            if generation in self.raised_at:
                continue
            if view.memory.read(self._layout.flag_address(generation)):
                self.raised_at[generation] = view.time
        return Decision.none()


class CheckpointPolicy:
    """Blelloch-style private-state checkpoints for generator programs.

    Every ``interval`` completed update cycles a processor spends
    ``cost`` charged no-op cycles writing its private state to
    persistent storage; a restarted processor then *replays* its
    logged read values up to the last committed checkpoint — a free,
    harness-level reconstruction of the checkpointed private state —
    instead of re-entering the program from the top.  ``interval=0``
    disables checkpointing (pure KS91 restart semantics).

    The policy wraps a ``pid -> generator`` program factory
    (:meth:`wrap`).  Correctness invariants:

    * the replay log holds only *completed* cycles' read values, in
      order — a failed cycle never reached the wrapper;
    * a checkpoint commits (``mark`` advances) only after all ``cost``
      no-op cycles completed, so a crash mid-checkpoint falls back to
      the previous checkpoint;
    * entries after ``mark`` are truncated on restart — ephemeral state
      since the last checkpoint is lost, exactly the PPM contract.

    Replayed cycles re-observe their *original* read values, not
    current memory — that is the point: they reconstruct the private
    state as checkpointed, without touching shared memory (writes are
    not re-applied during replay).

    The instance accumulates measurement counters across one execution:
    ``checkpoints`` committed, ``restarts`` that replayed, and
    ``cycles_replayed`` in total.
    """

    def __init__(self, interval: int, cost: int = 1) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        self.interval = interval
        self.cost = cost
        self.checkpoints = 0
        self.restarts = 0
        self.cycles_replayed = 0

    def reset(self) -> None:
        self.checkpoints = 0
        self.restarts = 0
        self.cycles_replayed = 0

    def wrap(self, factory):
        """Wrap a program factory with checkpoint/replay semantics."""
        if self.interval == 0:
            return factory
        interval = self.interval
        cost = self.cost
        states: Dict[int, dict] = {}
        policy = self

        def wrapped(pid: int):
            state = states.get(pid)
            if state is None:
                state = states[pid] = {"log": [], "mark": 0, "spawned": False}

            def run():
                inner = factory(pid)
                log = state["log"]
                mark = state["mark"]
                del log[mark:]  # ephemeral state since the checkpoint
                try:
                    cycle = next(inner)
                    if state["spawned"] and mark:
                        policy.restarts += 1
                        policy.cycles_replayed += mark
                    state["spawned"] = True
                    for values in log:
                        cycle = inner.send(values)
                    since = 0
                    while True:
                        values = yield cycle
                        log.append(values)
                        since += 1
                        if since >= interval:
                            for _ in range(cost):
                                yield noop_cycle("ppm:checkpoint")
                            state["mark"] = len(log)
                            policy.checkpoints += 1
                            since = 0
                        cycle = inner.send(values)
                except StopIteration:
                    return

            return run()

        return wrapped


@dataclass
class PersistentResult:
    """Outcome of a persistent robust execution."""

    program: str
    width: int
    p: int
    generations: int
    ledger: RunLedger
    memory: List[int] = field(default_factory=list)
    solved: bool = False
    phase_ticks: Dict[int, int] = field(default_factory=dict)

    @property
    def total_work(self) -> int:
        return self.ledger.completed_work

    @property
    def total_pattern_size(self) -> int:
        return self.ledger.pattern_size


class PersistentSimulator:
    """Runs a whole simulated program as one generational machine run."""

    def __init__(
        self,
        p: int,
        adversary: Optional[object] = None,
        policy: Optional[WritePolicy] = None,
        max_ticks: int = 5_000_000,
        checkpoint: Optional[CheckpointPolicy] = None,
    ) -> None:
        if p <= 0:
            raise ValueError(f"simulator needs p > 0, got {p}")
        self.p = p
        self.adversary = adversary
        self.policy = policy
        self.max_ticks = max_ticks
        self.checkpoint = checkpoint

    def execute(
        self, program: SimProgram, initial_memory: Optional[List[int]] = None
    ) -> PersistentResult:
        program.validate()
        simulated = list(initial_memory or [])
        if len(simulated) > program.memory_size:
            raise ValueError(
                f"initial memory ({len(simulated)} cells) exceeds the "
                f"program's memory size {program.memory_size}"
            )
        simulated += [0] * (program.memory_size - len(simulated))

        width = program.width
        n_tasks = next_power_of_two(width)
        steps = [
            step for step in program.steps
            if any(step.write_addresses(i) for i in range(width))
        ]
        slot_counts = [
            max(len(step.write_addresses(i)) for i in range(width))
            for step in steps
        ]
        max_slots = max(slot_counts, default=0)
        if max_slots == 0:
            return PersistentResult(
                program=program.name, width=width, p=self.p,
                generations=0, ledger=RunLedger(),
                memory=simulated, solved=True,
            )

        # Address plan: the generational layout first, then staging and
        # the simulated memory.  The layout depends only on (n, p, number
        # of generations), so plan it with placeholder task sets and
        # build the real phases against the resulting bases.
        generations = 2 * len(steps)
        placeholder = GenerationalX(
            [CycleFactoryTasks(0, lambda element, pid: [])] * generations
        )
        staging_base = placeholder.build_layout(n_tasks, self.p).size
        sim_base = staging_base + width * max_slots
        total_size = sim_base + len(simulated)

        phase_tasks = []
        for step, slots in zip(steps, slot_counts):
            phase_tasks.append(
                CycleFactoryTasks(
                    slots,
                    _compute_task_factory(step, slots, width, staging_base,
                                          sim_base),
                )
            )
            phase_tasks.append(
                CycleFactoryTasks(
                    slots,
                    _commit_task_factory(step, slots, width, staging_base,
                                         sim_base),
                )
            )

        algorithm = GenerationalX(phase_tasks)
        layout = algorithm.build_layout(n_tasks, self.p)
        memory = SharedMemory(total_size)
        algorithm.initialize_memory(memory, layout)
        memory.load(simulated, sim_base)

        clock = _FlagClock(layout)
        members = [clock]
        if self.adversary is not None:
            if hasattr(self.adversary, "reset"):
                self.adversary.reset()
            members.append(self.adversary)
        machine = Machine(
            num_processors=self.p,
            memory=memory,
            policy=self.policy,
            adversary=UnionAdversary(members),
            context={
                "layout": layout,
                "algorithm": algorithm.name,
                "program": program.name,
            },
        )
        program_factory = algorithm.program(layout)
        if self.checkpoint is not None:
            self.checkpoint.reset()
            program_factory = self.checkpoint.wrap(program_factory)
        machine.load_program(program_factory)
        ledger = machine.run(
            until=done_flags_predicate(layout),
            max_ticks=self.max_ticks,
            raise_on_limit=False,
        )
        reader = MemoryReader(memory)
        # The run stops the moment the final flag rises, one tick before
        # the clock would have observed it — backfill from memory.
        for generation in range(1, layout.generations + 1):
            if generation not in clock.raised_at and reader.read(
                layout.flag_address(generation)
            ):
                clock.raised_at[generation] = ledger.ticks
        return PersistentResult(
            program=program.name,
            width=width,
            p=self.p,
            generations=layout.generations,
            ledger=ledger,
            memory=reader.region(sim_base, len(simulated)),
            solved=ledger.goal_reached,
            phase_ticks=dict(clock.raised_at),
        )
