"""Simulated N-processor PRAM programs.

A :class:`SimStep` describes one synchronous step of the *simulated*
machine: which simulated-memory cells each simulated processor reads,
which cells it writes (addresses must be data-independent — the standard
fetch/decode/execute decomposition of Section 4.3), and the values it
writes as a pure function of the values read.

Read addresses may chain (a later address computed from earlier values
— e.g. pointer jumping reads ``rank[next[i]]``); all reads observe the
previous step's memory, which the two-phase executor guarantees.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, Union

#: A read request: a fixed simulated address, or a function of the
#: values read so far returning the next simulated address (None skips).
SimReadSpec = Union[int, Callable[[Tuple[int, ...]], Union[int, None]]]


class SimStep:
    """One synchronous step of the simulated PRAM."""

    #: Free-form label shown in traces.
    label = "step"

    def read_addresses(self, processor: int) -> Tuple[SimReadSpec, ...]:
        """Simulated cells processor ``processor`` reads (≤ 4)."""
        return ()

    def write_addresses(self, processor: int) -> Tuple[int, ...]:
        """Simulated cells it writes — data-independent addresses."""
        return ()

    def compute(self, processor: int, values: Tuple[int, ...]) -> Tuple[int, ...]:
        """Values written, aligned with :meth:`write_addresses`."""
        return ()


class FunctionStep(SimStep):
    """A step assembled from plain callables (handy for tests/examples)."""

    def __init__(
        self,
        reads: Callable[[int], Sequence[SimReadSpec]],
        writes: Callable[[int], Sequence[int]],
        compute: Callable[[int, Tuple[int, ...]], Sequence[int]],
        label: str = "step",
    ) -> None:
        self._reads = reads
        self._writes = writes
        self._compute = compute
        self.label = label

    def read_addresses(self, processor: int) -> Tuple[SimReadSpec, ...]:
        return tuple(self._reads(processor))

    def write_addresses(self, processor: int) -> Tuple[int, ...]:
        return tuple(self._writes(processor))

    def compute(self, processor: int, values: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(self._compute(processor, values))


class SimProgram:
    """A simulated PRAM program: width, memory size, and its steps."""

    def __init__(
        self,
        width: int,
        memory_size: int,
        steps: Sequence[SimStep],
        name: str = "program",
    ) -> None:
        if width <= 0:
            raise ValueError(f"program width must be positive, got {width}")
        if memory_size <= 0:
            raise ValueError(
                f"program memory size must be positive, got {memory_size}"
            )
        self.width = width
        self.memory_size = memory_size
        self.steps: List[SimStep] = list(steps)
        self.name = name

    def __len__(self) -> int:
        return len(self.steps)

    def validate(self) -> None:
        """Static checks: read/write budgets and address ranges."""
        for index, step in enumerate(self.steps):
            for processor in range(self.width):
                reads = step.read_addresses(processor)
                if len(reads) > 4:
                    raise ValueError(
                        f"{self.name} step {index} ({step.label}): simulated "
                        f"processor {processor} reads {len(reads)} cells; "
                        f"the update-cycle budget allows 4"
                    )
                for spec in reads:
                    if isinstance(spec, int) and not (
                        0 <= spec < self.memory_size
                    ):
                        raise ValueError(
                            f"{self.name} step {index}: read address {spec} "
                            f"out of simulated memory [0, {self.memory_size})"
                        )
                writes = step.write_addresses(processor)
                for address in writes:
                    if not 0 <= address < self.memory_size:
                        raise ValueError(
                            f"{self.name} step {index}: write address "
                            f"{address} out of simulated memory "
                            f"[0, {self.memory_size})"
                        )
