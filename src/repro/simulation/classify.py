"""PRAM-variant classification of simulated programs.

Theorem 4.1 distinguishes source models: "EREW, CREW, and WEAK and
COMMON CRCW PRAM algorithms are simulated on fail-stop COMMON CRCW
PRAMs; ARBITRARY and STRONG CRCW PRAMs are simulated on fail-stop CRCW
PRAMs of the same type" (and PRIORITY cannot be simulated directly,
Remark 4).

A :class:`SimProgram` is data: its concurrency class depends on the
input.  :func:`classify_program` dry-runs the program on the ideal
synchronous PRAM for a given input and reports the weakest classical
model consistent with the observed access patterns:

* ``EREW`` — no cell is read or written by two processors in one step;
* ``CREW`` — concurrent reads occur, writes stay exclusive;
* ``COMMON`` — concurrent writes occur but all writers agree;
* ``ARBITRARY`` — concurrent writers disagree (the robust executor's
  commit order then picks a winner, which is exactly ARBITRARY
  semantics; programs needing STRONG or PRIORITY resolution are not
  faithfully executable and should be rejected by the caller).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from repro.simulation.step import SimProgram

CLASSES = ("EREW", "CREW", "COMMON", "ARBITRARY")


def classify_program(
    program: SimProgram, initial_memory: Sequence[int]
) -> str:
    """The weakest PRAM class consistent with this program on this input."""
    memory: List[int] = list(initial_memory)
    memory += [0] * (program.memory_size - len(memory))
    rank = 0  # index into CLASSES
    for step in program.steps:
        read_counts: Dict[int, int] = defaultdict(int)
        writes: Dict[int, List[int]] = defaultdict(list)
        for processor in range(program.width):
            values: List[int] = []
            for spec in step.read_addresses(processor):
                address = spec(tuple(values)) if callable(spec) else spec
                if address is None:
                    values.append(0)
                    continue
                read_counts[address] += 1
                values.append(memory[address])
            write_addresses = step.write_addresses(processor)
            if not write_addresses:
                continue  # inactive processor this step: no compute
            outputs = step.compute(processor, tuple(values))
            for address, value in zip(write_addresses, outputs):
                writes[address].append(value)
        concurrent_reads = any(count > 1 for count in read_counts.values())
        concurrent_writes = any(len(vals) > 1 for vals in writes.values())
        disagreeing = any(
            len(set(vals)) > 1 for vals in writes.values()
        )
        if disagreeing:
            rank = max(rank, 3)
        elif concurrent_writes:
            rank = max(rank, 2)
        elif concurrent_reads:
            rank = max(rank, 1)
        # Apply the step (lowest processor wins on ties; values agree in
        # every class below ARBITRARY anyway).
        for address, vals in writes.items():
            memory[address] = vals[0]
    return CLASSES[rank]


def simulation_is_deterministic(program_class: str) -> bool:
    """Whether the robust executor reproduces one canonical outcome.

    EREW/CREW/COMMON programs have a unique synchronous semantics; the
    executor realizes it exactly for any failure pattern.  ARBITRARY
    programs are executed with *some* winner per conflicted cell (legal
    for the ARBITRARY model) but the winner may depend on the failure
    pattern.
    """
    return program_class in ("EREW", "CREW", "COMMON")
