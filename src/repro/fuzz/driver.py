"""The fuzz driver: generated programs x lanes x adversaries x passes.

Each iteration draws a program, an initial memory, and an adversary
from the named-adversary registry (all pure functions of the fuzz
seed), computes the ideal fault-free oracle, then executes the program
through :class:`~repro.simulation.executor.RobustSimulator` on every
machine lane of the registry in :mod:`repro.pram.lanes` (``fast``,
``noff``, ``nokernel``, ``vec``, ``auto``, ``reference`` — the ``vec``
lane is skipped with a note when the optional numpy extra is absent,
``auto`` degrades to the scalar compiled lane instead, and their
robust phases exercise the vector lane's scalar-fallback path, since
the phase task sets are never vectorizable),

under the same three-pass bit-identical convergence contract as
``repro chaos``: every (iteration, lane) memory must equal the oracle
*and* reproduce bit-identically across all passes.  A
:class:`~repro.experiments.chaos.ChaosPolicy` additionally injects
inline crashes, stalls and transient errors around executions (the
driver retries, and the retried run must still converge) — the
harness-level faults of PR 5 layered on top of the model-level
adversaries.

On mismatch the driver delta-debugs the program to a minimal
reproduction (:mod:`repro.fuzz.shrinker`) and emits a replayable JSON
fixture (:mod:`repro.fuzz.fixtures`).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import AlgorithmVX
from repro.experiments.chaos import ChaosCrash, ChaosError, ChaosPolicy
from repro.experiments.factories import build_named_adversary
from repro.faults import registry as adversary_registry
from repro.fuzz.generator import (
    DEFAULT_CONFIG,
    GeneratedProgram,
    GeneratorConfig,
    generate_initial_memory,
    generate_program,
    int_draw,
    unit_draw,
)
from repro.fuzz.oracle import ideal_run
from repro.fuzz.shrinker import shrink
from repro.pram.lanes import LANES, lane_available
from repro.simulation.executor import RobustSimulator

#: Adversaries the fuzzer draws from — the registry entries marked
#: ``fuzzable``: layout-agnostic and terminating for the simulator's
#: V+X engine (``stalker``/``acc-stalker``/``starver`` are bespoke to
#: one algorithm's layout, and the ``static-mem`` entries poison cells
#: that generated programs have no routing discipline for).  Kept in
#: registration order so a new registry entry extends the draw table
#: instead of permuting existing draws.
ADVERSARY_DRAWS: Tuple[str, ...] = adversary_registry.fuzz_names()


@dataclass(frozen=True)
class AdversarySpec:
    """A replayable adversary draw (registry name + parameters)."""

    name: str
    fail: float = 0.1
    restart_prob: float = 0.3
    seed: int = 0

    def build(self):
        return build_named_adversary(
            self.name, self.fail, self.restart_prob, self.seed
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "fail": self.fail,
            "restart_prob": self.restart_prob,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "AdversarySpec":
        return cls(
            name=str(data["name"]),
            fail=float(data["fail"]),
            restart_prob=float(data["restart_prob"]),
            seed=int(data["seed"]),
        )


def draw_adversary_spec(seed: int, iteration: int) -> AdversarySpec:
    """The adversary for ``(seed, iteration)`` — hash-derived, stable."""
    name = ADVERSARY_DRAWS[
        int_draw(seed, 0, len(ADVERSARY_DRAWS) - 1, "adv", iteration)
    ]
    fail = 0.05 + 0.25 * unit_draw(seed, "adv-fail", iteration)
    restart_prob = 0.2 + 0.4 * unit_draw(seed, "adv-restart", iteration)
    adversary_seed = int_draw(seed, 0, 2**31 - 1, "adv-seed", iteration)
    return AdversarySpec(
        name=name, fail=round(fail, 6), restart_prob=round(restart_prob, 6),
        seed=adversary_seed,
    )


def execute_lane(
    program: GeneratedProgram,
    initial: Sequence[int],
    lane: str,
    adversary_spec: AdversarySpec,
    p: int,
    max_ticks_per_phase: int = 300_000,
):
    """One robust execution of ``program`` on ``lane``; returns the
    SimulationResult."""
    simulator = RobustSimulator(
        p=p,
        algorithm=AlgorithmVX(),
        adversary=adversary_spec.build(),
        max_ticks_per_phase=max_ticks_per_phase,
        **LANES[lane].solver_kwargs(),
    )
    return simulator.execute(program.to_sim_program(), list(initial))


def _memory_digest(memory: Sequence[int]) -> str:
    return hashlib.sha256(
        json.dumps(list(memory)).encode("utf-8")
    ).hexdigest()


@dataclass
class FuzzFailure:
    """One detected divergence, before and after shrinking."""

    kind: str  # "mismatch" | "unsolved" | "nonconverged"
    iteration: int
    lane: str
    pass_index: int
    adversary: AdversarySpec
    p: int
    program: GeneratedProgram
    initial: List[int]
    expected: List[int]
    observed: Optional[List[int]]
    shrunk_program: Optional[GeneratedProgram] = None
    shrunk_initial: Optional[List[int]] = None
    #: Every lane the detecting run covered (registry order); replays
    #: re-check the fixture on all of them, not just the failing one.
    run_lanes: Tuple[str, ...] = ()

    def describe(self) -> str:
        size = len(self.program.steps)
        shrunk = (
            f", shrunk to {len(self.shrunk_program.steps)} step(s)"
            if self.shrunk_program is not None else ""
        )
        return (
            f"{self.kind} at iteration {self.iteration}, lane {self.lane}, "
            f"pass {self.pass_index}: {self.program.name} "
            f"({size} step(s), width {self.program.width}) under "
            f"{self.adversary.name}[seed={self.adversary.seed}] "
            f"on p={self.p}{shrunk}"
        )


@dataclass
class FuzzOutcome:
    """A fuzz run's verdict and accounting."""

    seed: int
    iterations: int
    passes: int
    lanes: Tuple[str, ...]
    converged: bool
    #: Requested lanes dropped because this environment cannot run them
    #: (today: ``vec`` without the optional numpy extra).
    skipped_lanes: Tuple[str, ...] = ()
    executions: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    adversary_histogram: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)
    fixture_paths: List[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "CONVERGED" if self.converged else "DIVERGED"
        injected = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.injected.items())
        ) or "none"
        lines = [
            f"{verdict}: seed {self.seed}, {self.iterations} program(s) x "
            f"{len(self.lanes)} lane(s) x {self.passes} pass(es) = "
            f"{self.executions} robust executions, chaos injected {injected}",
        ]
        if self.skipped_lanes:
            lines.append(
                f"  skipped lane(s) {', '.join(self.skipped_lanes)}: "
                "the optional numpy extra is not installed"
            )
        lines.extend(
            f"  FAILURE: {failure.describe()}" for failure in self.failures
        )
        lines.extend(
            f"  fixture: {path}" for path in self.fixture_paths
        )
        return "\n".join(lines)


def _perturb_inline(policy: ChaosPolicy, point: int, attempt: int) -> None:
    """Act on the chaos plan like :meth:`ChaosPolicy.perturb`, but
    always inline: crashes surface as :class:`ChaosCrash` even inside a
    subprocess.  The fuzz driver's retry loop is the recovery path
    under test — the process tree (a remote worker's sandbox, say) must
    not die for it."""
    kind = policy.plan(point, attempt)
    if kind is None:
        return
    if kind in ("crash", "worker-kill"):
        raise ChaosCrash(
            f"chaos: injected crash (point {point}, attempt {attempt})"
        )
    if kind == "stall":
        deadline = time.monotonic() + policy.stall_s
        while time.monotonic() < deadline:
            pass
        return
    raise ChaosError(
        f"chaos: injected transient error "
        f"(point {point}, attempt {attempt})"
    )


@dataclass
class FuzzIterationResult:
    """One iteration's accounting, mergeable into a FuzzOutcome."""

    iteration: int
    executions: int
    injected: Dict[str, int]
    adversary: str
    failure: Optional[FuzzFailure]


def run_fuzz_iteration(
    seed: int,
    iteration: int,
    passes: int,
    lanes: Sequence[str],
    config: GeneratorConfig = DEFAULT_CONFIG,
    chaos: bool = True,
    chaos_retries: int = 4,
) -> FuzzIterationResult:
    """One complete fuzz iteration: draw, oracle, lanes x passes.

    Pure function of its arguments (every draw is hash-derived), so
    iterations can run locally in a loop or fan out across a remote
    worker fleet and produce identical results.  Shrinking and fixture
    emission stay with the caller.
    """
    program = generate_program(
        int_draw(seed, 0, 2**31 - 1, "program", iteration), config,
    )
    initial = generate_initial_memory(
        int_draw(seed, 0, 2**31 - 1, "initial", iteration),
        program.memory_size, config,
    )
    adversary_spec = draw_adversary_spec(seed, iteration)
    p = int_draw(seed, 1, 4, "p", iteration)
    expected = ideal_run(program, initial)
    policy = ChaosPolicy(
        seed=int_draw(seed, 0, 2**31 - 1, "chaos"),
        crash=0.02, stall=0.01, error=0.02, stall_s=0.01,
    ) if chaos else None

    executions = 0
    injected: Dict[str, int] = {}
    failure: Optional[FuzzFailure] = None
    digests: Dict[str, str] = {}
    for pass_index in range(passes):
        if failure is not None:
            break
        for lane in lanes:
            result = None
            point = (iteration * passes + pass_index) * len(LANES) \
                + list(LANES).index(lane)
            for attempt in range(1, chaos_retries + 2):
                try:
                    if policy is not None:
                        _perturb_inline(policy, point, attempt)
                    result = execute_lane(
                        program, initial, lane, adversary_spec, p
                    )
                    break
                except (ChaosCrash, ChaosError) as exc:
                    kind = ("crash" if isinstance(exc, ChaosCrash)
                            else "error")
                    injected[kind] = injected.get(kind, 0) + 1
            if result is None:  # pragma: no cover - retries exhausted
                raise RuntimeError(
                    f"chaos exhausted {chaos_retries} retries at "
                    f"iteration {iteration}, lane {lane}"
                )
            executions += 1

            failure_kind = None
            if not result.solved:
                failure_kind = "unsolved"
            elif result.memory != expected:
                failure_kind = "mismatch"
            else:
                digest = _memory_digest(result.memory)
                prior = digests.setdefault(lane, digest)
                if digest != prior:  # pragma: no cover - needs a bug
                    failure_kind = "nonconverged"
            if failure_kind is None:
                continue

            failure = FuzzFailure(
                kind=failure_kind,
                iteration=iteration,
                lane=lane,
                pass_index=pass_index,
                adversary=adversary_spec,
                p=p,
                program=program,
                initial=list(initial),
                expected=list(expected),
                observed=list(result.memory),
                run_lanes=tuple(lanes),
            )
            break  # stop re-running a known-bad (iteration, lane)
    return FuzzIterationResult(
        iteration=iteration,
        executions=executions,
        injected=injected,
        adversary=adversary_spec.name,
        failure=failure,
    )


@dataclass(frozen=True)
class FuzzIterationTask:
    """A fuzz iteration shaped like a sweep point for the remote
    backend: ``sweep``/``index``/``cache_key()`` for scheduling and a
    ``to_wire_job`` whose ``run`` executes the iteration in the worker
    sandbox.  ``cache_key`` is ``None`` on purpose — fuzz results do
    not land in the shared sweep store."""

    seed: int
    iteration: int
    passes: int
    lanes: Tuple[str, ...]
    config: GeneratorConfig
    chaos: bool
    chaos_retries: int

    @property
    def sweep(self) -> str:
        return f"fuzz/{self.seed}"

    @property
    def index(self) -> int:
        return self.iteration

    def cache_key(self) -> Optional[str]:
        return None

    def to_wire_job(self) -> "FuzzIterationTask":
        return self

    def run(self, timeout=None, chaos=None, attempt=1):
        started = time.perf_counter()
        result = run_fuzz_iteration(
            seed=self.seed, iteration=self.iteration, passes=self.passes,
            lanes=self.lanes, config=self.config, chaos=self.chaos,
            chaos_retries=self.chaos_retries,
        )
        return "ok", result, time.perf_counter() - started


def _failure_predicate(
    lane: str, adversary_spec: AdversarySpec, p: int
) -> Callable[[GeneratedProgram, List[int]], bool]:
    """Does a candidate still diverge from its oracle on this lane?"""

    def is_failing(program: GeneratedProgram, initial: List[int]) -> bool:
        try:
            expected = ideal_run(program, initial)
            result = execute_lane(program, initial, lane, adversary_spec, p)
        except ValueError:
            return False
        return not result.solved or result.memory != expected

    return is_failing


def run_fuzz(
    seed: int = 0,
    iterations: int = 100,
    passes: int = 3,
    lanes: Sequence[str] = tuple(LANES),
    config: GeneratorConfig = DEFAULT_CONFIG,
    chaos: bool = True,
    chaos_retries: int = 4,
    fixture_dir: Optional[str] = None,
    max_fixtures: int = 5,
    shrink_budget: int = 250,
    backend: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzOutcome:
    """The fuzz soak: seeded programs, registry lanes, three passes.

    Convergence means every (iteration, lane, pass) execution solved
    and ended bit-identical to the ideal fault-free oracle — which also
    makes every pass bit-identical to every other, the ``repro chaos``
    contract.  Pass-to-pass divergence with a correct oracle match is
    impossible, but is still checked independently (``nonconverged``)
    so a nondeterminism bug cannot hide behind a coincidentally-correct
    final memory digest.

    ``backend="remote:host:port"`` fans complete iterations out across
    a ``repro serve`` daemon's worker fleet (each iteration is a pure
    function of the seed, so results are identical to a local run and
    are merged in iteration order); ``None``/``"serial"`` runs the loop
    in-process.  Shrinking and fixture emission always happen locally.
    """
    requested = list(lanes)
    unknown = [lane for lane in requested if lane not in LANES]
    if unknown:
        raise ValueError(f"unknown lane(s) {unknown}; known: {list(LANES)}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    if backend not in (None, "serial") \
            and not str(backend).startswith("remote:"):
        raise ValueError(
            f"fuzz backend must be 'serial' or 'remote:host:port', got "
            f"{backend!r} (iterations are not sweep points; the local "
            f"process pool does not apply)"
        )

    def emit(line: str) -> None:
        if log is not None:
            log(line)

    active = [lane for lane in requested if lane_available(lane)]
    skipped = tuple(lane for lane in requested if lane not in active)
    if not active:
        raise ValueError(
            f"no runnable lanes left from {requested}: "
            f"{list(skipped)} need the optional numpy extra "
            "(pip install .[numpy])"
        )
    for lane in skipped:
        emit(
            f"skipping lane {lane!r}: the optional numpy extra is not "
            "installed"
        )

    outcome = FuzzOutcome(
        seed=seed, iterations=iterations, passes=passes,
        lanes=tuple(active), converged=True, skipped_lanes=skipped,
    )
    shrinks_left = max_fixtures

    def absorb(result: FuzzIterationResult) -> None:
        nonlocal shrinks_left
        outcome.executions += result.executions
        for kind, count in result.injected.items():
            outcome.injected[kind] = outcome.injected.get(kind, 0) + count
        outcome.adversary_histogram[result.adversary] = (
            outcome.adversary_histogram.get(result.adversary, 0) + 1
        )
        failure = result.failure
        if failure is None:
            return
        outcome.converged = False
        outcome.failures.append(failure)
        emit(f"FAILURE: {failure.describe()}")
        if shrinks_left > 0:
            shrinks_left -= 1
            predicate = _failure_predicate(
                failure.lane, failure.adversary, failure.p
            )
            if predicate(failure.program, list(failure.initial)):
                shrunk, shrunk_initial = shrink(
                    failure.program, failure.initial, predicate,
                    max_evaluations=shrink_budget,
                )
                failure.shrunk_program = shrunk
                failure.shrunk_initial = shrunk_initial
                emit(
                    f"shrunk to {len(shrunk.steps)} step(s), "
                    f"width {shrunk.width}"
                )
            if fixture_dir is not None:
                from repro.fuzz.fixtures import dump_fixture

                path = dump_fixture(fixture_dir, failure)
                outcome.fixture_paths.append(str(path))
                emit(f"fixture written: {path}")

    if backend in (None, "serial"):
        for iteration in range(iterations):
            absorb(run_fuzz_iteration(
                seed, iteration, passes, tuple(active), config,
                chaos, chaos_retries,
            ))
        return outcome

    # Remote fan-out: one task per iteration, results merged in
    # iteration order so the outcome (and any fixtures) are identical
    # to a local run regardless of fleet scheduling.
    from repro.experiments.backends.remote import RemoteBackend

    client = RemoteBackend(str(backend), timeout=None, chaos=None,
                           resume=False)
    by_iteration: Dict[int, FuzzIterationResult] = {}
    attempts: Dict[int, int] = {}
    try:
        for iteration in range(iterations):
            task = FuzzIterationTask(
                seed=seed, iteration=iteration, passes=passes,
                lanes=tuple(active), config=config, chaos=chaos,
                chaos_retries=chaos_retries,
            )
            attempts[iteration] = 1
            client.submit(task, 1)
        outstanding = iterations
        while outstanding:
            for res in client.collect():
                iteration = res.point.iteration
                if res.status == "ok":
                    by_iteration[iteration] = res.payload
                    outstanding -= 1
                elif attempts[iteration] < 3:
                    # A worker died mid-iteration (fleet-level fault,
                    # not a fuzz finding); re-run the pure function.
                    attempts[iteration] += 1
                    emit(f"iteration {iteration} lost to a worker "
                         f"fault ({res.status}); resubmitting")
                    client.submit(res.point, attempts[iteration])
                else:
                    raise RuntimeError(
                        f"fuzz iteration {iteration} failed remotely "
                        f"after {attempts[iteration]} attempts "
                        f"({res.status}): {res.payload}"
                    )
    finally:
        client.close()
    for iteration in range(iterations):
        absorb(by_iteration[iteration])
    return outcome
