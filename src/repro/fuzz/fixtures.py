"""Replayable JSON fixtures for fuzz failures.

A fixture captures everything needed to re-execute one divergent
(program, initial memory, adversary, lane, p) point: the shrunk
program when the shrinker succeeded (the original otherwise), the
adversary registry draw, and the oracle's expected memory.  Fixtures
land in ``tests/fuzz/fixtures/`` and ``tests/fuzz/test_fixtures.py``
replays every one on every CI run — a failure found once is guarded
forever.

The file name embeds a content hash, so re-finding the same minimal
reproduction is idempotent and two different failures cannot collide.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.fuzz.generator import GeneratedProgram
from repro.fuzz.oracle import ideal_run

#: Schema tag; bump on incompatible layout changes.
FIXTURE_FORMAT = "repro-fuzz-fixture/1"


def fixture_payload(failure) -> Dict[str, object]:
    """The JSON payload for a :class:`~repro.fuzz.driver.FuzzFailure`.

    Prefers the shrunk program/initial when present; the oracle is
    recomputed for whichever pair is stored, so the fixture is
    self-consistent.
    """
    program = failure.shrunk_program or failure.program
    initial = (failure.shrunk_initial
               if failure.shrunk_program is not None else failure.initial)
    return {
        "format": FIXTURE_FORMAT,
        "kind": failure.kind,
        "iteration": failure.iteration,
        "lane": failure.lane,
        # Every lane the detecting run covered (--lanes selection);
        # replays re-check all of them.  Older fixtures lack the key
        # and replay just their failing lane.
        "lanes": list(failure.run_lanes) or [failure.lane],
        "p": failure.p,
        "adversary": failure.adversary.to_json(),
        "program": program.to_json(),
        "initial": list(initial),
        "expected": ideal_run(program, list(initial)),
        "note": failure.describe(),
    }


def dump_fixture(directory, failure) -> pathlib.Path:
    """Write ``failure``'s fixture under ``directory``; return its path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = fixture_payload(failure)
    text = json.dumps(payload, indent=2, sort_keys=True)
    stamp = hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
    path = directory / f"fuzz-{stamp}.json"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def load_fixtures(directory) -> List[Tuple[pathlib.Path, Dict[str, object]]]:
    """All ``fuzz-*.json`` fixtures under ``directory``, sorted by name."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    fixtures = []
    for path in sorted(directory.glob("fuzz-*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("format") != FIXTURE_FORMAT:
            raise ValueError(
                f"{path}: unknown fixture format "
                f"{payload.get('format')!r} (expected {FIXTURE_FORMAT})"
            )
        fixtures.append((path, payload))
    return fixtures


@dataclass
class ReplayResult:
    """Outcome of re-executing a fixture against the current code."""

    ok: bool
    solved: bool
    expected: List[int]
    observed: List[int]
    problems: List[str]
    #: Lanes actually re-executed, and lanes the environment cannot run
    #: (e.g. ``vec`` without the optional numpy extra).
    replayed_lanes: List[str] = field(default_factory=list)
    skipped_lanes: List[str] = field(default_factory=list)


def replay_fixture(payload: Dict[str, object]) -> ReplayResult:
    """Re-execute a fixture point; ok iff the divergence is gone.

    The stored ``expected`` memory is cross-checked against a freshly
    computed oracle first: if opcode semantics drifted since the
    fixture was written, the replay fails loudly instead of silently
    testing the wrong claim.  Every lane the detecting run covered (the
    ``lanes`` key; pre-lane-registry fixtures store only the failing
    ``lane``) is replayed, minus any lane this environment cannot run.
    """
    from repro.fuzz.driver import AdversarySpec, execute_lane
    from repro.pram.lanes import lane_available

    program = GeneratedProgram.from_json(payload["program"])
    initial = [int(value) for value in payload["initial"]]
    problems: List[str] = []
    expected = ideal_run(program, list(initial))
    if expected != list(payload["expected"]):
        problems.append(
            "stored oracle differs from a fresh ideal run — opcode "
            "semantics drifted; regenerate the fixture"
        )
    primary = str(payload["lane"])
    lanes = [str(lane) for lane in payload.get("lanes", [primary])]
    if primary not in lanes:
        lanes.insert(0, primary)
    adversary = AdversarySpec.from_json(payload["adversary"])
    p = int(payload["p"])
    replayed: List[str] = []
    skipped: List[str] = []
    observed: List[int] = []
    solved = True
    for lane in lanes:
        if not lane_available(lane):
            skipped.append(lane)
            continue
        result = execute_lane(program, initial, lane, adversary, p)
        replayed.append(lane)
        if lane == primary or not observed:
            observed = list(result.memory)
        if not result.solved:
            solved = False
            problems.append(
                f"lane {lane!r}: robust execution did not solve the instance"
            )
        if result.memory != expected:
            problems.append(
                f"lane {lane!r}: robust execution still diverges from "
                "the oracle"
            )
    return ReplayResult(
        ok=not problems,
        solved=solved,
        expected=expected,
        observed=observed,
        problems=problems,
        replayed_lanes=replayed,
        skipped_lanes=skipped,
    )
