"""Delta-debugging shrinker for failing fuzz programs.

Given a program + initial memory and a predicate "still fails", the
shrinker greedily applies reduction passes until a fixpoint (or the
evaluation budget runs out), in the classic ddmin spirit but
specialized to the action-table representation:

1. **drop step chunks** — halves first, then single steps;
2. **neutralize processors** — replace a processor's action with the
   empty action (no reads, no writes) one at a time;
3. **drop reads** — remove read addresses one at a time;
4. **drop writes** — remove a processor's second write slot;
5. **simplify values** — zero initial-memory cells and constants.

Every candidate is validated before evaluation (dropping a processor's
writes can never break exclusivity, so candidates are valid by
construction — validation is a belt-and-braces guard), and the
predicate is re-checked on the *reduced* program, so the result is a
genuine minimal reproduction under the same adversary/lane.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.fuzz.generator import GeneratedProgram, ProcessorAction

#: Predicate: does (program, initial) still reproduce the failure?
FailurePredicate = Callable[[GeneratedProgram, List[int]], bool]


def _with_steps(
    program: GeneratedProgram,
    steps: Sequence[Tuple[ProcessorAction, ...]],
) -> GeneratedProgram:
    return GeneratedProgram(
        width=program.width,
        memory_size=program.memory_size,
        steps=tuple(steps),
        name=program.name.rstrip("~") + "~",
    )


def _is_valid(program: GeneratedProgram) -> bool:
    try:
        program.validate()
    except ValueError:
        return False
    return True


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _try(
    candidate: GeneratedProgram,
    initial: List[int],
    is_failing: FailurePredicate,
    budget: _Budget,
) -> bool:
    if not budget.take():
        return False
    return _is_valid(candidate) and is_failing(candidate, initial)


def _shrink_steps(
    program: GeneratedProgram,
    initial: List[int],
    is_failing: FailurePredicate,
    budget: _Budget,
) -> GeneratedProgram:
    """Remove contiguous chunks of steps, largest chunks first."""
    steps = list(program.steps)
    chunk = max(1, len(steps) // 2)
    while chunk >= 1:
        start = 0
        while start < len(steps) and len(steps) > 1:
            candidate_steps = steps[:start] + steps[start + chunk:]
            if not candidate_steps:
                start += 1
                continue
            candidate = _with_steps(program, candidate_steps)
            if _try(candidate, initial, is_failing, budget):
                steps = candidate_steps
            else:
                start += 1
        chunk //= 2
    return _with_steps(program, steps)


def _shrink_actions(
    program: GeneratedProgram,
    initial: List[int],
    is_failing: FailurePredicate,
    budget: _Budget,
) -> GeneratedProgram:
    """Neutralize whole actions, then drop individual reads/writes."""
    steps = [list(actions) for actions in program.steps]
    empty = ProcessorAction()
    for s, actions in enumerate(steps):
        for i, action in enumerate(actions):
            if action == empty:
                continue
            actions[i] = empty
            candidate = _with_steps(program, [tuple(a) for a in steps])
            if not _try(candidate, initial, is_failing, budget):
                actions[i] = action
    for s, actions in enumerate(steps):
        for i in range(len(actions)):
            action = actions[i]
            for k in range(len(action.reads) - 1, -1, -1):
                slimmer = ProcessorAction(
                    reads=action.reads[:k] + action.reads[k + 1:],
                    writes=action.writes,
                    op=action.op,
                    constant=action.constant,
                )
                actions[i] = slimmer
                candidate = _with_steps(program, [tuple(a) for a in steps])
                if _try(candidate, initial, is_failing, budget):
                    action = slimmer
                else:
                    actions[i] = action
            if len(action.writes) == 2:
                slimmer = ProcessorAction(
                    reads=action.reads,
                    writes=action.writes[:1],
                    op=action.op,
                    constant=action.constant,
                )
                actions[i] = slimmer
                candidate = _with_steps(program, [tuple(a) for a in steps])
                if not _try(candidate, initial, is_failing, budget):
                    actions[i] = action
    return _with_steps(program, [tuple(a) for a in steps])


def _shrink_values(
    program: GeneratedProgram,
    initial: List[int],
    is_failing: FailurePredicate,
    budget: _Budget,
) -> Tuple[GeneratedProgram, List[int]]:
    """Zero initial cells and action constants where the failure
    survives."""
    memory = list(initial)
    for address in range(len(memory)):
        if memory[address] == 0:
            continue
        saved, memory[address] = memory[address], 0
        if not _try(program, memory, is_failing, budget):
            memory[address] = saved
    steps = [list(actions) for actions in program.steps]
    for actions in steps:
        for i, action in enumerate(actions):
            if action.constant == 0:
                continue
            actions[i] = ProcessorAction(
                reads=action.reads, writes=action.writes,
                op=action.op, constant=0,
            )
            candidate = _with_steps(program, [tuple(a) for a in steps])
            if not _try(candidate, memory, is_failing, budget):
                actions[i] = action
    return _with_steps(program, [tuple(a) for a in steps]), memory


def shrink(
    program: GeneratedProgram,
    initial: Sequence[int],
    is_failing: FailurePredicate,
    max_evaluations: int = 400,
    max_rounds: int = 8,
) -> Tuple[GeneratedProgram, List[int]]:
    """Reduce ``(program, initial)`` while ``is_failing`` holds.

    The inputs themselves must satisfy ``is_failing`` (raises
    ``ValueError`` otherwise — a shrinker running on a non-failure
    would "minimize" to noise).  Returns the reduced pair; the original
    is never mutated.
    """
    initial = list(initial)
    if not is_failing(program, initial):
        raise ValueError(
            "shrink() needs a failing input: the predicate rejected the "
            "starting program"
        )
    budget = _Budget(max_evaluations)
    for _round in range(max_rounds):
        before = (program.to_json(), list(initial))
        program = _shrink_steps(program, initial, is_failing, budget)
        program = _shrink_actions(program, initial, is_failing, budget)
        program, initial = _shrink_values(
            program, initial, is_failing, budget
        )
        if (program.to_json(), list(initial)) == before:
            break
        if budget.spent >= budget.limit:
            break
    return program, initial
