"""Robust-execution fuzzing (the Theorem 4.1 correctness backstop).

Theorem 4.1 claims *any* N-processor PRAM program executes robustly on
restartable fail-stop processors.  The curated programs in
:mod:`repro.simulation.programs` witness a handful of points of that
claim; this package scales the witness the way the chaos harness
(:mod:`repro.experiments.chaos`) scaled confidence in the sweep engine:

* :mod:`repro.fuzz.generator` — a seeded generator of bounded
  update-cycle programs (reads <= 4, writes <= 2, exclusive writes,
  acyclic straight-line data dependencies) whose draws are pure
  functions of ``(seed, coordinates)`` via SHA-256, so a pinned seed
  reproduces the same program on every Python version;
* :mod:`repro.fuzz.oracle` — the ideal fault-free synchronous PRAM
  evaluator, the differential ground truth;
* :mod:`repro.fuzz.driver` — runs each generated program through
  :class:`~repro.simulation.executor.RobustSimulator` on all four
  machine lanes (fast / no-fast-forward / no-kernel / reference) under
  randomly drawn adversaries, with inline chaos injection, under the
  same three-pass bit-identical convergence contract as ``repro
  chaos``;
* :mod:`repro.fuzz.shrinker` — delta-debugs a failing program to a
  minimal reproduction;
* :mod:`repro.fuzz.fixtures` — replayable JSON fixtures that
  ``tests/fuzz/test_fixtures.py`` loads forever after.

``python -m repro fuzz --seed N --iterations K`` is the CLI entry.
"""

from repro.fuzz.driver import (
    ADVERSARY_DRAWS,
    LANES,
    FuzzFailure,
    FuzzOutcome,
    draw_adversary_spec,
    run_fuzz,
)
from repro.fuzz.fixtures import (
    FIXTURE_FORMAT,
    dump_fixture,
    load_fixtures,
    replay_fixture,
)
from repro.fuzz.generator import (
    GeneratedProgram,
    GeneratorConfig,
    ProcessorAction,
    generate_initial_memory,
    generate_program,
    unit_draw,
)
from repro.fuzz.oracle import ideal_run
from repro.fuzz.shrinker import shrink

__all__ = [
    "ADVERSARY_DRAWS",
    "FIXTURE_FORMAT",
    "FuzzFailure",
    "FuzzOutcome",
    "GeneratedProgram",
    "GeneratorConfig",
    "LANES",
    "ProcessorAction",
    "draw_adversary_spec",
    "dump_fixture",
    "generate_initial_memory",
    "generate_program",
    "ideal_run",
    "load_fixtures",
    "replay_fixture",
    "run_fuzz",
    "shrink",
    "unit_draw",
]
