"""The ideal fault-free synchronous PRAM — the fuzzer's ground truth.

Theorem 4.1's correctness statement is *semantic transparency*: for any
failure pattern, the robust execution of a program must end with the
exact memory the ideal synchronous PRAM produces.  This evaluator is
that ideal machine, written with none of the Write-All machinery: a
plain two-phase sweep per step (gather all reads against the previous
memory, then install all writes).  It shares opcode semantics with the
generator (:func:`repro.fuzz.generator.apply_op`), so the differential
check isolates the execution machinery — phases, staging, commit,
failure recovery — not the arithmetic.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.fuzz.generator import GeneratedProgram


def ideal_run(
    program: GeneratedProgram, initial: Sequence[int]
) -> List[int]:
    """Final memory of the fault-free synchronous execution.

    Raises ``ValueError`` on the inputs the generator never produces
    (oversized initial memory, conflicting writes) so a hand-edited
    fixture fails loudly instead of returning a bogus oracle.
    """
    if len(initial) > program.memory_size:
        raise ValueError(
            f"initial memory ({len(initial)} cells) exceeds the "
            f"program's memory size {program.memory_size}"
        )
    memory = list(initial) + [0] * (program.memory_size - len(initial))
    for index, actions in enumerate(program.steps):
        writes = {}
        for processor, action in enumerate(actions):
            values = tuple(memory[address] for address in action.reads)
            for address, value in zip(action.writes, action.outputs(values)):
                if address in writes:
                    raise ValueError(
                        f"step {index}: cell {address} written twice; the "
                        f"exclusive-write oracle is undefined"
                    )
                writes[address] = value
        for address, value in writes.items():
            memory[address] = value
    return memory
