"""Seeded random-program generator for the Theorem 4.1 fuzzer.

Programs are *declarative*: a :class:`GeneratedProgram` is a table of
per-processor :class:`ProcessorAction` rows (read addresses, write
addresses, an opcode and a constant), not closures.  That buys three
properties the fuzzer needs:

* **JSON round-trip** — a failing program serializes into a replayable
  fixture (see :mod:`repro.fuzz.fixtures`) byte-for-byte;
* **shrinkability** — the delta-debugger edits the table, not code;
* **version-stable determinism** — every draw is a pure SHA-256
  function of ``(seed, coordinates)``, the same construction as
  :class:`repro.experiments.chaos.ChaosPolicy`.  ``random.Random``
  method behavior has shifted across CPython releases; hashes have not,
  so a CI failure on Python 3.12 replays identically on 3.9.

Generated programs respect the model's update-cycle budget (reads <= 4,
writes <= 2 per simulated processor per step) and keep write sets
disjoint across processors within a step (exclusive writes), so the
ideal synchronous PRAM oracle is deterministic and the robust executor
must reproduce it *exactly* for every failure pattern.  Data
dependencies are acyclic by construction: programs are straight-line,
and within a step every read observes the previous step's memory (the
two-phase executor's synchronous semantics), so the step's dependence
graph is bipartite reads -> writes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.simulation.step import SimProgram, SimStep

#: Opcodes a generated action may carry.  Semantics live in
#: :func:`apply_op` — shared by the executor-facing SimStep *and* the
#: ideal oracle, so the two cannot drift apart on op meaning; what is
#: being differentially tested is the robust execution machinery, not
#: the arithmetic.
OPS: Tuple[str, ...] = ("sum", "max", "min", "const", "copy", "xor")

#: Values are kept in a bounded ring so long programs cannot blow up
#: fixture files; the modulus is prime so "sum" does not silently
#: collapse onto a power-of-two mask.
VALUE_MODULUS = 1_000_003


def unit_draw(seed: int, *parts: object) -> float:
    """A uniform [0, 1) draw that is a pure function of its arguments.

    The same hash-derived construction as the chaos policy's draws:
    there is no generator state to keep in sync, and the value is
    identical on every Python version and platform.
    """
    material = "|".join(str(part) for part in (seed,) + parts)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:7], "big") / float(1 << 56)


def int_draw(seed: int, low: int, high: int, *parts: object) -> int:
    """A uniform integer in ``[low, high]`` (inclusive), hash-derived."""
    if high < low:
        raise ValueError(f"empty draw range [{low}, {high}]")
    span = high - low + 1
    return low + int(unit_draw(seed, *parts) * span) % span


def permutation_draw(seed: int, n: int, *parts: object) -> List[int]:
    """A deterministic permutation of ``range(n)`` (Fisher-Yates over
    hash draws)."""
    items = list(range(n))
    for i in range(n - 1, 0, -1):
        j = int_draw(seed, 0, i, *parts, "swap", i)
        items[i], items[j] = items[j], items[i]
    return items


def apply_op(op: str, values: Tuple[int, ...], constant: int,
             n_outputs: int) -> Tuple[int, ...]:
    """Evaluate an action's opcode over the values it read.

    Output slot ``j`` gets ``base + j`` (mod :data:`VALUE_MODULUS`) so
    an action writing two cells writes two *different* values — a
    commit that swaps or duplicates staging slots cannot hide.
    """
    if op == "sum":
        base = sum(values) + constant
    elif op == "max":
        base = max(values) if values else constant
    elif op == "min":
        base = min(values) if values else constant
    elif op == "const":
        base = constant
    elif op == "copy":
        base = values[0] if values else constant
    elif op == "xor":
        base = constant
        for value in values:
            base ^= value
    else:
        raise ValueError(f"unknown op {op!r}; known: {OPS}")
    return tuple((base + j) % VALUE_MODULUS for j in range(n_outputs))


@dataclass(frozen=True)
class ProcessorAction:
    """One simulated processor's behavior in one step."""

    reads: Tuple[int, ...] = ()
    writes: Tuple[int, ...] = ()
    op: str = "const"
    constant: int = 0

    def outputs(self, values: Tuple[int, ...]) -> Tuple[int, ...]:
        return apply_op(self.op, values, self.constant, len(self.writes))

    def to_json(self) -> Dict[str, object]:
        return {
            "reads": list(self.reads),
            "writes": list(self.writes),
            "op": self.op,
            "constant": self.constant,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ProcessorAction":
        return cls(
            reads=tuple(data["reads"]),
            writes=tuple(data["writes"]),
            op=str(data["op"]),
            constant=int(data["constant"]),
        )


class _TableStep(SimStep):
    """A SimStep backed by a row of ProcessorActions."""

    def __init__(self, actions: Sequence[ProcessorAction], label: str) -> None:
        self.actions = tuple(actions)
        self.label = label

    def read_addresses(self, processor: int):
        return self.actions[processor].reads

    def write_addresses(self, processor: int):
        return self.actions[processor].writes

    def compute(self, processor: int, values: Tuple[int, ...]):
        return self.actions[processor].outputs(values)


@dataclass(frozen=True)
class GeneratedProgram:
    """A declarative straight-line PRAM program (one action table per
    step)."""

    width: int
    memory_size: int
    steps: Tuple[Tuple[ProcessorAction, ...], ...]
    name: str = "fuzz"

    def to_sim_program(self) -> SimProgram:
        sim_steps = [
            _TableStep(actions, label=f"{self.name}:{index}")
            for index, actions in enumerate(self.steps)
        ]
        return SimProgram(
            width=self.width,
            memory_size=self.memory_size,
            steps=sim_steps,
            name=self.name,
        )

    def validate(self) -> None:
        """Model-budget and exclusive-write checks on the action table."""
        for index, actions in enumerate(self.steps):
            if len(actions) != self.width:
                raise ValueError(
                    f"{self.name} step {index}: {len(actions)} actions "
                    f"for width {self.width}"
                )
            seen_writes: Dict[int, int] = {}
            for processor, action in enumerate(actions):
                if len(action.reads) > 4:
                    raise ValueError(
                        f"{self.name} step {index} processor {processor}: "
                        f"{len(action.reads)} reads exceed the budget of 4"
                    )
                if len(action.writes) > 2:
                    raise ValueError(
                        f"{self.name} step {index} processor {processor}: "
                        f"{len(action.writes)} writes exceed the budget of 2"
                    )
                for address in action.reads + action.writes:
                    if not 0 <= address < self.memory_size:
                        raise ValueError(
                            f"{self.name} step {index} processor "
                            f"{processor}: address {address} out of "
                            f"[0, {self.memory_size})"
                        )
                for address in action.writes:
                    if address in seen_writes:
                        raise ValueError(
                            f"{self.name} step {index}: processors "
                            f"{seen_writes[address]} and {processor} both "
                            f"write cell {address} (writes must be "
                            f"exclusive for a deterministic oracle)"
                        )
                    seen_writes[address] = processor
        self.to_sim_program().validate()

    def to_json(self) -> Dict[str, object]:
        return {
            "width": self.width,
            "memory_size": self.memory_size,
            "name": self.name,
            "steps": [
                [action.to_json() for action in actions]
                for actions in self.steps
            ],
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "GeneratedProgram":
        return cls(
            width=int(data["width"]),
            memory_size=int(data["memory_size"]),
            name=str(data.get("name", "fuzz")),
            steps=tuple(
                tuple(ProcessorAction.from_json(action) for action in actions)
                for actions in data["steps"]
            ),
        )


@dataclass(frozen=True)
class GeneratorConfig:
    """Bounds on generated programs.

    The defaults keep instances tiny — the point is breadth (many
    seeds) rather than depth, and four lanes x three passes multiply
    every iteration's cost.
    """

    min_width: int = 1
    max_width: int = 5
    extra_memory: int = 4       # memory_size - width upper bound
    min_steps: int = 1
    max_steps: int = 4
    max_reads: int = 4          # the model budget; do not raise
    max_writes: int = 2         # the model budget; do not raise
    value_range: int = 50       # initial memory cells in [0, value_range)
    ops: Tuple[str, ...] = OPS
    write_density: float = 0.8  # P(a processor writes at all) per step

    def __post_init__(self) -> None:
        if not 1 <= self.min_width <= self.max_width:
            raise ValueError(
                f"bad width bounds [{self.min_width}, {self.max_width}]"
            )
        if not 0 <= self.min_steps <= self.max_steps:
            raise ValueError(
                f"bad step bounds [{self.min_steps}, {self.max_steps}]"
            )
        if not 0 <= self.max_reads <= 4:
            raise ValueError(f"max_reads {self.max_reads} outside [0, 4]")
        if not 1 <= self.max_writes <= 2:
            raise ValueError(f"max_writes {self.max_writes} outside [1, 2]")
        unknown = [op for op in self.ops if op not in OPS]
        if unknown:
            raise ValueError(f"unknown ops {unknown}; known: {OPS}")


#: The fuzzer's default bounds.
DEFAULT_CONFIG = GeneratorConfig()


def generate_program(
    seed: int, config: GeneratorConfig = DEFAULT_CONFIG
) -> GeneratedProgram:
    """The program for ``seed`` under ``config`` — pure and stable.

    Per step, a deterministic permutation of the address space is dealt
    out to processors as write sets (hence exclusive writes), and each
    processor draws up to ``max_reads`` read addresses freely: any cell
    may be read by many processors (CREW), including cells written this
    step (reads observe the previous step — the synchronous-semantics
    trap the executor must not fall into).
    """
    width = int_draw(seed, config.min_width, config.max_width, "width")
    memory_size = width + int_draw(seed, 0, config.extra_memory, "mem")
    n_steps = int_draw(seed, config.min_steps, config.max_steps, "steps")
    steps: List[Tuple[ProcessorAction, ...]] = []
    for s in range(n_steps):
        pool = permutation_draw(seed, memory_size, "pool", s)
        cursor = 0
        actions: List[ProcessorAction] = []
        for i in range(width):
            n_reads = int_draw(seed, 0, config.max_reads, "reads", s, i)
            reads = tuple(
                int_draw(seed, 0, memory_size - 1, "read", s, i, k)
                for k in range(n_reads)
            )
            if unit_draw(seed, "writer", s, i) < config.write_density:
                n_writes = min(
                    int_draw(seed, 1, config.max_writes, "writes", s, i),
                    memory_size - cursor,
                )
            else:
                n_writes = 0
            writes = tuple(sorted(pool[cursor:cursor + n_writes]))
            cursor += n_writes
            op = config.ops[
                int_draw(seed, 0, len(config.ops) - 1, "op", s, i)
            ]
            constant = int_draw(
                seed, 0, config.value_range - 1, "const", s, i
            )
            actions.append(
                ProcessorAction(
                    reads=reads, writes=writes, op=op, constant=constant
                )
            )
        steps.append(tuple(actions))
    program = GeneratedProgram(
        width=width,
        memory_size=memory_size,
        steps=tuple(steps),
        name=f"fuzz[{seed}]",
    )
    program.validate()
    return program


def generate_initial_memory(
    seed: int, memory_size: int, config: GeneratorConfig = DEFAULT_CONFIG
) -> List[int]:
    """The initial simulated memory for ``seed`` — pure and stable."""
    return [
        int_draw(seed, 0, config.value_range - 1, "init", address)
        for address in range(memory_size)
    ]

