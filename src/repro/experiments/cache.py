"""On-disk result cache for experiment sweeps.

Every sweep point is keyed by a content hash of its *spec* — sweep
name, algorithm, (N, P, seed), adversary factory, tick budget, fairness
window — and its :class:`~repro.experiments.runner.RunPoint` is stored
as one small JSON file under that key.  The cache therefore doubles as
the sweep's checkpoint: re-running an interrupted sweep skips every key
already on disk and executes only the missing points.

Layout (one directory per sweep, sanitized)::

    <root>/
      <sweep-name>/
        checkpoint.json          # progress manifest (informational)
        <sha256-of-point-spec>.json

Entries are written atomically (temp file + ``os.replace``) so a kill
mid-write never leaves a half entry under the final name.  Every entry
(and the checkpoint) carries a content checksum: corruption that still
parses as JSON — a flipped bit in a stored measure — is detected on
read just like truncation, logged, discarded, and self-healed by
recompute instead of silently loaded.  ``corrupt_discarded`` counts
those discards so the engine can surface them in its stats.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import logging
import os
import pathlib
import re
import tempfile
import time
from typing import Any, Dict, Optional, Union

from repro.experiments.runner import RunPoint

_LOG = logging.getLogger(__name__)

#: Bump when the *key* material (fingerprint scheme) changes: old
#: entries then miss instead of deserializing garbage.
CACHE_VERSION = 1

#: Entry-body schema.  Schema 2 added the content ``checksum``; schema 1
#: entries (pre-checksum) are still accepted — the migration shim below —
#: so existing caches are not invalidated wholesale.
ENTRY_SCHEMA = 2


def fingerprint(obj: Any) -> str:
    """A stable, process-independent description of a spec component.

    Used to build cache keys, so it must not involve ``id()``/``repr``
    of bare instances (memory addresses) and must recurse through the
    factory combinators.  Precedence:

    * ``None`` and scalars — literal;
    * an object with a ``fingerprint()`` method — delegated;
    * ``functools.partial`` — the wrapped callable plus bound args;
    * a dataclass *instance* — qualified name plus every field;
    * a class or function — its qualified name;
    * anything else — qualified class name plus sorted ``__dict__``.
    """
    if obj is None:
        return "none"
    if isinstance(obj, (bool, int, float, str)):
        return repr(obj)
    if isinstance(obj, (tuple, list)):
        inner = ",".join(fingerprint(item) for item in obj)
        return f"[{inner}]"
    if hasattr(obj, "fingerprint") and callable(obj.fingerprint):
        return str(obj.fingerprint())
    if isinstance(obj, functools.partial):
        keywords = ",".join(
            f"{key}={fingerprint(value)}"
            for key, value in sorted(obj.keywords.items())
        )
        args = ",".join(fingerprint(value) for value in obj.args)
        return f"partial({fingerprint(obj.func)};{args};{keywords})"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{field.name}={fingerprint(getattr(obj, field.name))}"
            for field in dataclasses.fields(obj)
        )
        return f"{_qualname(type(obj))}({fields})"
    if isinstance(obj, type) or callable(obj):
        return _qualname(obj)
    state = ",".join(
        f"{key}={fingerprint(value)}"
        for key, value in sorted(vars(obj).items())
    )
    return f"{_qualname(type(obj))}({state})"


def _qualname(obj: Any) -> str:
    module = getattr(obj, "__module__", type(obj).__module__)
    name = getattr(obj, "__qualname__", type(obj).__qualname__)
    return f"{module}.{name}"


def point_key(
    sweep: str,
    algorithm: Any,
    n: int,
    p: int,
    seed: int,
    adversary: Any,
    max_ticks: Optional[int],
    fairness_window: Optional[int],
    fast_forward: bool = True,
    compiled: bool = True,
    vectorized: "Union[bool, str]" = False,
    runner: Any = None,
) -> str:
    """The content hash identifying one sweep point's spec."""
    material = "|".join([
        f"v{CACHE_VERSION}",
        sweep,
        fingerprint(algorithm),
        str(n), str(p), str(seed),
        fingerprint(adversary),
        str(max_ticks), str(fairness_window),
    ])
    if not fast_forward:
        # Fast-forward is model-invisible (both paths produce identical
        # results), but keying the escape hatch keeps any future
        # divergence investigable.  Appended only when non-default so
        # every pre-existing cache entry keeps its key.
        material += "|no-fast-forward"
    if not compiled:
        # Same reasoning for the compiled-kernel escape hatch.
        material += "|no-compiled"
    if vectorized == "auto":
        # Adaptive dispatch is bit-identical to both forced lanes, but
        # gets its own key (same investigability reasoning as above) —
        # and must not collide with the hard --vectorized suffix.
        material += "|lane-auto"
    elif vectorized:
        # The vectorized lane is opt-in, so the suffix lands only on
        # the new configuration and old cache entries keep their keys.
        material += "|vectorized"
    if runner is not None:
        # A custom point runner changes what a point *measures* (e.g.
        # the persistent-memory checkpoint sweep), so it is key
        # material; appended only when set so default sweeps keep their
        # pre-existing keys.
        material += f"|runner={fingerprint(runner)}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _sanitize(name: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("._") or "sweep"
    return cleaned[:80]


def entry_checksum(key: str, point: Dict[str, Any]) -> str:
    """Content checksum binding a point payload to its key.

    Computed over the canonical JSON of the point dict, so any mutation
    of a stored measure — even one that still parses — fails the check.
    """
    material = key + "|" + json.dumps(
        point, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of completed :class:`RunPoint` s."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = pathlib.Path(root)
        #: Corrupt (present-but-invalid) entries discarded by this
        #: instance; the engine diffs it to report corruption in stats.
        self.corrupt_discarded = 0

    def _sweep_dir(self, sweep: str) -> pathlib.Path:
        return self.root / _sanitize(sweep)

    def entry_path(self, sweep: str, key: str) -> pathlib.Path:
        """Where ``key``'s entry lives (whether or not it exists yet)."""
        return self._sweep_dir(sweep) / f"{key}.json"

    def load(self, sweep: str, key: str) -> Optional[RunPoint]:
        """The cached point for ``key``, or ``None``.

        A missing entry and a corrupted one are the same thing to the
        caller — the point just recomputes.  Corrupted files are
        logged, counted, and deleted so they cannot shadow a later good
        write.  Schema-1 entries (written before checksums existed) are
        still accepted; schema-2 entries must pass their checksum.
        """
        path = self.entry_path(sweep, key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            self._discard(path, f"unreadable entry ({exc})")
            return None
        try:
            if payload["version"] != CACHE_VERSION or payload["key"] != key:
                raise ValueError("stale or mismatched entry")
            if payload.get("schema", 1) >= 2:
                stored = payload.get("checksum")
                if stored != entry_checksum(key, payload["point"]):
                    raise ValueError("checksum mismatch")
            return RunPoint.from_dict(payload["point"])
        except (KeyError, TypeError, ValueError) as exc:
            self._discard(path, str(exc))
            return None

    def store(self, sweep: str, key: str, point: RunPoint,
              elapsed: float) -> None:
        directory = self._sweep_dir(sweep)
        directory.mkdir(parents=True, exist_ok=True)
        point_dict = point.to_dict()
        payload = {
            "version": CACHE_VERSION,
            "schema": ENTRY_SCHEMA,
            "key": key,
            "point": point_dict,
            "elapsed_s": elapsed,
            "checksum": entry_checksum(key, point_dict),
        }
        _atomic_write_json(self.entry_path(sweep, key), payload)

    def write_checkpoint(self, sweep: str, done: int, total: int) -> None:
        """Progress manifest — informational; the entries are the truth."""
        directory = self._sweep_dir(sweep)
        directory.mkdir(parents=True, exist_ok=True)
        body = {
            "version": CACHE_VERSION,
            "schema": ENTRY_SCHEMA,
            "sweep": sweep,
            "done": done,
            "total": total,
            "updated_unix": time.time(),
        }
        body["checksum"] = hashlib.sha256(
            json.dumps(body, sort_keys=True,
                       separators=(",", ":")).encode("utf-8")
        ).hexdigest()
        _atomic_write_json(directory / "checkpoint.json", body)

    def read_checkpoint(self, sweep: str) -> Optional[Dict[str, Any]]:
        """The progress manifest, or ``None`` when missing or corrupt.

        Pre-checksum (schema-1) checkpoints are accepted as-is; a
        schema-2 checkpoint failing its checksum is treated as corrupt.
        The entries are still the truth either way — a bad checkpoint
        costs nothing but the progress readout.
        """
        path = self._sweep_dir(sweep) / "checkpoint.json"
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema", 1) >= 2:
            stored = payload.get("checksum")
            body = {k: v for k, v in payload.items() if k != "checksum"}
            expected = hashlib.sha256(
                json.dumps(body, sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
            ).hexdigest()
            if stored != expected:
                self.corrupt_discarded += 1
                _LOG.warning(
                    "discarding corrupt checkpoint %s: checksum mismatch",
                    path,
                )
                return None
        return payload

    def _discard(self, path: pathlib.Path, reason: str) -> None:
        self.corrupt_discarded += 1
        _LOG.warning("discarding corrupt cache entry %s: %s", path, reason)
        try:
            path.unlink()
        except OSError:
            pass


def _atomic_write_json(path: pathlib.Path, payload: Dict[str, Any]) -> None:
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            json.dump(payload, handle)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
