"""``python -m repro serve`` — the distributed sweep scheduler.

A long-running daemon holding one work queue, one shared
content-addressed :class:`~repro.experiments.cache.ResultCache`, and
two kinds of connections:

* **clients** (the :class:`~repro.experiments.backends.RemoteBackend`
  inside any sweep/bench/fuzz run) submit jobs and stream results back;
  many clients run concurrently and jobs with the same content-hash key
  are deduped — the second client subscribes to the first's execution,
  and a key already in the store is answered instantly without
  executing at all;
* **workers** (``python -m repro worker --connect host:port``) pull
  work: each ``ready`` is answered with a **lease** — one job, one
  deadline.  A worker that reports ``done`` completes the lease; a
  worker that disconnects or blows its deadline loses it, and the job
  is re-queued for the next ready worker (``lease_try + 1``).

That lease discipline is the paper's fail-stop/restart model applied
to the fleet: the grid is the fixed pool of work (the Write-All
array), workers are restartable fail-stop processors, and a lease
re-queue is the algorithm reassigning a cell abandoned by a crashed
processor.  A job that keeps killing its workers is completed as a
``crash`` after ``max_lease_tries`` leases — the quarantine path —
so one poison point cannot absorb the fleet.

Results fan out to every subscribed client as they complete; a
``status`` request answers with queue depth, fleet size, completion
counts, the running mean point wall time, and the ETA for the work
currently in the system.

Exporting ``REPRO_SERVE_TOKEN`` before starting the daemon requires
every hello to carry the same secret (constant-time compare) before
the connection is served — see :mod:`repro.experiments.wire`.
"""

from __future__ import annotations

import hmac
import itertools
import logging
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.wire import (
    PROTOCOL,
    TOKEN_ENV,
    Connection,
    WireError,
    connect,
    pack,
    unpack,
)

_LOG = logging.getLogger(__name__)


@dataclass
class _Task:
    """One unit of leased work and everyone waiting on it."""

    task_id: str
    sweep: str
    key: Optional[str]
    index: int
    attempt: int
    timeout: Optional[float]
    job_blob: str
    chaos_blob: Optional[str]
    #: (connection, client task id, healed-corrupt count) per client.
    subscribers: List[Tuple[Connection, str, int]] = field(
        default_factory=list
    )
    lease_try: int = 0
    deadline: Optional[float] = None
    worker: Optional[str] = None
    done: bool = False


class SweepServer:
    """The scheduler; see the module docstring for the protocol."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[str] = None,
        lease_ttl: float = 60.0,
        max_lease_tries: int = 5,
        reap_interval: float = 0.2,
        token: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.lease_ttl = lease_ttl
        self.max_lease_tries = max_lease_tries
        self.reap_interval = reap_interval
        # Shared-secret gate; defaults from the environment so daemon
        # and fleet authenticate by exporting one variable.  Empty /
        # unset disables the check (loopback trust, the historic mode).
        self.token = token if token is not None else os.environ.get(
            TOKEN_ENV
        )

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: List[_Task] = []
        self._leases: Dict[str, _Task] = {}
        self._by_key: Dict[Tuple[str, str], _Task] = {}
        self._workers: Dict[str, float] = {}  # name -> connected_unix
        self._ids = itertools.count()
        self._stopping = False
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []

        # Accounting surfaced on the status endpoint.
        self.completed = 0
        self.executed = 0
        self.cache_hits = 0
        self.requeues = 0
        self.quarantined = 0
        self.wall_sum = 0.0

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "SweepServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._spawn(self._accept_loop, "repro-serve-accept")
        self._spawn(self._reap_loop, "repro-serve-reaper")
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self) -> None:
        with self._lock:
            self._stopping = True
            self._work.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    def serve_forever(self) -> None:  # pragma: no cover - CLI loop
        try:
            while True:
                time.sleep(3600.0)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "SweepServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    # -- connection handling ------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            conn = Connection(sock)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-serve-conn", daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: Connection) -> None:
        try:
            hello = conn.recv()
        except WireError:
            conn.close()
            return
        if hello.get("type") != "hello":
            conn.close()
            return
        if self.token:
            # Reject unauthenticated peers here, before any job payload
            # (pickle blob) from this connection is ever unpacked.
            supplied = hello.get("token")
            if not isinstance(supplied, str) or not hmac.compare_digest(
                supplied.encode("utf-8"), self.token.encode("utf-8")
            ):
                try:
                    conn.send({"type": "error", "error": "auth-failed"})
                except OSError:
                    pass
                conn.close()
                return
        conn.send({"type": "welcome", "protocol": PROTOCOL})
        role = hello.get("role")
        try:
            if role == "worker":
                self._worker_loop(conn, str(hello.get("name") or
                                            f"worker-{next(self._ids)}"))
            else:
                self._client_loop(conn)
        except OSError:  # includes WireError: the peer is simply gone
            pass
        finally:
            conn.close()

    # -- client side --------------------------------------------------

    def _client_loop(self, conn: Connection) -> None:
        while True:
            message = conn.recv()
            kind = message.get("type")
            if kind == "submit":
                self._handle_submit(conn, message)
            elif kind == "status":
                conn.send(self.status())
            elif kind == "bye":
                return
            else:
                conn.send({"type": "error",
                           "detail": f"unknown message type {kind!r}"})

    def _handle_submit(self, conn: Connection, message: Dict[str, Any]
                       ) -> None:
        client_id = str(message["task_id"])
        sweep = str(message.get("sweep", "jobs"))
        key = message.get("key")
        resume = bool(message.get("resume", True))
        healed = 0
        if key is not None and resume and self.cache is not None:
            with self._lock:
                before = self.cache.corrupt_discarded
                cached = self.cache.load(sweep, key)
                healed = self.cache.corrupt_discarded - before
                if cached is not None:
                    self.cache_hits += 1
                    self.completed += 1
            if cached is not None:
                conn.send({
                    "type": "result", "task_id": client_id, "status": "ok",
                    "payload": pack(cached), "elapsed": 0.0,
                    "cached": True, "stored": True, "lease_tries": 0,
                    "healed_corrupt": healed,
                })
                return
        with self._lock:
            existing = (
                self._by_key.get((sweep, key))
                if key is not None and resume else None
            )
            if existing is not None and not existing.done:
                existing.subscribers.append((conn, client_id, healed))
                return
            task = _Task(
                task_id=f"t{next(self._ids)}",
                sweep=sweep,
                key=key,
                index=int(message.get("index", 0)),
                attempt=int(message.get("attempt", 1)),
                timeout=message.get("timeout"),
                job_blob=str(message["job"]),
                chaos_blob=message.get("chaos"),
                subscribers=[(conn, client_id, healed)],
            )
            if key is not None:
                self._by_key[(sweep, key)] = task
            self._queue.append(task)
            self._work.notify()

    # -- worker side --------------------------------------------------

    def _worker_loop(self, conn: Connection, name: str) -> None:
        with self._lock:
            self._workers[name] = time.time()
        lease: Optional[_Task] = None
        try:
            while True:
                message = conn.recv()
                kind = message.get("type")
                if kind == "ready":
                    lease = self._next_lease(name)
                    if lease is None:  # server stopping
                        conn.send({"type": "bye"})
                        return
                    try:
                        conn.send({
                            "type": "lease",
                            "task_id": lease.task_id,
                            "sweep": lease.sweep,
                            "index": lease.index,
                            "attempt": lease.attempt,
                            "timeout": lease.timeout,
                            "job": lease.job_blob,
                            "chaos": lease.chaos_blob,
                            "lease_try": lease.lease_try,
                        })
                    except OSError:
                        self._abandon(lease)
                        raise WireError("worker vanished taking a lease")
                elif kind == "done" and lease is not None:
                    self._complete(
                        lease,
                        status=str(message.get("status", "error")),
                        payload_blob=message.get("payload"),
                        elapsed=float(message.get("elapsed", 0.0)),
                    )
                    lease = None
                elif kind == "bye":
                    return
        finally:
            if lease is not None:
                self._abandon(lease)
            with self._lock:
                self._workers.pop(name, None)

    def _next_lease(self, worker: str) -> Optional[_Task]:
        with self._lock:
            while True:
                while self._queue and self._queue[0].done:
                    self._queue.pop(0)
                if self._queue:
                    task = self._queue.pop(0)
                    task.lease_try += 1
                    task.deadline = time.monotonic() + self.lease_ttl
                    task.worker = worker
                    self._leases[task.task_id] = task
                    return task
                if self._stopping:
                    return None
                self._work.wait(timeout=0.5)

    def _abandon(self, task: _Task) -> None:
        """A lease's worker died or stalled; re-queue or quarantine."""
        with self._lock:
            if self._leases.pop(task.task_id, None) is None or task.done:
                return
            task.worker = None
            task.deadline = None
            if task.lease_try >= self.max_lease_tries:
                self.quarantined += 1
                self._finish(
                    task, status="crash",
                    payload_blob=pack(
                        f"lease abandoned {task.lease_try} time(s): worker "
                        f"died or stalled past the {self.lease_ttl:.1f}s "
                        f"deadline"
                    ),
                    elapsed=0.0, stored=False,
                )
                return
            self.requeues += 1
            self._queue.insert(0, task)
            self._work.notify()

    def _reap_loop(self) -> None:
        while not self._stopping:
            time.sleep(self.reap_interval)
            now = time.monotonic()
            expired = []
            with self._lock:
                for task in list(self._leases.values()):
                    if task.deadline is not None and now > task.deadline:
                        expired.append(task)
            for task in expired:
                _LOG.warning(
                    "lease %s expired on worker %s (try %d); re-queueing",
                    task.task_id, task.worker, task.lease_try,
                )
                self._abandon(task)

    # -- completion ---------------------------------------------------

    def _complete(self, task: _Task, status: str,
                  payload_blob: Optional[str], elapsed: float) -> None:
        with self._lock:
            self._leases.pop(task.task_id, None)
            if task.done:
                return  # first result won (a re-queued copy finished first)
            stored = False
            if status == "ok" and self.cache is not None \
                    and task.key is not None:
                point = unpack(payload_blob)
                try:
                    self.cache.store(task.sweep, task.key, point, elapsed)
                    stored = True
                except Exception as exc:
                    # A payload the store cannot serialize (or a full
                    # disk) must never hang the subscribers waiting in
                    # _finish below — deliver unstored instead.
                    _LOG.warning(
                        "shared store cannot persist %s/%s (%s); "
                        "delivering the result unstored",
                        task.sweep, task.key, exc,
                    )
                if stored:
                    chaos = unpack(task.chaos_blob)
                    if chaos is not None and chaos.corrupts(task.index):
                        chaos.corrupt_entry(
                            self.cache.entry_path(task.sweep, task.key)
                        )
            self.executed += 1
            self.completed += 1
            self.wall_sum += elapsed
            self._finish(task, status, payload_blob, elapsed, stored)

    def _finish(self, task: _Task, status: str,
                payload_blob: Optional[str], elapsed: float,
                stored: bool) -> None:
        """Mark done and fan out to subscribers.  Caller holds the lock."""
        task.done = True
        if task.key is not None:
            current = self._by_key.get((task.sweep, task.key))
            if current is task:
                del self._by_key[(task.sweep, task.key)]
        for conn, client_id, healed in task.subscribers:
            try:
                conn.send({
                    "type": "result", "task_id": client_id,
                    "status": status, "payload": payload_blob,
                    "elapsed": elapsed, "cached": False, "stored": stored,
                    "lease_tries": task.lease_try,
                    "healed_corrupt": healed,
                })
            except OSError:
                pass  # that client is gone; others still get theirs
        task.subscribers = []

    # -- status -------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        with self._lock:
            pending = sum(1 for task in self._queue if not task.done)
            leased = len(self._leases)
            mean = self.wall_sum / self.executed if self.executed else None
            eta = mean * (pending + leased) if mean is not None else None
            return {
                "type": "status",
                "protocol": PROTOCOL,
                "workers": len(self._workers),
                "worker_names": sorted(self._workers),
                "pending": pending,
                "leased": leased,
                "completed": self.completed,
                "executed": self.executed,
                "cache_hits": self.cache_hits,
                "requeues": self.requeues,
                "quarantined": self.quarantined,
                "mean_point_s": (round(mean, 6)
                                 if mean is not None else None),
                "eta_s": round(eta, 3) if eta is not None else None,
                "cache_dir": (str(self.cache.root)
                              if self.cache is not None else None),
            }


def fetch_status(address: str, timeout: float = 5.0) -> Dict[str, Any]:
    """One-shot status query against a running serve daemon."""
    from repro.experiments.wire import parse_address

    host, port = parse_address(address)
    conn = connect(host, port, role="client", timeout=timeout)
    try:
        conn.send({"type": "status"})
        return conn.recv()
    finally:
        try:
            conn.send({"type": "bye"})
        except OSError:
            pass
        conn.close()
