"""``python -m repro worker`` — one restartable fail-stop processor.

A worker is three processes deep, on purpose:

* the **supervisor** (the CLI process) does nothing but restart the
  session when it dies abnormally — it is the paper's *restart* half
  of the fail-stop/restart model, running on our own fleet;
* the **session** holds the socket to the serve daemon and loops
  ``ready`` -> lease -> execute -> ``done``;
* each lease executes in a single-slot **sandbox subprocess**
  (a ``ProcessPoolExecutor``), so a per-point SIGALRM timeout runs on
  that process's main thread and an injected ``os._exit`` crash kills
  the sandbox — observed by the session as a broken pool and reported
  upstream as an ordinary ``crash`` — instead of the session.

Chaos ``worker-kill`` injection is acted on by the *session* (the
whole worker dies, its lease is re-queued by the server), and only on
a job's first lease — the restarted/other worker then completes it,
which is exactly the re-queue path the soak needs to witness.  The
``REPRO_REMOTE_WORKER`` environment variable is set in sandbox
children so :meth:`ChaosPolicy.perturb` does not fire the same kill a
second time inside the sandbox.
"""

from __future__ import annotations

import concurrent.futures
import concurrent.futures.process
import multiprocessing
import os
import subprocess
import sys
import time
from typing import Callable, Optional

from repro.experiments.chaos import CHAOS_EXIT_CODE
from repro.experiments.wire import WireError, connect, parse_address, unpack

#: Set inside sandbox subprocesses; tells ChaosPolicy.perturb that the
#: session already acted on a planned worker-kill.
REMOTE_WORKER_ENV = "REPRO_REMOTE_WORKER"

_BrokenPool = concurrent.futures.process.BrokenProcessPool


def _mark_sandbox() -> None:  # pool initializer, runs in the child
    os.environ[REMOTE_WORKER_ENV] = "1"


def _run_job(job_blob: str, chaos_blob: Optional[str], attempt: int,
             timeout: Optional[float]):
    """Top-level sandbox entry: unpack and run one job."""
    job = unpack(job_blob)
    chaos = unpack(chaos_blob)
    return job.run(timeout=timeout, chaos=chaos, attempt=attempt)


class SessionKilled(Exception):
    """Raised instead of ``os._exit`` when the session runs in-process
    (thread-hosted test workers); ends the session, not the host."""


class WorkerSession:
    """One connected session; see the module docstring."""

    def __init__(
        self,
        address: str,
        name: Optional[str] = None,
        kill_mode: str = "exit",  # "exit" (real worker) | "raise" (tests)
        connect_attempts: int = 50,
        connect_delay: float = 0.1,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.address = address
        self.name = name
        self.kill_mode = kill_mode
        self.connect_attempts = connect_attempts
        self.connect_delay = connect_delay
        self._log = log

    def _emit(self, line: str) -> None:
        if self._log is not None:
            self._log(line)

    def _connect(self):
        host, port = parse_address(self.address)
        last: Optional[Exception] = None
        for _ in range(self.connect_attempts):
            try:
                return connect(host, port, role="worker", name=self.name)
            except OSError as exc:
                last = exc
                time.sleep(self.connect_delay)
        raise ConnectionError(
            f"cannot reach serve daemon at {self.address}: {last}"
        )

    def _fresh_pool(self):
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=1, initializer=_mark_sandbox,
        )

    def _die(self, pool) -> None:
        # Shut the sandbox down first so an orphan child cannot outlive
        # the injected kill, then fail-stop the session itself.
        pool.shutdown(wait=False)
        if self.kill_mode == "raise":
            raise SessionKilled("chaos: injected worker kill")
        os._exit(CHAOS_EXIT_CODE)

    def run(self) -> int:
        """Serve leases until the server goes away; 0 on clean exit."""
        conn = self._connect()
        pool = self._fresh_pool()
        try:
            while True:
                try:
                    conn.send({"type": "ready"})
                    lease = conn.recv()
                except (WireError, OSError):
                    return 0  # server gone: a clean fleet shutdown
                kind = lease.get("type")
                if kind == "bye":
                    return 0
                if kind != "lease":
                    continue
                chaos = unpack(lease.get("chaos"))
                if (
                    chaos is not None
                    and int(lease.get("lease_try", 1)) == 1
                    and chaos.plan(int(lease.get("index", 0)),
                                   int(lease.get("attempt", 1)))
                    == "worker-kill"
                ):
                    self._emit("chaos worker-kill: failing stop")
                    self._die(pool)
                timeout = lease.get("timeout")
                hard = (
                    None if timeout is None
                    else float(timeout) + max(5.0, float(timeout))
                )
                try:
                    future = pool.submit(
                        _run_job, lease["job"], lease.get("chaos"),
                        int(lease.get("attempt", 1)), timeout,
                    )
                    status, payload, elapsed = future.result(timeout=hard)
                except (_BrokenPool,
                        concurrent.futures.TimeoutError) as exc:
                    pool.shutdown(wait=False)
                    pool = self._fresh_pool()
                    status, payload, elapsed = (
                        "crash",
                        f"worker sandbox died executing the lease "
                        f"({type(exc).__name__})",
                        0.0,
                    )
                except Exception as exc:
                    status, payload, elapsed = "error", str(exc), 0.0
                from repro.experiments.wire import pack

                try:
                    conn.send({
                        "type": "done",
                        "task_id": lease.get("task_id"),
                        "status": status,
                        "payload": pack(payload),
                        "elapsed": elapsed,
                    })
                except OSError:
                    return 0  # server gone mid-report; lease re-queues
        finally:
            pool.shutdown(wait=False)
            conn.close()


def _session_entry(address: str, name: Optional[str]) -> None:
    session = WorkerSession(address, name=name)
    sys.exit(session.run())


def run_worker(
    address: str,
    name: Optional[str] = None,
    max_restarts: Optional[int] = None,
    restart_backoff_s: float = 0.2,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """The supervisor loop: restart the session until it exits cleanly.

    An abnormal session exit (an injected ``worker-kill``, a real
    crash, an OOM kill) is the *fail-stop* event; the restart —
    bounded by ``max_restarts``, default unbounded — is the paper's
    restart.  Returns the final session exit code.
    """

    def emit(line: str) -> None:
        if log is not None:
            log(line)

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    restarts = 0
    while True:
        process = context.Process(
            target=_session_entry, args=(address, name),
            name=f"repro-worker-session-{restarts}",
        )
        process.start()
        process.join()
        code = process.exitcode or 0
        if code == 0:
            emit("session exited cleanly; supervisor done")
            return 0
        restarts += 1
        if max_restarts is not None and restarts > max_restarts:
            emit(f"session exited {code}; restart budget exhausted")
            return code
        emit(f"session exited {code} (restart {restarts}); "
             f"restarting in {restart_backoff_s:.2f}s")
        time.sleep(restart_backoff_s)


def spawn_worker(
    address: str,
    name: Optional[str] = None,
    env: Optional[dict] = None,
    new_session: bool = False,
) -> subprocess.Popen:
    """Start a CLI worker subprocess against ``address``.

    Used by the soak, the smoke harness, and the scaling benchmark; the
    child inherits this interpreter and an import path that can see
    :mod:`repro` even when the caller relied on an installed package.
    """
    import repro

    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)
    ))
    child_env = dict(os.environ if env is None else env)
    existing = child_env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        child_env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    command = [sys.executable, "-m", "repro", "worker",
               "--connect", address]
    if name is not None:
        command += ["--name", name]
    return subprocess.Popen(
        command, env=child_env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        start_new_session=new_session,
    )
