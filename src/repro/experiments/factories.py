"""Picklable, fingerprintable adversary factories for sweeps.

A :class:`~repro.experiments.spec.SweepSpec` carries an *adversary
factory* — a callable mapping the sweep seed to a fresh adversary.
Plain lambdas work for in-process sweeps, but the parallel engine ships
each point to a worker process, and the result cache keys points by a
content hash of their spec; both need factories that

* pickle (so they cross the process boundary), and
* describe themselves stably (so the hash survives restarts).

Every factory here is a frozen dataclass: picklable by construction,
and fingerprinted field-by-field via
:func:`repro.experiments.cache.fingerprint`.  Compose them freely —
``Budgeted(Thrashing(), 256)``, ``NoRestart(Stalker())`` — the
fingerprint recurses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.faults import (
    AccStalker,
    BurstAdversary,
    FailureBudgetAdversary,
    HalvingAdversary,
    IterationStarver,
    NoFailures,
    NoRestartAdversary,
    RandomAdversary,
    ScheduledAdversary,
    SpeedClassAdversary,
    StalkingAdversaryX,
    StaticFaultAdversary,
    ThrashingAdversary,
)
from repro.faults import registry as adversary_registry

#: Factory protocol: seed -> adversary (or None for failure-free).
AdversaryFactory = Callable[[int], Optional[object]]


@dataclass(frozen=True)
class FailureFree:
    """No failures at all, regardless of seed."""

    def __call__(self, seed: int):
        return NoFailures()


@dataclass(frozen=True)
class RandomChurn:
    """I.i.d. failures and restarts, seeded per sweep point."""

    fail: float = 0.1
    restart_prob: float = 0.3

    def __call__(self, seed: int):
        return RandomAdversary(self.fail, self.restart_prob, seed=seed)


@dataclass(frozen=True)
class CrashOnly:
    """The [KS 89] fail-stop model: random crashes, no restarts."""

    fail: float = 0.05

    def __call__(self, seed: int):
        return NoRestartAdversary(RandomAdversary(self.fail, seed=seed))


@dataclass(frozen=True)
class Thrashing:
    """Example 2.2's quadratic-S' strategy."""

    def __call__(self, seed: int):
        return ThrashingAdversary()


@dataclass(frozen=True)
class Halving:
    """Theorem 3.1's Omega(N log N) pigeonhole strategy."""

    def __call__(self, seed: int):
        return HalvingAdversary()


@dataclass(frozen=True)
class Stalker:
    """Theorem 4.8's post-order stalker against algorithm X."""

    def __call__(self, seed: int):
        return StalkingAdversaryX()


@dataclass(frozen=True)
class Starver:
    """Section 4.1's iteration starver (non-termination of pure V)."""

    def __call__(self, seed: int):
        return IterationStarver()


@dataclass(frozen=True)
class AccStalking:
    """Section 5's stalker against the randomized ACC algorithm."""

    fail_stop: bool = False

    def __call__(self, seed: int):
        return AccStalker(fail_stop=self.fail_stop)


@dataclass(frozen=True)
class Burst:
    """Periodic mass failures."""

    period: int = 3
    fraction: float = 0.5
    downtime: int = 1

    def __call__(self, seed: int):
        return BurstAdversary(
            period=self.period, fraction=self.fraction,
            downtime=self.downtime,
        )


@dataclass(frozen=True)
class SparseSchedule:
    """Deterministic fail/restart pairs spread ``gap`` ticks apart.

    The regime the machine's event-horizon fast-forward targets: an
    offline schedule whose bisected horizon leaves ~``gap``-tick
    provably-quiet windows between events.  The seed shifts the phase
    so sweep seeds realize distinct (but equally sparse) patterns;
    victims rotate over the first ``victims`` PIDs (events naming a
    PID that is not in the required state are vacuous by the offline
    pattern semantics, so any machine size is legal).
    """

    events: int = 8
    gap: int = 400
    start: int = 50
    downtime: int = 7
    victims: int = 4

    def __call__(self, seed: int):
        schedule = {}
        for k in range(self.events):
            base = self.start + self.gap * k + seed
            schedule[base] = ([k % self.victims], [])
            schedule[base + self.downtime] = ([], [k % self.victims])
        return ScheduledAdversary(schedule)


@dataclass(frozen=True)
class Budgeted:
    """Cap an inner factory's pattern size at ``budget`` (|F| <= M)."""

    inner: AdversaryFactory
    budget: int

    def __call__(self, seed: int):
        return FailureBudgetAdversary(self.inner(seed), self.budget)


@dataclass(frozen=True)
class NoRestart:
    """Strip restarts from an inner factory's adversary."""

    inner: AdversaryFactory

    def __call__(self, seed: int):
        return NoRestartAdversary(self.inner(seed))


@dataclass(frozen=True)
class StaticFaults:
    """CGP static processor/memory faults, seeded per sweep point.

    ``dead_frac`` of the processors die at tick 1 forever; ``mem_frac``
    of the Write-All cells are declared dead before the run starts (the
    runner applies the adversary's memory fault plan).
    """

    dead_frac: float = 0.25
    mem_frac: float = 0.0

    def __call__(self, seed: int):
        return StaticFaultAdversary(
            dead_frac=self.dead_frac, mem_frac=self.mem_frac, seed=seed
        )


@dataclass(frozen=True)
class SpeedClasses:
    """Zavou/Fernández-Anta speed classes, rotation seeded per point."""

    classes: tuple = (1, 2, 4)

    def __call__(self, seed: int):
        return SpeedClassAdversary(classes=self.classes, seed=seed)


@dataclass(frozen=True)
class PersistentCheckpointRunner:
    """A :attr:`SweepSpec.runner` measuring the PPM checkpoint axis.

    Each point runs a whole simulated program (prefix-sum of width N)
    through :class:`repro.simulation.PersistentSimulator` under the
    point's adversary, with private state checkpointed every
    ``interval`` completed cycles at ``cost`` no-op cycles apiece
    (``interval=0``: pure KS91 restarts).  The algorithm factory the
    engine passes is ignored — the generational executor is fixed — and
    the result maps onto :class:`~repro.core.runner.RunMeasures` so
    sweeps, caching and reports treat it like any other point.
    """

    interval: int = 0
    cost: int = 1

    def __call__(self, algorithm_factory, n, p, adversary=None,
                 max_ticks=None, fairness_window=None, fast_forward=True,
                 compiled=True, vectorized=False):
        from repro.core.runner import RunMeasures
        from repro.simulation.persistent import (
            CheckpointPolicy,
            PersistentSimulator,
        )
        from repro.simulation.programs import prefix_sum_program

        simulator = PersistentSimulator(
            p,
            adversary=adversary,
            checkpoint=CheckpointPolicy(self.interval, self.cost),
            **({} if max_ticks is None else {"max_ticks": max_ticks}),
        )
        result = simulator.execute(prefix_sum_program(n), list(range(n)))
        ledger = result.ledger
        return RunMeasures(
            algorithm=f"ppm-ck{self.interval}",
            n=n, p=p,
            solved=result.solved,
            completed_work=ledger.completed_work,
            charged_work=ledger.charged_work,
            pattern_size=ledger.pattern_size,
            overhead_ratio=ledger.overhead_ratio(n),
            parallel_time=ledger.parallel_time,
        )


@dataclass(frozen=True)
class NamedAdversary:
    """The registry's adversary vocabulary as a picklable factory.

    Mirrors ``python -m repro``'s ``--adversary/--fail/--restart-prob``
    flags so CLI sweeps can run through the parallel engine.  Names
    resolve through :mod:`repro.faults.registry`.
    """

    name: str
    fail: float = 0.1
    restart_prob: float = 0.3

    def __call__(self, seed: int):
        return build_named_adversary(
            self.name, self.fail, self.restart_prob, seed
        )


#: Names accepted by :class:`NamedAdversary` / the CLI — derived from
#: the unified registry (:mod:`repro.faults.registry`), sorted.  Kept
#: as a list for backward compatibility with callers that copied it.
NAMED_ADVERSARIES = list(adversary_registry.names())


def build_named_adversary(name: str, fail: float, restart_prob: float,
                          seed: int):
    """Build one adversary from the registry vocabulary.

    Thin delegate to :func:`repro.faults.registry.build`, kept as the
    stable entry point (fuzz fixtures and cached sweep specs replay
    adversaries by this name).  Raises ``ValueError`` for unknown names
    (the CLI wraps this into a ``SystemExit``).
    """
    return adversary_registry.build(name, fail, restart_prob, seed)
