"""The parallel sweep engine.

Fans a :class:`~repro.experiments.spec.SweepSpec` grid out over a
``concurrent.futures.ProcessPoolExecutor``, with

* **determinism** — each point seeds its own adversary exactly as the
  serial runner does, and results are reassembled in sweep order, so
  the output is bit-identical to :func:`repro.experiments.run_sweep`
  for any worker count;
* **caching / checkpointing** — completed points are written to a
  :class:`~repro.experiments.cache.ResultCache` as they finish; a
  re-run (or a resumed interrupted run) executes only the missing
  points;
* **timeout + retry** — a per-point wall-clock timeout (SIGALRM-based,
  enforced inside the worker) turns a pathological point into a
  recorded :class:`PointFailure` after ``retries`` extra attempts,
  instead of hanging the sweep.

``workers <= 1`` executes inline (no subprocesses, no pickling
requirement), which is both the fast path for small sweeps and the
hook tests use to count executions.  ``workers > 1`` requires the
spec's ``algorithm`` and ``adversary`` to be picklable — use the
factories in :mod:`repro.experiments.factories`.
"""

from __future__ import annotations

import concurrent.futures
import pickle
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.runner import measure_write_all
from repro.experiments.cache import ResultCache, point_key
from repro.experiments.runner import RunPoint, SweepResult
from repro.experiments.spec import SweepSpec

#: Outcome statuses a worker can report.
_OK, _TIMEOUT, _ERROR = "ok", "timeout", "error"


@dataclass(frozen=True)
class PointSpec:
    """One picklable (N, P, seed) cell of a sweep grid."""

    sweep: str
    index: int  # position in sweep order; results reassemble by it
    algorithm: Callable
    n: int
    p: int
    seed: int
    adversary: Optional[Callable]
    max_ticks: Optional[int]
    fairness_window: Optional[int]
    fast_forward: bool = True
    compiled: bool = True

    def cache_key(self) -> str:
        return point_key(
            self.sweep, self.algorithm, self.n, self.p, self.seed,
            self.adversary, self.max_ticks, self.fairness_window,
            fast_forward=self.fast_forward,
            compiled=self.compiled,
        )


@dataclass(frozen=True)
class PointFailure:
    """A point that exhausted its attempts (timeout or crash)."""

    index: int
    n: int
    p: int
    seed: int
    kind: str  # "timeout" | "error"
    attempts: int
    message: str


@dataclass(frozen=True)
class PointMeta:
    """Provenance of one successful point, aligned with ``points``."""

    index: int
    elapsed_s: float
    cached: bool
    attempts: int


@dataclass
class SweepStats:
    """Execution accounting for one engine run."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    timeouts: int = 0
    retries: int = 0
    failed: int = 0
    wall_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0


@dataclass
class ParallelSweepResult(SweepResult):
    """A :class:`SweepResult` plus the engine's accounting.

    ``points`` contains only the successful points (in sweep order);
    ``failures`` records the rest.  ``meta`` is aligned with ``points``.
    """

    stats: SweepStats = field(default_factory=SweepStats)
    failures: List[PointFailure] = field(default_factory=list)
    meta: List[PointMeta] = field(default_factory=list)


def expand_spec(spec: SweepSpec) -> List[PointSpec]:
    """Flatten a sweep grid into indexed, picklable point specs."""
    return [
        PointSpec(
            sweep=spec.name, index=index, algorithm=spec.algorithm,
            n=n, p=p, seed=seed, adversary=spec.adversary,
            max_ticks=spec.max_ticks,
            fairness_window=spec.fairness_window,
            fast_forward=spec.fast_forward,
            compiled=spec.compiled,
        )
        for index, (n, p, seed) in enumerate(spec.points())
    ]


class PointTimeout(Exception):
    """Raised inside a worker when a point exceeds its wall budget."""


class _alarm:
    """SIGALRM-based wall-clock guard around one point execution.

    Python-level timeouts cannot preempt a stuck C call, but every hot
    loop in this simulator is pure Python, where a pending SIGALRM is
    delivered between bytecodes.  On platforms (or threads) without
    SIGALRM the guard degrades to no enforcement.
    """

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self.armed = False

    def __enter__(self):
        if self.seconds is None or not hasattr(signal, "SIGALRM"):
            return self
        try:
            self._previous = signal.signal(signal.SIGALRM, self._fire)
            # setitimer returns the timer it displaced; an enclosing
            # _alarm (or any other SIGALRM user) may have one running,
            # and unconditionally zeroing it on exit would silently
            # disarm the outer guard.
            self._old_delay, self._old_interval = signal.setitimer(
                signal.ITIMER_REAL, self.seconds
            )
            self._entered_at = time.monotonic()
            self.armed = True
        except ValueError:  # not the main thread
            pass
        return self

    def __exit__(self, *exc_info):
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            # Restore the handler before re-arming the outer timer so a
            # late firing cannot land on this guard's handler.
            signal.signal(signal.SIGALRM, self._previous)
            if self._old_delay > 0.0:
                elapsed = time.monotonic() - self._entered_at
                remaining = max(self._old_delay - elapsed, 1e-6)
                signal.setitimer(
                    signal.ITIMER_REAL, remaining, self._old_interval
                )
        return False

    @staticmethod
    def _fire(signum, frame):
        raise PointTimeout()


def execute_point(
    point: PointSpec, timeout: Optional[float] = None
) -> Tuple[str, object, float]:
    """Run one point; never raises for timeout/algorithm errors.

    Returns ``(status, payload, elapsed_s)`` where payload is the
    :class:`RunPoint` on success and a diagnostic string otherwise.
    This is the top-level function worker processes execute.
    """
    started = time.perf_counter()
    try:
        with _alarm(timeout):
            measures = measure_write_all(
                point.algorithm, point.n, point.p,
                adversary=(
                    None if point.adversary is None
                    else point.adversary(point.seed)
                ),
                max_ticks=point.max_ticks,
                fairness_window=point.fairness_window,
                fast_forward=point.fast_forward,
                compiled=point.compiled,
            )
    except PointTimeout:
        return _TIMEOUT, f"exceeded {timeout:.3f}s", \
            time.perf_counter() - started
    except Exception:
        return _ERROR, traceback.format_exc(limit=8), \
            time.perf_counter() - started
    elapsed = time.perf_counter() - started
    return _OK, RunPoint.from_measures(measures, seed=point.seed), elapsed


def _check_picklable(point: PointSpec) -> None:
    try:
        pickle.dumps((point.algorithm, point.adversary))
    except Exception as exc:
        raise TypeError(
            "parallel sweeps need picklable algorithm/adversary specs "
            "(module-level classes, functools.partial, or the factories "
            "in repro.experiments.factories — not lambdas); "
            f"got: {exc}"
        ) from None


def run_sweep_parallel(
    spec: SweepSpec,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> ParallelSweepResult:
    """Execute ``spec`` through the parallel engine.

    Args:
        workers: process count; ``None`` or ``<= 1`` executes inline.
        cache / cache_dir: enable the on-disk result cache (pass either
            a :class:`ResultCache` or a directory path).
        resume: with a cache, load already-completed points instead of
            recomputing them.  ``False`` recomputes (and overwrites)
            every point while still checkpointing progress.
        timeout: per-point wall-clock budget in seconds.
        retries: extra attempts a timed-out/crashed point gets before
            it is recorded as a :class:`PointFailure`.
    """
    started = time.perf_counter()
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    points = expand_spec(spec)
    stats = SweepStats(total=len(points))
    results: Dict[int, RunPoint] = {}
    metas: Dict[int, PointMeta] = {}
    failures: List[PointFailure] = []

    pending: List[PointSpec] = []
    for point in points:
        cached = (
            cache.load(point.sweep, point.cache_key())
            if cache is not None and resume else None
        )
        if cached is not None:
            stats.cache_hits += 1
            results[point.index] = cached
            metas[point.index] = PointMeta(
                index=point.index, elapsed_s=0.0, cached=True, attempts=0,
            )
        else:
            pending.append(point)

    def record(point: PointSpec, status: str, payload, elapsed: float,
               attempt: int) -> bool:
        """Account one attempt; returns True when the point is settled."""
        if status == _OK:
            stats.executed += 1
            results[point.index] = payload
            metas[point.index] = PointMeta(
                index=point.index, elapsed_s=elapsed, cached=False,
                attempts=attempt,
            )
            if cache is not None:
                cache.store(point.sweep, point.cache_key(), payload, elapsed)
                cache.write_checkpoint(
                    spec.name, done=len(results), total=len(points)
                )
            return True
        if status == _TIMEOUT:
            stats.timeouts += 1
        if attempt <= retries:
            stats.retries += 1
            return False
        stats.failed += 1
        failures.append(PointFailure(
            index=point.index, n=point.n, p=point.p, seed=point.seed,
            kind=status, attempts=attempt, message=str(payload),
        ))
        return True

    if pending and (workers is None or workers <= 1):
        for point in pending:
            attempt = 1
            while True:
                status, payload, elapsed = execute_point(point, timeout)
                if record(point, status, payload, elapsed, attempt):
                    break
                attempt += 1
    elif pending:
        _check_picklable(pending[0])
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(pending))
        ) as pool:
            attempts: Dict[int, int] = {point.index: 1 for point in pending}
            futures = {
                pool.submit(execute_point, point, timeout): point
                for point in pending
            }
            while futures:
                done, _ = concurrent.futures.wait(
                    futures,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    point = futures.pop(future)
                    try:
                        status, payload, elapsed = future.result()
                    except concurrent.futures.process.BrokenProcessPool:
                        raise
                    except Exception as exc:  # worker died mid-task
                        status, payload, elapsed = _ERROR, str(exc), 0.0
                    settled = record(
                        point, status, payload, elapsed,
                        attempts[point.index],
                    )
                    if not settled:
                        attempts[point.index] += 1
                        futures[
                            pool.submit(execute_point, point, timeout)
                        ] = point

    ordered = [
        results[point.index] for point in points if point.index in results
    ]
    meta = [
        metas[point.index] for point in points if point.index in metas
    ]
    failures.sort(key=lambda failure: failure.index)
    stats.wall_s = time.perf_counter() - started
    if cache is not None:
        cache.write_checkpoint(
            spec.name, done=len(results), total=len(points)
        )
    return ParallelSweepResult(
        spec=spec, points=ordered, stats=stats, failures=failures, meta=meta,
    )
