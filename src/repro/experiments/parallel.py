"""The parallel sweep engine.

Fans a :class:`~repro.experiments.spec.SweepSpec` grid out over an
executor :class:`~repro.experiments.backends.Backend` — inline
(``serial``), a local process pool (``pool``), or a remote worker
fleet behind ``python -m repro serve`` (``remote:host:port``) — with

* **determinism** — each point seeds its own adversary exactly as the
  serial runner does, and results are reassembled in sweep order, so
  the output is bit-identical to :func:`repro.experiments.run_sweep`
  for any worker count;
* **caching / checkpointing** — completed points are written to a
  :class:`~repro.experiments.cache.ResultCache` as they finish; a
  re-run (or a resumed interrupted run) executes only the missing
  points;
* **timeout + retry** — a per-point wall-clock timeout (SIGALRM-based
  on the main thread, a soft ``threading.Timer`` deadline elsewhere)
  turns a pathological point into a recorded :class:`PointFailure`
  after ``retries`` extra attempts, instead of hanging the sweep;
* **crash recovery** — a dead worker (``BrokenProcessPool``) does not
  abort the sweep: in-flight points are charged one ``"crash"`` attempt
  and resubmitted to a fresh pool after a capped, seeded-jitter
  exponential backoff; a point that keeps killing workers is
  quarantined as a :class:`PointFailure` after its retries, and a pool
  that keeps dying degrades the run to serial in-process execution;
* **fault injection (opt-in)** — a
  :class:`~repro.experiments.chaos.ChaosPolicy` injects deterministic
  crashes/stalls/errors/cache corruption for soak-testing the recovery
  paths; ``chaos=None`` (the default) leaves every hot path untouched.

``workers <= 1`` executes inline (no subprocesses, no pickling
requirement), which is both the fast path for small sweeps and the
hook tests use to count executions.  ``workers > 1`` requires the
spec's ``algorithm`` and ``adversary`` to be picklable — use the
factories in :mod:`repro.experiments.factories`.  ``backend`` selects
the executor explicitly (``"serial"``, ``"pool"``,
``"remote:host:port"``, or a live Backend); results are bit-identical
across backends by construction — the engine's scheduling and
accounting are backend-agnostic, and every backend reassembles in
sweep order.
"""

from __future__ import annotations

import ctypes
import pickle
import signal
import threading
import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.runner import measure_write_all
from repro.experiments.backends import Backend, resolve_backend
from repro.experiments.cache import ResultCache, point_key
from repro.experiments.chaos import ChaosCrash, ChaosPolicy
from repro.experiments.runner import RunPoint, SweepResult
from repro.experiments.spec import SweepSpec

#: Outcome statuses a worker can report (``crash`` is synthesized by
#: the engine when the worker died without reporting, and by the inline
#: path for injected crashes).
_OK, _TIMEOUT, _ERROR, _CRASH = "ok", "timeout", "error", "crash"


@dataclass(frozen=True)
class PointSpec:
    """One picklable (N, P, seed) cell of a sweep grid."""

    sweep: str
    index: int  # position in sweep order; results reassemble by it
    algorithm: Callable
    n: int
    p: int
    seed: int
    adversary: Optional[Callable]
    max_ticks: Optional[int]
    fairness_window: Optional[int]
    fast_forward: bool = True
    compiled: bool = True
    vectorized: "Union[bool, str]" = False
    #: Minimum wall seconds one execution takes (0 = off).  The point
    #: sleeps out any remainder after computing.  Model-invisible, so
    #: it is *not* cache-key material: it exists to give the fabric
    #: benchmarks a calibrated latency-bound workload — dispatch
    #: concurrency measured on any host, including a one-core CI
    #: runner where CPU-bound points cannot overlap.
    point_floor_s: float = 0.0
    #: Optional substitute for ``measure_write_all`` (same signature).
    #: Cache-key material — it changes what the point measures.
    runner: Optional[Callable] = None

    def cache_key(self) -> str:
        return point_key(
            self.sweep, self.algorithm, self.n, self.p, self.seed,
            self.adversary, self.max_ticks, self.fairness_window,
            fast_forward=self.fast_forward,
            compiled=self.compiled,
            vectorized=self.vectorized,
            runner=self.runner,
        )


@dataclass(frozen=True)
class PointFailure:
    """A point that exhausted its attempts and was quarantined.

    ``kind`` is ``"timeout"`` (deadline), ``"error"`` (exception inside
    the point) or ``"crash"`` (the worker process died).  Quarantine is
    per point: the rest of the sweep completes normally.
    """

    index: int
    n: int
    p: int
    seed: int
    kind: str  # "timeout" | "error" | "crash"
    attempts: int
    message: str


@dataclass(frozen=True)
class PointMeta:
    """Provenance of one successful point, aligned with ``points``."""

    index: int
    elapsed_s: float
    cached: bool
    attempts: int


@dataclass
class SweepStats:
    """Execution accounting for one engine run.

    Every recovery event leaves a trace here so it cannot vanish from
    the ``BENCH_*.json`` artifact: per-attempt ``retries``/``timeouts``/
    ``crashes``, quarantined points (``failed``), pool restarts, the
    degraded-serial flag, corrupted cache entries detected on load, and
    (opt-in) the chaos faults injected by kind.
    """

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    timeouts: int = 0
    retries: int = 0
    failed: int = 0
    crashes: int = 0
    pool_restarts: int = 0
    degraded_serial: bool = False
    cache_corrupt: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    #: Leases the remote fabric re-queued past dead/stalled workers
    #: (0 for local backends, which have no lease scheduler).
    requeues: int = 0
    #: Running mean wall seconds per executed point (``None`` when the
    #: run executed nothing) — the ETA estimator's final reading.
    mean_point_s: Optional[float] = None

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    @property
    def quarantined(self) -> int:
        """Points recorded as :class:`PointFailure` (alias of ``failed``)."""
        return self.failed


@dataclass
class EtaEstimator:
    """SweepStats-driven ETA for long sweeps.

    Feeds on the same per-point wall times the engine already accounts
    into :class:`SweepStats`: a running mean over *executed* points
    (cache hits complete instantly and would poison the mean), times
    the work still outstanding.  The serve daemon keeps one of these
    per fleet and surfaces it on the status endpoint.
    """

    total: int
    completed: int = 0
    executed: int = 0
    wall_sum: float = 0.0

    def observe(self, elapsed_s: float, cached: bool = False) -> None:
        self.completed += 1
        if not cached:
            self.executed += 1
            self.wall_sum += elapsed_s

    @property
    def mean_point_s(self) -> Optional[float]:
        return self.wall_sum / self.executed if self.executed else None

    @property
    def eta_s(self) -> Optional[float]:
        mean = self.mean_point_s
        if mean is None:
            return None
        return mean * max(0, self.total - self.completed)

    def render(self) -> str:
        mean, eta = self.mean_point_s, self.eta_s
        if mean is None:
            return f"{self.completed}/{self.total} points"
        return (
            f"{self.completed}/{self.total} points, "
            f"mean {mean:.3f}s/point, eta ~{eta:.0f}s"
        )


@dataclass
class ParallelSweepResult(SweepResult):
    """A :class:`SweepResult` plus the engine's accounting.

    ``points`` contains only the successful points (in sweep order);
    ``failures`` records the rest.  ``meta`` is aligned with ``points``.
    """

    stats: SweepStats = field(default_factory=SweepStats)
    failures: List[PointFailure] = field(default_factory=list)
    meta: List[PointMeta] = field(default_factory=list)


def expand_spec(spec: SweepSpec) -> List[PointSpec]:
    """Flatten a sweep grid into indexed, picklable point specs."""
    return [
        PointSpec(
            sweep=spec.name, index=index, algorithm=spec.algorithm,
            n=n, p=p, seed=seed, adversary=spec.adversary,
            max_ticks=spec.max_ticks,
            fairness_window=spec.fairness_window,
            fast_forward=spec.fast_forward,
            compiled=spec.compiled,
            vectorized=spec.vectorized,
            point_floor_s=getattr(spec, "point_floor_s", 0.0),
            runner=getattr(spec, "runner", None),
        )
        for index, (n, p, seed) in enumerate(spec.points())
    ]


class PointTimeout(Exception):
    """Raised inside a worker when a point exceeds its wall budget."""


class _alarm:
    """Wall-clock guard around one point execution.

    On the main thread (with SIGALRM available) this is the classic
    ``setitimer`` guard: Python-level timeouts cannot preempt a stuck C
    call, but every hot loop in this simulator is pure Python, where a
    pending SIGALRM is delivered between bytecodes.

    Off the main thread — or on platforms without SIGALRM — ``signal``
    is unusable, so the guard degrades to a *soft deadline*: a
    ``threading.Timer`` that async-raises :class:`PointTimeout` in the
    guarded thread via ``PyThreadState_SetAsyncExc`` (same
    between-bytecodes granularity, still cannot preempt C calls).  A
    one-time ``RuntimeWarning`` records the degradation.  Entering the
    guard never raises.
    """

    _soft_warned = False

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self.armed = False
        self._soft_timer: Optional[threading.Timer] = None

    def __enter__(self):
        if self.seconds is None:
            return self
        on_main = threading.current_thread() is threading.main_thread()
        if not on_main or not hasattr(signal, "SIGALRM"):
            self._arm_soft()
            return self
        try:
            self._previous = signal.signal(signal.SIGALRM, self._fire)
            # setitimer returns the timer it displaced; an enclosing
            # _alarm (or any other SIGALRM user) may have one running,
            # and unconditionally zeroing it on exit would silently
            # disarm the outer guard.
            self._old_delay, self._old_interval = signal.setitimer(
                signal.ITIMER_REAL, self.seconds
            )
            self._entered_at = time.monotonic()
            self.armed = True
        except ValueError:
            # signal refused the thread after all — soft deadline.
            self._arm_soft()
        return self

    def __exit__(self, *exc_info):
        if self._soft_timer is not None:
            with self._soft_lock:
                self._soft_armed = False
            self._soft_timer.cancel()
            return False
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            # Restore the handler before re-arming the outer timer so a
            # late firing cannot land on this guard's handler.
            signal.signal(signal.SIGALRM, self._previous)
            if self._old_delay > 0.0:
                elapsed = time.monotonic() - self._entered_at
                remaining = max(self._old_delay - elapsed, 1e-6)
                signal.setitimer(
                    signal.ITIMER_REAL, remaining, self._old_interval
                )
        return False

    def _arm_soft(self) -> None:
        if not _alarm._soft_warned:
            warnings.warn(
                "per-point timeout entered off the main thread: SIGALRM "
                "is unavailable, enforcing a soft threading.Timer "
                "deadline instead (cannot preempt stuck C calls)",
                RuntimeWarning,
                stacklevel=3,
            )
            _alarm._soft_warned = True
        self._soft_lock = threading.Lock()
        self._soft_target = threading.get_ident()
        self._soft_armed = True
        self._soft_timer = threading.Timer(self.seconds, self._soft_fire)
        self._soft_timer.daemon = True
        self._soft_timer.start()

    def _soft_fire(self) -> None:
        with self._soft_lock:
            if not self._soft_armed:
                return
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(self._soft_target),
                ctypes.py_object(PointTimeout),
            )

    @staticmethod
    def _fire(signum, frame):
        raise PointTimeout()


def execute_point(
    point: PointSpec,
    timeout: Optional[float] = None,
    chaos: Optional[ChaosPolicy] = None,
    attempt: int = 1,
) -> Tuple[str, object, float]:
    """Run one point; never raises for timeout/algorithm errors.

    Returns ``(status, payload, elapsed_s)`` where payload is the
    :class:`RunPoint` on success and a diagnostic string otherwise.
    This is the top-level function worker processes execute.  With a
    chaos policy, the injected fault for ``(point.index, attempt)``
    fires before the computation — an injected worker crash never
    returns at all (``os._exit``), which the engine observes as a
    broken pool.
    """
    started = time.perf_counter()
    try:
        with _alarm(timeout):
            if chaos is not None:
                chaos.perturb(point.index, attempt)
            measure = measure_write_all if point.runner is None \
                else point.runner
            measures = measure(
                point.algorithm, point.n, point.p,
                adversary=(
                    None if point.adversary is None
                    else point.adversary(point.seed)
                ),
                max_ticks=point.max_ticks,
                fairness_window=point.fairness_window,
                fast_forward=point.fast_forward,
                compiled=point.compiled,
                vectorized=point.vectorized,
            )
            floor = getattr(point, "point_floor_s", 0.0)
            if floor > 0.0:
                remaining = floor - (time.perf_counter() - started)
                if remaining > 0.0:
                    # Sleep is interruptible by the timeout guard, so a
                    # floor larger than the budget still times out.
                    time.sleep(remaining)
    except PointTimeout:
        return _TIMEOUT, f"exceeded {timeout:.3f}s", \
            time.perf_counter() - started
    except ChaosCrash as exc:
        return _CRASH, str(exc), time.perf_counter() - started
    except Exception:
        return _ERROR, traceback.format_exc(limit=8), \
            time.perf_counter() - started
    elapsed = time.perf_counter() - started
    return _OK, RunPoint.from_measures(measures, seed=point.seed), elapsed


def _check_picklable(point: PointSpec) -> None:
    try:
        pickle.dumps((point.algorithm, point.adversary))
    except Exception as exc:
        raise TypeError(
            "parallel sweeps need picklable algorithm/adversary specs "
            "(module-level classes, functools.partial, or the factories "
            "in repro.experiments.factories — not lambdas); "
            f"got: {exc}"
        ) from None


def run_sweep_parallel(
    spec: SweepSpec,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = 1,
    chaos: Optional[ChaosPolicy] = None,
    max_pool_restarts: int = 3,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    backoff_seed: int = 0,
    backend: Optional[Union[str, Backend]] = None,
    progress: Optional[Callable[[str], None]] = None,
    progress_every: int = 25,
) -> ParallelSweepResult:
    """Execute ``spec`` through the parallel engine.

    Args:
        workers: process count; ``None`` or ``<= 1`` executes inline.
        cache / cache_dir: enable the on-disk result cache (pass either
            a :class:`ResultCache` or a directory path).
        resume: with a cache, load already-completed points instead of
            recomputing them.  ``False`` recomputes (and overwrites)
            every point while still checkpointing progress.
        timeout: per-point wall-clock budget in seconds.
        retries: extra attempts a timed-out/crashed point gets before
            it is quarantined as a :class:`PointFailure`.
        chaos: opt-in deterministic fault injection
            (:class:`~repro.experiments.chaos.ChaosPolicy`); ``None``
            leaves the default path untouched.
        max_pool_restarts: broken-pool rebuilds before the run degrades
            to serial in-process execution for the remaining points.
        backoff_base / backoff_cap / backoff_seed: capped exponential
            backoff between pool rebuilds, with deterministic jitter
            drawn from ``random.Random(backoff_seed)``.
        backend: where attempts execute — ``None`` keeps the legacy
            mapping (``workers <= 1`` is serial in-process, more is a
            local process pool), or pass ``"serial"``, ``"pool"``,
            ``"remote:host:port"`` (a ``python -m repro serve``
            daemon), or an already-built
            :class:`~repro.experiments.backends.Backend`.  Falls back
            to ``spec.backend`` when the spec carries one.  The backend
            is *not* cache-key material: the same point computed
            anywhere lands on the same content-hash entry.
        progress: optional callable fed human-readable ETA lines
            (:class:`EtaEstimator` output) while the sweep runs.
        progress_every: emit a progress line every N settled points.
    """
    started = time.perf_counter()
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    corrupt_before = cache.corrupt_discarded if cache is not None else 0
    points = expand_spec(spec)
    stats = SweepStats(total=len(points))
    results: Dict[int, RunPoint] = {}
    metas: Dict[int, PointMeta] = {}
    failures: List[PointFailure] = []

    eta = EtaEstimator(total=len(points))
    pending: List[PointSpec] = []
    for point in points:
        cached = (
            cache.load(point.sweep, point.cache_key())
            if cache is not None and resume else None
        )
        if cached is not None:
            stats.cache_hits += 1
            results[point.index] = cached
            metas[point.index] = PointMeta(
                index=point.index, elapsed_s=0.0, cached=True, attempts=0,
            )
            eta.observe(0.0, cached=True)
        else:
            pending.append(point)

    def note_injection(point: PointSpec, attempt: int) -> None:
        """Account the chaos fault scheduled for this dispatched attempt.

        The policy's plan is a pure function of (index, attempt), so the
        engine and the worker agree on what fires without a back-channel
        — which is the only way an ``os._exit`` crash can be counted.
        """
        if chaos is None:
            return
        kind = chaos.plan(point.index, attempt)
        if kind is not None:
            stats.injected[kind] = stats.injected.get(kind, 0) + 1

    def record(point: PointSpec, status: str, payload, elapsed: float,
               attempt: int, stored: bool = False) -> bool:
        """Account one attempt; returns True when the point is settled.

        ``stored`` marks results the backend already persisted (the
        serve daemon's shared store); the engine then only accounts the
        chaos corruption the server applied instead of writing locally.
        """
        if status == _OK:
            stats.executed += 1
            results[point.index] = payload
            metas[point.index] = PointMeta(
                index=point.index, elapsed_s=elapsed, cached=False,
                attempts=attempt,
            )
            if cache is not None:
                cache.store(point.sweep, point.cache_key(), payload, elapsed)
                if chaos is not None and chaos.corrupts(point.index):
                    chaos.corrupt_entry(
                        cache.entry_path(point.sweep, point.cache_key())
                    )
                    stats.injected["corrupt"] = (
                        stats.injected.get("corrupt", 0) + 1
                    )
                cache.write_checkpoint(
                    spec.name, done=len(results), total=len(points)
                )
            elif stored and chaos is not None and chaos.corrupts(point.index):
                # The server stored this entry and (same pure draw)
                # corrupted it; count the injection on the client so
                # the soak's books balance without a back-channel.
                stats.injected["corrupt"] = (
                    stats.injected.get("corrupt", 0) + 1
                )
            return True
        if status == _TIMEOUT:
            stats.timeouts += 1
        if status == _CRASH:
            stats.crashes += 1
        if attempt <= retries:
            stats.retries += 1
            return False
        stats.failed += 1
        failures.append(PointFailure(
            index=point.index, n=point.n, p=point.p, seed=point.seed,
            kind=status, attempts=attempt, message=str(payload),
        ))
        return True

    backend_corrupt = 0
    if pending:
        requested = backend if backend is not None else \
            getattr(spec, "backend", None)
        engine, owns = resolve_backend(
            requested, workers=workers, timeout=timeout, chaos=chaos,
            resume=resume, max_pool_restarts=max_pool_restarts,
            backoff_base=backoff_base, backoff_cap=backoff_cap,
            backoff_seed=backoff_seed,
        )
        try:
            if engine.capabilities.requires_picklable:
                _check_picklable(pending[0])
            outstanding = 0
            for point in pending:
                note_injection(point, 1)
                engine.submit(point, 1)
                outstanding += 1
            step = max(1, progress_every)
            while outstanding:
                for res in engine.collect():
                    if res.cached:
                        # The serve daemon answered from its shared
                        # content-addressed store: a global cache hit.
                        outstanding -= 1
                        stats.cache_hits += 1
                        results[res.point.index] = res.payload
                        metas[res.point.index] = PointMeta(
                            index=res.point.index, elapsed_s=0.0,
                            cached=True, attempts=0,
                        )
                        eta.observe(0.0, cached=True)
                    elif record(res.point, res.status, res.payload,
                                res.elapsed, res.attempt,
                                stored=res.stored):
                        outstanding -= 1
                        eta.observe(res.elapsed)
                    else:
                        note_injection(res.point, res.attempt + 1)
                        engine.submit(res.point, res.attempt + 1)
                        continue
                    if progress is not None and (
                        eta.completed % step == 0
                        or eta.completed == eta.total
                    ):
                        progress(eta.render())
            stats.pool_restarts = getattr(engine, "pool_restarts", 0)
            stats.degraded_serial = getattr(engine, "degraded_serial", False)
            stats.requeues = getattr(engine, "requeues", 0)
            backend_corrupt = getattr(engine, "cache_corrupt", 0)
        finally:
            if owns:
                engine.close()

    ordered = [
        results[point.index] for point in points if point.index in results
    ]
    meta = [
        metas[point.index] for point in points if point.index in metas
    ]
    failures.sort(key=lambda failure: failure.index)
    stats.wall_s = time.perf_counter() - started
    stats.mean_point_s = eta.mean_point_s
    if cache is not None:
        stats.cache_corrupt = cache.corrupt_discarded - corrupt_before
        cache.write_checkpoint(
            spec.name, done=len(results), total=len(points)
        )
    # Corrupt entries the server's shared store healed on our behalf.
    stats.cache_corrupt += backend_corrupt
    return ParallelSweepResult(
        spec=spec, points=ordered, stats=stats, failures=failures, meta=meta,
    )
