"""The unified benchmark scenario registry and driver.

Every grid-shaped experiment under ``benchmarks/bench_*.py`` is
registered here as a :class:`BenchScenario` — a bundle of picklable
:class:`~repro.experiments.spec.SweepSpec` s that the parallel engine
can execute, cache and time.  The bench scripts import their scenario
back from this registry for their grid constants, so the pytest
benchmarks and the driver cannot drift apart; the driver
(``benchmarks/driver.py`` / ``python -m repro bench``) runs scenarios
through :func:`repro.experiments.parallel.run_sweep_parallel` and emits
a ``BENCH_<tag>.json`` report (see :mod:`repro.metrics.report`) plus
the usual text tables.

A few benchmarks are *not* grid sweeps and stay bespoke; they are
listed in :data:`EXCLUDED` with the reason.
"""

from __future__ import annotations

import functools
import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core import (
    AlgorithmV,
    AlgorithmVX,
    AlgorithmW,
    AlgorithmX,
    FaultRouting,
    SnapshotAlgorithm,
    TrivialAssignment,
)
from repro.experiments.factories import (
    Budgeted,
    Burst,
    CrashOnly,
    FailureFree,
    Halving,
    NoRestart,
    PersistentCheckpointRunner,
    RandomChurn,
    SparseSchedule,
    SpeedClasses,
    Stalker,
    Starver,
    StaticFaults,
    Thrashing,
)
from repro.experiments.parallel import ParallelSweepResult, run_sweep_parallel
from repro.experiments.spec import SweepSpec
from repro.metrics.report import bench_report, scenario_section


@dataclass(frozen=True)
class BenchScenario:
    """One benchmark experiment as engine-runnable sweeps."""

    tag: str            # e.g. "E2_thm31_lower_bound"
    title: str          # the claim, one line
    source: str         # the bench_*.py that owns the assertions
    specs: Tuple[SweepSpec, ...]
    heavy: bool = False  # excluded from the driver's default set
    #: Registry adversary names (repro.faults.registry) the scenario
    #: exercises; recorded in the report so the regression checker can
    #: verify the baseline's fault models still exist
    #: (``model-tag-missing``).  Empty for pre-registry scenarios.
    adversaries: Tuple[str, ...] = ()

    def total_points(self) -> int:
        return sum(len(list(spec.points())) for spec in self.specs)


def _slack_processors(n: int) -> int:
    """P = N / log^2 N — Lemma 4.2's work-optimality window."""
    return max(1, n // int(math.log2(n)) ** 2)


def _sigma_regimes(n: int) -> List[Tuple[str, int]]:
    """Corollary 4.10/4.11 failure-budget regimes at size ``n``."""
    log_n = math.log2(n)
    return [
        ("F<=P", int(n)),
        ("F~NlogN", int(4 * n * log_n)),
        ("F~N^1.6", int(n ** 1.6) * 4),
    ]


def _build_scenarios() -> Dict[str, BenchScenario]:
    scenarios: List[BenchScenario] = []

    scenarios.append(BenchScenario(
        tag="E1_thrashing",
        title="Example 2.2 — thrashing separates S from S'",
        source="bench_example_2_2_thrashing.py",
        specs=(SweepSpec(
            name="X/thrashing", algorithm=AlgorithmX,
            sizes=(32, 64, 128, 256), adversary=Thrashing(),
            seeds=(0,), max_ticks=1_000_000,
        ),),
    ))

    scenarios.append(BenchScenario(
        tag="E2_thm31_lower_bound",
        title="Theorem 3.1 — halving forces Omega(N log N) from everyone",
        source="bench_theorem_3_1_lower_bound.py",
        specs=tuple(
            SweepSpec(
                name=f"{label}/halving", algorithm=algorithm,
                sizes=(16, 32, 64, 128, 256), adversary=Halving(),
                seeds=(0,), max_ticks=2_000_000,
            )
            for label, algorithm in [
                ("snapshot", SnapshotAlgorithm),
                ("X", AlgorithmX),
                ("VX", AlgorithmVX),
            ]
        ),
    ))

    scenarios.append(BenchScenario(
        tag="E3_thm32_snapshot",
        title="Theorem 3.2 — snapshot algorithm is Theta(N log N)",
        source="bench_theorem_3_2_snapshot.py",
        specs=(
            SweepSpec(
                name="snapshot/halving", algorithm=SnapshotAlgorithm,
                sizes=(16, 32, 64, 128, 256, 512), adversary=Halving(),
                seeds=(0,), max_ticks=2_000_000,
            ),
            SweepSpec(
                name="snapshot/free", algorithm=SnapshotAlgorithm,
                sizes=(16, 32, 64, 128, 256, 512), adversary=FailureFree(),
                seeds=(0,),
            ),
        ),
    ))

    scenarios.append(BenchScenario(
        tag="E4_lemma42_v_failstop",
        title="Lemma 4.2 — V crash-only: S = O(N + P log^2 N)",
        source="bench_lemma_4_2_v_failstop.py",
        specs=(
            SweepSpec(
                name="V/crash-dense", algorithm=AlgorithmV,
                sizes=(64, 128, 256, 512), adversary=CrashOnly(0.02),
                seeds=(1,), max_ticks=2_000_000,
            ),
            SweepSpec(
                name="V/crash-slack", algorithm=AlgorithmV,
                sizes=(64, 128, 256, 512), processors=_slack_processors,
                adversary=CrashOnly(0.02), seeds=(2,),
                max_ticks=2_000_000,
            ),
        ),
    ))

    scenarios.append(BenchScenario(
        tag="E5_thm43_v_restarts",
        title="Theorem 4.3 — V with restarts: marginal work O(log N)/event",
        source="bench_theorem_4_3_v_restarts.py",
        specs=tuple(
            SweepSpec(
                name=f"V/budget-{budget}", algorithm=AlgorithmV,
                sizes=(256,),
                adversary=Budgeted(RandomChurn(0.25, 0.4), budget),
                seeds=(3,), max_ticks=4_000_000,
            )
            for budget in (0, 64, 256, 1024, 4096)
        ),
    ))

    scenarios.append(BenchScenario(
        tag="E6_lemma44_x_termination",
        title="Lemma 4.4 — X terminates in every environment",
        source="bench_lemma_4_4_x_termination.py",
        specs=(
            SweepSpec(name="X/no-failures", algorithm=AlgorithmX,
                      sizes=(128,), adversary=FailureFree(), seeds=(0,),
                      max_ticks=2_000_000),
            SweepSpec(name="X/random-10", algorithm=AlgorithmX,
                      sizes=(128,), adversary=RandomChurn(0.1, 0.3),
                      seeds=(1,), max_ticks=2_000_000),
            SweepSpec(name="X/random-30", algorithm=AlgorithmX,
                      sizes=(128,), adversary=RandomChurn(0.3, 0.5),
                      seeds=(2,), max_ticks=2_000_000),
            SweepSpec(name="X/bursts", algorithm=AlgorithmX,
                      sizes=(128,), adversary=Burst(2, 0.7, 1),
                      seeds=(0,), max_ticks=2_000_000),
            SweepSpec(name="X/thrashing", algorithm=AlgorithmX,
                      sizes=(128,), adversary=Thrashing(), seeds=(0,),
                      max_ticks=2_000_000),
        ),
    ))

    scenarios.append(BenchScenario(
        tag="E7_thm48_x_stalking",
        title="Theorem 4.8 — stalked X hits ~N^{log2 3}",
        source="bench_theorem_4_8_x_stalking.py",
        heavy=True,
        specs=(SweepSpec(
            name="X/stalker", algorithm=AlgorithmX,
            sizes=(16, 32, 64, 128, 256), adversary=Stalker(),
            seeds=(0,), max_ticks=20_000_000,
        ),),
    ))

    scenarios.append(BenchScenario(
        tag="E8_thm47_x_sublinear",
        title="Theorem 4.7 — X with P <= N: S = O(N * P^0.59)",
        source="bench_theorem_4_7_x_sublinear.py",
        heavy=True,
        specs=tuple(
            SweepSpec(
                name=f"X/stalker-p{p}", algorithm=AlgorithmX,
                sizes=(256,), processors=p, adversary=Stalker(),
                seeds=(0,), max_ticks=20_000_000,
            )
            for p in (1, 4, 16, 64, 256)
        ),
    ))

    regime_factories = [
        ("crash2", CrashOnly(0.02), 4),
        ("restarts10", RandomChurn(0.1, 0.3), 5),
        ("thrashing", Thrashing(), 0),
    ]
    scenarios.append(BenchScenario(
        tag="E9_thm49_combined",
        title="Theorem 4.9 — interleaved V+X takes the min of both worlds",
        source="bench_theorem_4_9_combined.py",
        specs=tuple(
            SweepSpec(
                name=f"{label}/{regime}", algorithm=algorithm,
                sizes=(128,), adversary=factory, seeds=(seed,),
                max_ticks=2_000_000,
            )
            for regime, factory, seed in regime_factories
            for label, algorithm in [
                ("V", AlgorithmV), ("X", AlgorithmX), ("VX", AlgorithmVX),
            ]
        ),
    ))

    scenarios.append(BenchScenario(
        tag="E10_corollaries_sigma",
        title="Corollaries 4.10/4.11 — sigma improves with |F|",
        source="bench_corollaries_sigma.py",
        specs=tuple(
            SweepSpec(
                name=f"VX/{label}", algorithm=AlgorithmVX,
                sizes=(128,), adversary=Budgeted(Thrashing(), budget),
                seeds=(0,), max_ticks=4_000_000,
            )
            for label, budget in _sigma_regimes(128)
        ),
    ))

    scenarios.append(BenchScenario(
        tag="E14_lemma45_oversubscription",
        title="Lemma 4.5 — oversubscribed X: S_{N,P} <= ceil(P/N)*S_{N,N}",
        source="bench_lemma_4_5_oversubscription.py",
        specs=tuple(
            SweepSpec(
                name=f"X/{label}-x{multiple}", algorithm=AlgorithmX,
                sizes=(64,), processors=64 * multiple, adversary=factory,
                seeds=(0,), max_ticks=2_000_000,
            )
            for multiple in (1, 2, 4, 8)
            for label, factory in [
                ("burst", Burst(2, 0.8, 1)), ("free", FailureFree()),
            ]
        ),
    ))

    scenarios.append(BenchScenario(
        tag="A1_x_routing",
        title="Ablation — X's PID-bit routing vs degenerate rules",
        source="bench_ablation_x_routing.py",
        heavy=True,
        specs=tuple(
            SweepSpec(
                name=f"X/routing-{routing}",
                algorithm=functools.partial(AlgorithmX, routing=routing),
                sizes=(256,), adversary=Burst(2, 0.9, 1), seeds=(0,),
                max_ticks=4_000_000,
            )
            for routing in ("pid", "random", "left", "right")
        ),
    ))

    scenarios.append(BenchScenario(
        tag="A2_v_chunk",
        title="Ablation — V's elements-per-leaf sweet spot is ~log N",
        source="bench_ablation_v_chunk.py",
        specs=tuple(
            SweepSpec(
                name=f"V/chunk-{chunk}",
                algorithm=functools.partial(AlgorithmV, chunk=chunk),
                sizes=(256,), processors=64, adversary=CrashOnly(0.02),
                seeds=(5,), max_ticks=4_000_000,
            )
            for chunk in (1, 8, 16, 64, 256)
        ),
    ))

    scenarios.append(BenchScenario(
        tag="A3_fairness",
        title="Ablation — fairness window trades vetoes for time",
        source="bench_ablation_fairness.py",
        specs=tuple(
            SweepSpec(
                name=f"VX/window-{'off' if window is None else window}",
                algorithm=AlgorithmVX, sizes=(64,), adversary=Starver(),
                seeds=(0,), max_ticks=2_000_000, fairness_window=window,
            )
            for window in (None, 16, 4, 1)
        ),
    ))

    scenarios.append(BenchScenario(
        tag="A4_x_failstop_conjecture",
        title="Open problem — X under fail-stop: ~N log N log log N?",
        source="bench_open_problem_x_failstop.py",
        heavy=True,
        specs=(
            SweepSpec(
                name="X/norestart-halving", algorithm=AlgorithmX,
                sizes=(32, 64, 128, 256, 512),
                adversary=NoRestart(Halving()), seeds=(0,),
                max_ticks=20_000_000,
            ),
            SweepSpec(
                name="X/norestart-stalker", algorithm=AlgorithmX,
                sizes=(32, 64, 128, 256, 512),
                adversary=NoRestart(Stalker()), seeds=(0,),
                max_ticks=20_000_000,
            ),
        ),
    ))

    scenarios.append(BenchScenario(
        tag="A6_w_vs_v",
        title="Section 4.1 — V beats W under restart churn",
        source="bench_w_vs_v_restarts.py",
        specs=(
            SweepSpec(name="V/free", algorithm=AlgorithmV,
                      sizes=(64, 128, 256), adversary=FailureFree(),
                      seeds=(0,)),
            SweepSpec(name="W/free", algorithm=AlgorithmW,
                      sizes=(64, 128, 256), adversary=FailureFree(),
                      seeds=(0,)),
            SweepSpec(name="V/churn", algorithm=AlgorithmV,
                      sizes=(64, 128, 256), adversary=RandomChurn(0.08, 0.3),
                      seeds=(12,), max_ticks=4_000_000),
            SweepSpec(name="W/churn", algorithm=AlgorithmW,
                      sizes=(64, 128, 256), adversary=RandomChurn(0.08, 0.3),
                      seeds=(12,), max_ticks=4_000_000),
        ),
    ))

    scenarios.append(BenchScenario(
        tag="A7_horizon_sparse",
        title="Event-horizon batching — sparse offline faults, model "
              "invariant with fast-forward on/off",
        source="bench_event_horizon_sparse.py",
        specs=(
            SweepSpec(
                name="X/sched-sparse/ff", algorithm=AlgorithmX,
                sizes=(256, 1024, 4096), processors=64,
                adversary=SparseSchedule(), seeds=(0, 1),
                max_ticks=2_000_000,
            ),
            SweepSpec(
                name="X/sched-sparse/noff", algorithm=AlgorithmX,
                sizes=(256, 1024, 4096), processors=64,
                adversary=SparseSchedule(), seeds=(0, 1),
                max_ticks=2_000_000, fast_forward=False,
            ),
        ),
    ))

    scenarios.append(BenchScenario(
        tag="A8_adaptive_smallsize",
        title="Adaptive dispatch — small sizes where forced vec lost; "
              "auto must match scalar's model exactly",
        source="bench_adaptive_smallsize.py",
        specs=tuple(
            SweepSpec(
                name=f"{label}@sched-sparse/{mode}", algorithm=algorithm,
                sizes=(size,), processors=8,
                adversary=SparseSchedule(), seeds=(0,),
                max_ticks=2_000_000, vectorized=vectorized,
            )
            for label, algorithm, size in [
                ("X", AlgorithmX, 512),
                ("W", AlgorithmW, 1024),
                ("trivial", TrivialAssignment, 256),
            ]
            for mode, vectorized in [("scalar", False), ("auto", "auto")]
        ),
    ))

    scenarios.append(BenchScenario(
        tag="R1_static_proc",
        title="CGP static processor faults — X and froute finish on the "
              "survivors",
        source="bench_fault_frontier.py",
        adversaries=("static-proc",),
        specs=tuple(
            SweepSpec(
                name=f"{label}/static-proc", algorithm=algorithm,
                sizes=(64, 128, 256), adversary=StaticFaults(0.25),
                seeds=(0, 1), max_ticks=2_000_000,
            )
            for label, algorithm in [
                ("X", AlgorithmX), ("froute", FaultRouting),
            ]
        ),
    ))

    scenarios.append(BenchScenario(
        tag="R2_static_mem_routing",
        title="CGP static memory faults — froute routes its certificate "
              "around 25% dead cells",
        source="bench_fault_frontier.py",
        adversaries=("static-mem",),
        specs=(
            SweepSpec(
                name="froute/static-mem", algorithm=FaultRouting,
                sizes=(64, 128, 256),
                adversary=StaticFaults(0.25, 0.25),
                seeds=(0, 1), max_ticks=2_000_000,
            ),
            SweepSpec(
                name="froute/static-mem-only", algorithm=FaultRouting,
                sizes=(64, 128, 256),
                adversary=StaticFaults(0.0, 0.25),
                seeds=(0,), max_ticks=2_000_000,
            ),
        ),
    ))

    scenarios.append(BenchScenario(
        tag="R3_pmem_checkpoint",
        title="PPM checkpoints — Theorem 4.3's restart re-entry work "
              "collapses as checkpoint frequency rises",
        source="bench_fault_frontier.py",
        adversaries=("pmem-churn",),
        specs=tuple(
            SweepSpec(
                name=f"ppm/ck-{interval}", algorithm=TrivialAssignment,
                sizes=(8,), processors=4,
                adversary=RandomChurn(0.05, 0.4), seeds=(7,),
                runner=PersistentCheckpointRunner(interval),
            )
            for interval in (0, 2, 8, 32)
        ),
    ))

    scenarios.append(BenchScenario(
        tag="R4_hetero_speed",
        title="Heterogeneous speeds — stalls cost parallel time, not "
              "pattern size",
        source="bench_fault_frontier.py",
        adversaries=("speed-classes", "none"),
        specs=(
            SweepSpec(
                name="X/speed-classes", algorithm=AlgorithmX,
                sizes=(64, 128, 256), adversary=SpeedClasses(),
                seeds=(0, 1), max_ticks=2_000_000,
            ),
            SweepSpec(
                name="X/uniform", algorithm=AlgorithmX,
                sizes=(64, 128, 256), adversary=FailureFree(),
                seeds=(0,), max_ticks=2_000_000,
            ),
        ),
    ))

    return {scenario.tag: scenario for scenario in scenarios}


SCENARIOS: Dict[str, BenchScenario] = _build_scenarios()

#: Benchmarks that are not Write-All grid sweeps and stay bespoke.
EXCLUDED: Dict[str, str] = {
    "bench_theorem_4_1_simulation.py":
        "exercises the iterated-Write-All simulator on PRAM programs, "
        "not a Write-All sweep grid",
    "bench_section_5_acc_stalking.py":
        "needs a run-specific off-line schedule and asserts a targeted "
        "starvation (unsolved within budget)",
    "bench_machine_micro.py":
        "measures host wall-clock throughput, not model work",
    "bench_ablation_persistent.py":
        "compares the two simulator pipelines on PRAM programs",
}


def get_scenario(tag: str) -> BenchScenario:
    try:
        return SCENARIOS[tag]
    except KeyError:
        raise KeyError(
            f"unknown scenario {tag!r}; known: {sorted(SCENARIOS)}"
        ) from None


def scenario_tags(include_heavy: bool = True) -> List[str]:
    return [
        tag for tag, scenario in sorted(SCENARIOS.items())
        if include_heavy or not scenario.heavy
    ]


def default_scenario_tags() -> List[str]:
    """The driver's default set: every non-heavy scenario."""
    return scenario_tags(include_heavy=False)


def run_scenario(
    scenario: BenchScenario,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = 1,
    chaos=None,
    backend: Optional[str] = None,
) -> Tuple[List[ParallelSweepResult], float]:
    """Run every sweep of one scenario; returns (results, wall seconds).

    ``chaos`` (a :class:`~repro.experiments.chaos.ChaosPolicy`) is the
    opt-in fault-injection hook; leave ``None`` for real measurements.
    ``backend`` selects the executor (``serial``, ``pool``,
    ``remote:host:port``); results are backend-independent.
    """
    started = time.perf_counter()
    results = [
        run_sweep_parallel(
            spec, workers=workers, cache_dir=cache_dir, resume=resume,
            timeout=timeout, retries=retries, chaos=chaos, backend=backend,
        )
        for spec in scenario.specs
    ]
    return results, time.perf_counter() - started


def run_benchmarks(
    tags: Iterable[str],
    tag: str = "local",
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = 1,
    chaos=None,
    backend: Optional[str] = None,
    progress=None,
) -> Tuple[dict, Dict[str, List[ParallelSweepResult]]]:
    """Run scenarios and assemble the ``repro-bench/1`` report.

    Returns ``(report, results_by_scenario)`` — the latter so callers
    (the driver, tests) can also render text tables.
    """
    sections = []
    by_scenario: Dict[str, List[ParallelSweepResult]] = {}
    for scenario_tag in tags:
        scenario = get_scenario(scenario_tag)
        if progress is not None:
            progress(
                f"{scenario.tag}: {len(scenario.specs)} sweeps, "
                f"{scenario.total_points()} points"
            )
        results, wall_s = run_scenario(
            scenario, workers=workers, cache_dir=cache_dir, resume=resume,
            timeout=timeout, retries=retries, chaos=chaos, backend=backend,
        )
        by_scenario[scenario.tag] = results
        sections.append(scenario_section(
            scenario.tag, scenario.title, scenario.source, results, wall_s,
            adversaries=getattr(scenario, "adversaries", ()),
        ))
    report = bench_report(
        tag, sections, workers=workers or 1, backend=backend,
    )
    return report, by_scenario
