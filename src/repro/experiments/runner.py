"""Sweep execution, aggregation, and export."""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.runner import RunMeasures, measure_write_all
from repro.experiments.spec import SweepSpec
from repro.metrics.fitting import fitted_exponent
from repro.metrics.tables import render_table


@dataclass(frozen=True)
class RunPoint:
    """The paper's measures for one (N, P, seed) run."""

    n: int
    p: int
    seed: int
    solved: bool
    completed_work: int
    charged_work: int
    pattern_size: int
    overhead_ratio: float
    parallel_time: int

    #: CSV column -> attribute, in column order.  ``csv_header``,
    #: ``csv_row`` and ``from_csv_row`` all derive from this single
    #: mapping so the three cannot drift apart.
    _CSV_FIELDS = (
        ("n", "n"), ("p", "p"), ("seed", "seed"), ("solved", "solved"),
        ("S", "completed_work"), ("S_prime", "charged_work"),
        ("F", "pattern_size"), ("sigma", "overhead_ratio"),
        ("ticks", "parallel_time"),
    )

    @staticmethod
    def csv_header() -> List[str]:
        return [column for column, _attr in RunPoint._CSV_FIELDS]

    def csv_row(self) -> List[object]:
        row: List[object] = []
        for _column, attr in self._CSV_FIELDS:
            value = getattr(self, attr)
            if attr == "solved":
                value = int(value)
            elif attr == "overhead_ratio":
                value = repr(value)  # full precision: round-trips exactly
            row.append(value)
        return row

    @classmethod
    def from_csv_row(cls, header: Sequence[str], row: Sequence[str]) -> "RunPoint":
        """Parse one exported CSV row back into a ``RunPoint``.

        ``header`` must match :meth:`csv_header` — a mismatch means the
        file was produced by a different schema and is rejected.
        """
        if list(header) != cls.csv_header():
            raise ValueError(
                f"CSV header {list(header)!r} does not match "
                f"{cls.csv_header()!r}"
            )
        values = dict(zip(header, row))
        kwargs: Dict[str, object] = {}
        for column, attr in cls._CSV_FIELDS:
            raw = values[column]
            if attr == "solved":
                kwargs[attr] = bool(int(raw))
            elif attr == "overhead_ratio":
                kwargs[attr] = float(raw)
            else:
                kwargs[attr] = int(raw)
        return cls(**kwargs)  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        return {
            "n": self.n, "p": self.p, "seed": self.seed,
            "solved": self.solved,
            "completed_work": self.completed_work,
            "charged_work": self.charged_work,
            "pattern_size": self.pattern_size,
            "overhead_ratio": self.overhead_ratio,
            "parallel_time": self.parallel_time,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunPoint":
        return cls(
            n=int(data["n"]), p=int(data["p"]), seed=int(data["seed"]),
            solved=bool(data["solved"]),
            completed_work=int(data["completed_work"]),
            charged_work=int(data["charged_work"]),
            pattern_size=int(data["pattern_size"]),
            overhead_ratio=float(data["overhead_ratio"]),
            parallel_time=int(data["parallel_time"]),
        )

    @classmethod
    def from_measures(cls, measures: RunMeasures, seed: int) -> "RunPoint":
        return cls(
            n=measures.n, p=measures.p, seed=seed, solved=measures.solved,
            completed_work=measures.completed_work,
            charged_work=measures.charged_work,
            pattern_size=measures.pattern_size,
            overhead_ratio=measures.overhead_ratio,
            parallel_time=measures.parallel_time,
        )


@dataclass
class SweepResult:
    """All run points of a sweep plus aggregation helpers."""

    spec: SweepSpec
    points: List[RunPoint]

    def cells(self) -> List[Tuple[int, int]]:
        """The distinct (N, P) cells, in sweep order."""
        seen: Dict[Tuple[int, int], None] = {}
        for point in self.points:
            seen.setdefault((point.n, point.p), None)
        return list(seen)

    def points_at(self, n: int, p: int) -> List[RunPoint]:
        return [pt for pt in self.points if pt.n == n and pt.p == p]

    def worst_work(self, n: int, p: int) -> int:
        """max S over seeds — Definition 2.3's worst case."""
        return max(pt.completed_work for pt in self.points_at(n, p))

    def mean_work(self, n: int, p: int) -> float:
        cell = self.points_at(n, p)
        return sum(pt.completed_work for pt in cell) / len(cell)

    def all_solved(self) -> bool:
        return all(pt.solved for pt in self.points)

    def fitted_exponent(self, worst: bool = True) -> float:
        """Growth exponent of (worst-case) work against N."""
        cells = self.cells()
        sizes = [n for n, _p in cells]
        works = [
            self.worst_work(n, p) if worst else self.mean_work(n, p)
            for n, p in cells
        ]
        return fitted_exponent(sizes, works)

    def table(self) -> str:
        rows = []
        for n, p in self.cells():
            cell = self.points_at(n, p)
            rows.append([
                n, p, len(cell),
                max(pt.completed_work for pt in cell),
                round(sum(pt.completed_work for pt in cell) / len(cell), 1),
                max(pt.pattern_size for pt in cell),
                round(max(pt.overhead_ratio for pt in cell), 3),
                sum(1 for pt in cell if not pt.solved),
            ])
        return render_table(
            ["N", "P", "runs", "S worst", "S mean", "|F| worst",
             "sigma worst", "DNF"],
            rows,
            title=f"sweep: {self.spec.name}",
        )

    def export_csv(self, path: str) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(RunPoint.csv_header())
            for point in self.points:
                writer.writerow(point.csv_row())


def run_one_point(spec: SweepSpec, n: int, p: int, seed: int) -> RunPoint:
    """Execute a single sweep point.

    Both the serial loop below and the parallel engine's workers call
    this, so a point's result is by construction independent of which
    path executed it.
    """
    measure = measure_write_all if spec.runner is None else spec.runner
    measures = measure(
        spec.algorithm, n, p,
        adversary=spec.adversary_for(seed),
        max_ticks=spec.max_ticks,
        fairness_window=spec.fairness_window,
        fast_forward=spec.fast_forward,
        compiled=spec.compiled,
        vectorized=spec.vectorized,
    )
    return RunPoint.from_measures(measures, seed=seed)


def run_sweep(spec: SweepSpec) -> SweepResult:
    """Execute every (N, seed) run of the sweep."""
    points = [
        run_one_point(spec, n, p, seed) for n, p, seed in spec.points()
    ]
    return SweepResult(spec=spec, points=points)
