"""Sweep execution, aggregation, and export."""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.runner import solve_write_all
from repro.experiments.spec import SweepSpec
from repro.metrics.fitting import fitted_exponent
from repro.metrics.tables import render_table


@dataclass(frozen=True)
class RunPoint:
    """The paper's measures for one (N, P, seed) run."""

    n: int
    p: int
    seed: int
    solved: bool
    completed_work: int
    charged_work: int
    pattern_size: int
    overhead_ratio: float
    parallel_time: int

    @staticmethod
    def csv_header() -> List[str]:
        return [
            "n", "p", "seed", "solved", "S", "S_prime", "F",
            "sigma", "ticks",
        ]

    def csv_row(self) -> List[object]:
        return [
            self.n, self.p, self.seed, int(self.solved),
            self.completed_work, self.charged_work, self.pattern_size,
            f"{self.overhead_ratio:.6f}", self.parallel_time,
        ]


@dataclass
class SweepResult:
    """All run points of a sweep plus aggregation helpers."""

    spec: SweepSpec
    points: List[RunPoint]

    def cells(self) -> List[Tuple[int, int]]:
        """The distinct (N, P) cells, in sweep order."""
        seen: Dict[Tuple[int, int], None] = {}
        for point in self.points:
            seen.setdefault((point.n, point.p), None)
        return list(seen)

    def points_at(self, n: int, p: int) -> List[RunPoint]:
        return [pt for pt in self.points if pt.n == n and pt.p == p]

    def worst_work(self, n: int, p: int) -> int:
        """max S over seeds — Definition 2.3's worst case."""
        return max(pt.completed_work for pt in self.points_at(n, p))

    def mean_work(self, n: int, p: int) -> float:
        cell = self.points_at(n, p)
        return sum(pt.completed_work for pt in cell) / len(cell)

    def all_solved(self) -> bool:
        return all(pt.solved for pt in self.points)

    def fitted_exponent(self, worst: bool = True) -> float:
        """Growth exponent of (worst-case) work against N."""
        cells = self.cells()
        sizes = [n for n, _p in cells]
        works = [
            self.worst_work(n, p) if worst else self.mean_work(n, p)
            for n, p in cells
        ]
        return fitted_exponent(sizes, works)

    def table(self) -> str:
        rows = []
        for n, p in self.cells():
            cell = self.points_at(n, p)
            rows.append([
                n, p, len(cell),
                max(pt.completed_work for pt in cell),
                round(sum(pt.completed_work for pt in cell) / len(cell), 1),
                max(pt.pattern_size for pt in cell),
                round(max(pt.overhead_ratio for pt in cell), 3),
                sum(1 for pt in cell if not pt.solved),
            ])
        return render_table(
            ["N", "P", "runs", "S worst", "S mean", "|F| worst",
             "sigma worst", "DNF"],
            rows,
            title=f"sweep: {self.spec.name}",
        )

    def export_csv(self, path: str) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(RunPoint.csv_header())
            for point in self.points:
                writer.writerow(point.csv_row())


def run_sweep(spec: SweepSpec) -> SweepResult:
    """Execute every (N, seed) run of the sweep."""
    points: List[RunPoint] = []
    for n in spec.sizes:
        p = spec.processors_for(n)
        for seed in spec.seeds:
            result = solve_write_all(
                spec.algorithm(), n, p,
                adversary=spec.adversary_for(seed),
                max_ticks=spec.max_ticks,
                fairness_window=spec.fairness_window,
            )
            points.append(
                RunPoint(
                    n=n, p=p, seed=seed, solved=result.solved,
                    completed_work=result.completed_work,
                    charged_work=result.charged_work,
                    pattern_size=result.pattern_size,
                    overhead_ratio=result.overhead_ratio,
                    parallel_time=result.parallel_time,
                )
            )
    return SweepResult(spec=spec, points=points)
