"""Declarative experiment sweeps over the Write-All algorithms.

The benchmark harness hard-codes each of the paper's experiments; this
package provides the general machinery for *new* questions: sweep
instance sizes, processor counts, adversaries and seeds; aggregate the
paper's measures per configuration (worst case over seeds, per
Definition 2.3); fit growth exponents; export CSV.

Example::

    from repro.experiments import SweepSpec, run_sweep
    from repro.core import AlgorithmX
    from repro.faults import RandomAdversary

    spec = SweepSpec(
        name="x-under-churn",
        algorithm=AlgorithmX,
        sizes=[64, 128, 256],
        processors=lambda n: n,
        adversary=lambda seed: RandomAdversary(0.1, 0.3, seed=seed),
        seeds=range(5),
    )
    result = run_sweep(spec)
    print(result.table())
    print(result.fitted_exponent())

Large sweeps go through the parallel engine instead — same results,
fanned out over worker processes with on-disk caching and resume::

    from repro.experiments import run_sweep_parallel
    from repro.experiments.factories import RandomChurn

    spec = SweepSpec(..., adversary=RandomChurn(0.1, 0.3))
    result = run_sweep_parallel(spec, workers=4, cache_dir=".sweep-cache")
    print(result.stats.hit_rate)

The engine executes through a pluggable executor seam — pass
``backend="serial" | "pool" | "remote:host:port"`` to fan a sweep out
over a ``python -m repro serve`` daemon's worker fleet with the same
bit-identical results.

See :mod:`repro.experiments.parallel` (the engine),
:mod:`repro.experiments.backends` (the executor seam),
:mod:`repro.experiments.serve` / :mod:`repro.experiments.worker` (the
distributed fabric), :mod:`repro.experiments.cache` (content-hashed
result store), :mod:`repro.experiments.factories` (picklable adversary
factories), :mod:`repro.experiments.chaos` (deterministic fault
injection for the engine itself) and :mod:`repro.experiments.bench`
(the benchmark scenario registry).
"""

from repro.experiments.spec import SweepSpec
from repro.experiments.runner import (
    RunPoint,
    SweepResult,
    run_one_point,
    run_sweep,
)
from repro.experiments.backends import (
    AttemptResult,
    Backend,
    BackendCapabilities,
    PoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.experiments.cache import ResultCache, fingerprint, point_key
from repro.experiments.chaos import ChaosPolicy, run_soak
from repro.experiments.parallel import (
    EtaEstimator,
    ParallelSweepResult,
    PointFailure,
    PointMeta,
    PointSpec,
    SweepStats,
    expand_spec,
    run_sweep_parallel,
)

__all__ = [
    "AttemptResult",
    "Backend",
    "BackendCapabilities",
    "ChaosPolicy",
    "EtaEstimator",
    "ParallelSweepResult",
    "PointFailure",
    "PointMeta",
    "PointSpec",
    "PoolBackend",
    "ResultCache",
    "RunPoint",
    "SerialBackend",
    "SweepResult",
    "SweepSpec",
    "SweepStats",
    "expand_spec",
    "fingerprint",
    "point_key",
    "resolve_backend",
    "run_one_point",
    "run_soak",
    "run_sweep",
    "run_sweep_parallel",
]
