"""Declarative experiment sweeps over the Write-All algorithms.

The benchmark harness hard-codes each of the paper's experiments; this
package provides the general machinery for *new* questions: sweep
instance sizes, processor counts, adversaries and seeds; aggregate the
paper's measures per configuration (worst case over seeds, per
Definition 2.3); fit growth exponents; export CSV.

Example::

    from repro.experiments import SweepSpec, run_sweep
    from repro.core import AlgorithmX
    from repro.faults import RandomAdversary

    spec = SweepSpec(
        name="x-under-churn",
        algorithm=AlgorithmX,
        sizes=[64, 128, 256],
        processors=lambda n: n,
        adversary=lambda seed: RandomAdversary(0.1, 0.3, seed=seed),
        seeds=range(5),
    )
    result = run_sweep(spec)
    print(result.table())
    print(result.fitted_exponent())
"""

from repro.experiments.spec import SweepSpec
from repro.experiments.runner import RunPoint, SweepResult, run_sweep

__all__ = ["RunPoint", "SweepResult", "SweepSpec", "run_sweep"]
