"""Sweep specifications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.core.base import WriteAllAlgorithm

#: Processor count: a constant or a function of N.
ProcessorRule = Union[int, Callable[[int], int]]
#: Adversary factory: called per (seed) — return None for failure-free.
AdversaryFactory = Callable[[int], Optional[object]]


@dataclass
class SweepSpec:
    """A grid of Write-All runs to execute and aggregate.

    Attributes:
        name: identifier used in tables and CSV exports.
        algorithm: the algorithm class (instantiated fresh per run —
            algorithms may hold incidental state, e.g. ACC's incarnation
            counters).
        sizes: instance sizes N (powers of two).
        processors: P, constant or ``f(n)``.
        adversary: factory called with the seed; ``None``/returning
            ``None`` means failure-free.
        seeds: seeds swept per (N, P) cell; the aggregate takes the
            worst case across them (Definition 2.3 takes maxima over
            failure patterns).
        max_ticks: per-run tick budget (``None``: the runner default).
        fairness_window: optional machine fairness guarantee.
        fast_forward: event-horizon tick batching (the machine default;
            ``False`` is the ``--no-fast-forward`` escape hatch).
        compiled: compiled-kernel lane for algorithms that ship one
            (the default; ``False`` is the ``--no-compiled`` escape
            hatch forcing the generator protocol).
        vectorized: numpy batch lane for algorithms that ship a
            vector program (opt-in ``--vectorized``; needs the
            optional numpy extra).  The string ``"auto"`` selects
            per-window adaptive dispatch (``--lane auto``), which
            degrades silently to the scalar compiled lane without
            numpy.
        backend: preferred executor backend for this sweep
            (``"serial"``, ``"pool"``, ``"remote:host:port"``); ``None``
            defers to the engine's ``workers`` mapping.  An explicit
            ``backend=`` argument to the engine wins over this.  Not
            cache-key material — results are backend-independent.
        point_floor_s: minimum wall-clock per point, enforced by
            sleeping out the remainder *after* the measures are taken.
            Zero (the default) is a no-op.  This exists for the
            distributed-fabric benchmarks: it pins per-point latency so
            1 -> N worker scaling measures dispatch concurrency rather
            than this host's core count.  Model-invisible and not
            cache-key material.
        runner: optional picklable callable with the signature of
            :func:`repro.core.runner.measure_write_all`, substituted
            for it when executing each point — how a sweep measures
            something other than a Write-All run (e.g. the
            persistent-memory checkpoint sweep runs a whole simulated
            program per point via
            :class:`repro.experiments.factories.PersistentCheckpointRunner`).
            Cache-key material, since it changes what a point measures.
    """

    name: str
    algorithm: Callable[[], WriteAllAlgorithm]
    sizes: Sequence[int]
    processors: ProcessorRule = lambda n: n
    adversary: Optional[AdversaryFactory] = None
    seeds: Iterable[int] = (0,)
    max_ticks: Optional[int] = None
    fairness_window: Optional[int] = None
    fast_forward: bool = True
    compiled: bool = True
    vectorized: "Union[bool, str]" = False
    backend: Optional[str] = None
    point_floor_s: float = 0.0
    runner: Optional[Callable] = None

    def processors_for(self, n: int) -> int:
        if callable(self.processors):
            return max(1, int(self.processors(n)))
        return max(1, int(self.processors))

    def adversary_for(self, seed: int):
        if self.adversary is None:
            return None
        return self.adversary(seed)

    def points(self) -> Iterator[Tuple[int, int, int]]:
        """Yield every ``(n, p, seed)`` of the grid, in sweep order.

        This is the single definition of sweep order: the serial runner
        and the parallel engine both iterate it, which is what makes
        their outputs comparable point-by-point.
        """
        seeds = list(self.seeds)
        for n in self.sizes:
            p = self.processors_for(n)
            for seed in seeds:
                yield n, p, seed
