"""Line-delimited JSON wire protocol for the distributed sweep fabric.

One message per line, UTF-8 JSON with a mandatory ``type`` key.
Callables and results (algorithm classes, adversary factories,
:class:`~repro.experiments.runner.RunPoint` s) travel as base64-pickle
blobs inside the JSON — the same trust model as
``ProcessPoolExecutor``: the server and its workers are one
administrative domain.  **Do not expose a serve port to untrusted
networks** — anyone who can connect can execute code, exactly as if
they could spawn processes on the host.

Exporting :data:`TOKEN_ENV` (``REPRO_SERVE_TOKEN``) on the daemon adds
a shared-secret gate: the hello must carry the matching ``token`` or
the connection is rejected (constant-time compare) before any job
payload is unpacked.  That narrows *who* can speak to the daemon; it
does not sandbox what an authenticated peer says — the pickle trust
model above still applies.

The unit of work is a :class:`Job`: a small frozen dataclass with a
``run(timeout, chaos, attempt) -> (status, payload, elapsed)`` method,
executed inside a worker's sandbox subprocess.  :class:`PointJob` wraps
one sweep point; other subsystems (the fuzzer) ship their own job
types over the same fabric.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import socket
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Protocol identifier sent in the hello/welcome handshake.
PROTOCOL = "repro-serve/1"

#: Environment variable holding the fabric's shared secret.  When set
#: on the daemon, every hello must carry the same value in its
#: ``token`` field or the connection is rejected before any job payload
#: is read; when set on a client/worker, :func:`connect` sends it
#: automatically.
TOKEN_ENV = "REPRO_SERVE_TOKEN"

#: Hard cap on one message line (64 MiB) — a framing error (binary
#: garbage on the port) fails fast instead of buffering forever.
MAX_LINE = 64 * 1024 * 1024


def pack(obj: Any) -> str:
    """Pickle ``obj`` to a base64 string for embedding in JSON."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack(blob: Optional[str]) -> Any:
    """Inverse of :func:`pack`; ``None`` passes through."""
    if blob is None:
        return None
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


class WireError(ConnectionError):
    """The peer closed the connection or sent a malformed frame."""


class Connection:
    """A line-framed JSON message stream over one socket.

    Sends are serialized by a lock so multiple server threads (a cache
    hit on the client handler, a completion fanned out from a worker
    handler) can safely share one client connection.  Receives are
    expected from a single thread.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._reader = sock.makefile("rb")
        import threading

        self._send_lock = threading.Lock()

    def send(self, message: Dict[str, Any]) -> None:
        data = json.dumps(message, separators=(",", ":")).encode("utf-8")
        with self._send_lock:
            self.sock.sendall(data + b"\n")

    def recv(self) -> Dict[str, Any]:
        line = self._reader.readline(MAX_LINE + 1)
        if not line:
            raise WireError("connection closed by peer")
        if len(line) > MAX_LINE:
            raise WireError(f"frame exceeds {MAX_LINE} bytes")
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError(f"malformed frame: {exc}") from None
        if not isinstance(message, dict) or "type" not in message:
            raise WireError("frame is not a typed JSON object")
        return message

    def close(self) -> None:
        for closer in (self._reader.close, self.sock.close):
            try:
                closer()
            except OSError:
                pass


def connect(host: str, port: int, role: str,
            name: Optional[str] = None,
            timeout: Optional[float] = None,
            token: Optional[str] = None) -> Connection:
    """Dial a serve daemon and complete the hello/welcome handshake.

    ``token`` is the fabric's shared secret; it defaults to the
    :data:`TOKEN_ENV` environment variable, so a deployment that
    exports the same value on daemon and clients authenticates without
    any call-site changes.
    """
    if token is None:
        token = os.environ.get(TOKEN_ENV)
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    conn = Connection(sock)
    hello: Dict[str, Any] = {"type": "hello", "role": role,
                             "protocol": PROTOCOL}
    if name is not None:
        hello["name"] = name
    if token:
        hello["token"] = token
    conn.send(hello)
    welcome = conn.recv()
    if welcome.get("type") == "error":
        conn.close()
        raise WireError(
            f"server refused connection: {welcome.get('error')!r}"
        )
    if welcome.get("type") != "welcome":
        conn.close()
        raise WireError(f"expected welcome, got {welcome.get('type')!r}")
    if welcome.get("protocol") != PROTOCOL:
        conn.close()
        raise WireError(
            f"protocol mismatch: server speaks "
            f"{welcome.get('protocol')!r}, this client {PROTOCOL!r}"
        )
    return conn


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` (or ``"remote:host:port"``) -> ``(host, port)``."""
    text = address
    if text.startswith("remote:"):
        text = text[len("remote:"):]
    host, _, port_text = text.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(
            f"bad address {address!r}: expected host:port, "
            f"e.g. 127.0.0.1:7341"
        )
    return host, int(port_text)


@dataclass(frozen=True)
class PointJob:
    """One sweep point as a fabric job.

    ``run`` delegates to the live ``parallel.execute_point`` (module
    attribute lookup, same monkeypatch hook as the local backends) and
    keeps the chaos-free call signature at ``(point, timeout)``.
    """

    point: object

    def run(self, timeout: Optional[float] = None, chaos=None,
            attempt: int = 1) -> Tuple[str, object, float]:
        import repro.experiments.parallel as parallel

        if chaos is None:
            return parallel.execute_point(self.point, timeout)
        return parallel.execute_point(self.point, timeout, chaos, attempt)
