"""Deterministic fault injection for the experiment engine itself.

The paper's subject is computation that makes progress while an
adversary crashes and restarts processors; the sweep/bench harness that
produces every ``BENCH_*.json`` deserves the same treatment.  This
module is the harness's adversary: a seeded, deterministic
:class:`ChaosPolicy` that injects

* **worker crashes** — ``os._exit`` inside ``execute_point`` (the
  process-pool equivalent of a fail-stop fault; inline runs raise
  :class:`ChaosCrash` instead so the driving process survives),
* **stalls** — a busy-wait past the per-point deadline, exercising the
  timeout guard,
* **transient errors** — a raised :class:`ChaosError`, exercising the
  retry path, and
* **cache corruption** — truncating or bit-flipping a just-written
  result-cache entry, exercising checksum detection and self-healing
  recompute on resume,
* **worker kills** — fail-stopping an entire remote worker process
  (supervisor, session and sandbox) on the distributed fabric,
  exercising the serve daemon's lease re-queue path; on local
  backends, which have no worker session to kill, the same plan
  degrades to an ordinary injected crash,

on a schedule that is a pure function of ``(seed, point index,
attempt)``.  Like the PRAM adversaries in :mod:`repro.faults`, the
policy never consumes global random state and never depends on
execution order, so the same seed injects the same faults whether the
sweep runs inline, across four workers, or resumed after a kill — which
is what lets :func:`run_soak` assert bit-identical convergence.

``python -m repro chaos`` runs the soak: a fault-free serial baseline,
a chaos-injected parallel pass, and a resume pass over the (partially
corrupted) cache, asserting all three produce identical points.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pathlib
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Exit status used for injected worker crashes — distinctive in logs.
CHAOS_EXIT_CODE = 113

#: Execution-fault kinds, in threshold order (see ChaosPolicy.plan).
#: ``worker-kill`` is appended *after* the original three so schedules
#: drawn with ``worker_kill=0`` are bit-identical to pre-fabric seeds.
EXEC_KINDS = ("crash", "stall", "error", "worker-kill")


class ChaosError(RuntimeError):
    """An injected transient failure (retryable by design)."""


class ChaosCrash(RuntimeError):
    """Inline stand-in for an injected worker crash.

    In a pool worker the policy calls ``os._exit`` — a real fail-stop.
    Inline (``workers <= 1`` or the engine's degraded-serial mode) that
    would kill the driving process, so the crash surfaces as this
    exception and is accounted with ``kind="crash"``.
    """


def _unit(seed: int, *parts: object) -> float:
    """A uniform [0, 1) draw that is a pure function of its arguments.

    Hash-derived rather than ``random.Random`` so there is no stream to
    keep in sync: any party (worker, parent, a resumed run) computes the
    same draw from the same coordinates.
    """
    material = "|".join(str(part) for part in (seed,) + parts)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:7], "big") / float(1 << 56)


@dataclass(frozen=True)
class ChaosPolicy:
    """A seeded, order-independent fault schedule for sweep points.

    Frozen and scalar-only, so it pickles across the process boundary
    and fingerprints stably.  ``plan(index, attempt)`` is consulted by
    the worker (to act) and by the engine (to account) and both see the
    same answer; injection stops after ``max_faults_per_point``
    attempts, which guarantees every point eventually computes cleanly
    when ``retries`` is at least that large.
    """

    seed: int = 0
    crash: float = 0.0    # P(injected worker crash) per attempt
    stall: float = 0.0    # P(busy-wait past the deadline) per attempt
    error: float = 0.0    # P(transient exception) per attempt
    corrupt: float = 0.0  # P(corrupting the point's cache entry)
    stall_s: float = 5.0  # how long an injected stall spins
    max_faults_per_point: int = 2
    worker_kill: float = 0.0  # P(killing the whole remote worker)

    def plan(self, index: int, attempt: int) -> Optional[str]:
        """The fault injected at ``(index, attempt)``, or ``None``."""
        if attempt > self.max_faults_per_point:
            return None
        draw = _unit(self.seed, "exec", index, attempt)
        edge = 0.0
        for kind, rate in zip(EXEC_KINDS,
                              (self.crash, self.stall, self.error,
                               self.worker_kill)):
            edge += rate
            if draw < edge:
                return kind
        return None

    def corrupts(self, index: int) -> bool:
        """Whether point ``index``'s cache entry gets corrupted."""
        return _unit(self.seed, "corrupt", index) < self.corrupt

    def perturb(self, index: int, attempt: int) -> None:
        """Act on the plan, inside the worker's timeout guard."""
        kind = self.plan(index, attempt)
        if kind is None:
            return
        if kind == "worker-kill":
            # On the remote fabric the *session* acts on this plan (it
            # fail-stops the whole worker before executing, and only on
            # the job's first lease — see repro.experiments.worker); the
            # sandbox subprocess it hands work to is marked with this
            # env var so the same draw is not acted on twice.  Local
            # backends have no worker session, so the kill degrades to
            # an ordinary injected crash.
            if os.environ.get("REPRO_REMOTE_WORKER"):
                return
            kind = "crash"
        if kind == "crash":
            if multiprocessing.parent_process() is not None:
                os._exit(CHAOS_EXIT_CODE)
            raise ChaosCrash(
                f"chaos: injected crash (point {index}, attempt {attempt})"
            )
        if kind == "stall":
            # A busy-wait, not time.sleep: interruptible both by SIGALRM
            # (delivered between bytecodes) and by the soft thread
            # deadline (PyThreadState_SetAsyncExc, same granularity).
            deadline = time.monotonic() + self.stall_s
            while time.monotonic() < deadline:
                pass
            return
        raise ChaosError(
            f"chaos: injected transient error "
            f"(point {index}, attempt {attempt})"
        )

    def corrupt_entry(self, path: os.PathLike) -> str:
        """Corrupt the file at ``path`` deterministically.

        Truncation models a kill mid-write on a non-atomic filesystem;
        a bit flip models silent media/transfer corruption that still
        parses as JSON and is only caught by the entry checksum.
        """
        path = pathlib.Path(path)
        data = path.read_bytes()
        if len(data) < 8 or _unit(self.seed, "mode", path.name) < 0.5:
            path.write_bytes(data[: len(data) // 2])
            return "truncate"
        position = len(data) // 2
        flipped = bytes([data[position] ^ 0x20])
        path.write_bytes(data[:position] + flipped + data[position + 1:])
        return "bitflip"

    def planned(self, total_points: int) -> Dict[str, int]:
        """First-attempt injection counts over a grid of ``total_points``.

        First attempts always execute, so these injections are certain;
        later-attempt plans only fire if the point is retried.
        """
        counts: Dict[str, int] = {}
        for index in range(total_points):
            kind = self.plan(index, 1)
            if kind is not None:
                counts[kind] = counts.get(kind, 0) + 1
            if self.corrupts(index):
                counts["corrupt"] = counts.get("corrupt", 0) + 1
        return counts


def ensure_coverage(
    seed: int,
    total_points: int,
    require: Sequence[str] = ("crash", "stall", "corrupt"),
    attempts: int = 256,
    **rates: float,
) -> ChaosPolicy:
    """The first policy at ``seed, seed+1, ...`` planning every required kind.

    A soak that must witness at least one crash, one timeout and one
    corrupted entry cannot rely on raw rates over a small grid; this
    walks seeds deterministically until the first-attempt plan covers
    ``require``.
    """
    for offset in range(attempts):
        policy = ChaosPolicy(seed=seed + offset, **rates)
        planned = policy.planned(total_points)
        if all(planned.get(kind, 0) > 0 for kind in require):
            return policy
    raise RuntimeError(
        f"no chaos seed in [{seed}, {seed + attempts}) plans all of "
        f"{tuple(require)} over {total_points} points; raise the rates"
    )


@dataclass
class SoakOutcome:
    """One soak iteration's verdict and accounting."""

    converged: bool
    policy: ChaosPolicy
    planned: Dict[str, int]
    injected: Dict[str, int]
    healed_corruptions: int
    problems: List[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "CONVERGED" if self.converged else "DIVERGED"
        injected = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.injected.items())
        ) or "none"
        lines = [
            f"{verdict}: chaos seed {self.policy.seed}, "
            f"injected {injected}, "
            f"{self.healed_corruptions} corrupted entr"
            f"{'y' if self.healed_corruptions == 1 else 'ies'} "
            f"detected and healed",
        ]
        lines.extend(f"  PROBLEM: {problem}" for problem in self.problems)
        return "\n".join(lines)


def run_soak(
    workers: int = 2,
    chaos_seed: int = 0,
    sizes: Sequence[int] = (8, 16, 32, 64),
    seeds: Sequence[int] = (0, 1, 2, 3),
    timeout: float = 2.0,
    retries: int = 8,
    cache_dir: Optional[os.PathLike] = None,
    crash: float = 0.15,
    stall: float = 0.10,
    error: float = 0.10,
    corrupt: float = 0.25,
    worker_kill: float = 0.0,
    backend: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> SoakOutcome:
    """One chaos soak iteration; asserts the engine converges under fire.

    Three passes over the same grid:

    1. fault-free serial baseline (:func:`repro.experiments.run_sweep`);
    2. chaos-injected parallel pass — crashes, stalls, transient errors
       during execution, plus corruption of freshly written cache
       entries;
    3. resume pass over the surviving cache — corrupted entries must be
       detected by checksum, recomputed, and healed.

    Convergence means passes 2 and 3 both produced points bit-identical
    to pass 1, nothing was quarantined, and every injected corruption
    was detected.  The grid and all draws derive from ``chaos_seed``,
    so a failure reproduces exactly.

    ``backend="remote"`` self-hosts the distributed fabric for pass 2:
    an in-process serve daemon owning the cache, ``workers`` spawned
    CLI worker subprocesses, and the chaos pass running as a remote
    client.  ``worker_kill`` then injects whole-worker fail-stops —
    the supervisor restarts the session, the server re-queues the
    abandoned lease, and the soak asserts the books balance.  Any
    other ``backend`` string is handed to the engine verbatim.
    """
    from repro.core import AlgorithmX
    from repro.experiments.factories import RandomChurn
    from repro.experiments.parallel import run_sweep_parallel
    from repro.experiments.runner import run_sweep
    from repro.experiments.spec import SweepSpec

    def emit(line: str) -> None:
        if log is not None:
            log(line)

    remote = backend == "remote"
    spec = SweepSpec(
        name="chaos-soak",
        algorithm=AlgorithmX,
        sizes=tuple(sizes),
        processors=lambda n: max(2, n // 4),
        adversary=RandomChurn(0.15, 0.4),
        seeds=tuple(seeds),
        max_ticks=200_000,
    )
    total = len(list(spec.points()))
    require = ["crash", "stall", "corrupt"]
    if worker_kill > 0.0:
        require.append("worker-kill")
    policy = ensure_coverage(
        chaos_seed, total, require=tuple(require),
        crash=crash, stall=stall, error=error, corrupt=corrupt,
        worker_kill=worker_kill,
        stall_s=max(4.0 * timeout, 2.0),
    )
    planned = policy.planned(total)
    emit(f"grid: {total} points; chaos seed {policy.seed}; "
         f"planned first-attempt injections: {planned}")

    serial = run_sweep(spec)

    owns_cache_dir = cache_dir is None
    root = pathlib.Path(
        tempfile.mkdtemp(prefix="repro-chaos-") if owns_cache_dir
        else cache_dir
    )
    problems: List[str] = []
    server = None
    fleet: List[object] = []
    try:
        if remote:
            from repro.experiments.serve import SweepServer
            from repro.experiments.worker import spawn_worker

            # The daemon owns the cache (the shared content-addressed
            # store); the client runs cache-less and trusts the
            # stored/healed accounting flowing back over the wire.
            server = SweepServer(cache_dir=root)
            server.start()
            emit(f"serve daemon at {server.address}; "
                 f"spawning {max(2, workers)} worker(s)")
            for index in range(max(2, workers)):
                fleet.append(spawn_worker(
                    server.address, name=f"soak-w{index}",
                ))
            stormy = run_sweep_parallel(
                spec, timeout=timeout, retries=retries, chaos=policy,
                backend=f"remote:{server.address}",
            )
        else:
            stormy = run_sweep_parallel(
                spec, workers=workers, cache_dir=root,
                timeout=timeout, retries=retries, chaos=policy,
                backoff_base=0.01, backoff_cap=0.25,
                backend=backend,
            )
        emit(f"chaos pass: {stormy.stats.executed} executed, "
             f"{stormy.stats.retries} retries, "
             f"{stormy.stats.pool_restarts} pool restarts, "
             f"{stormy.stats.requeues} lease re-queues, "
             f"injected {stormy.stats.injected}")
        if stormy.failures:
            problems.append(
                f"chaos pass quarantined {len(stormy.failures)} point(s): "
                + ", ".join(
                    f"(N={f.n}, P={f.p}, seed={f.seed}, {f.kind})"
                    for f in stormy.failures
                )
            )
        if stormy.points != serial.points:
            problems.append(
                "chaos pass diverged from the fault-free serial baseline"
            )
        for kind in ("crash", "stall", "error", "worker-kill", "corrupt"):
            if planned.get(kind, 0) > stormy.stats.injected.get(kind, 0):
                problems.append(
                    f"stats under-report injected {kind} faults: planned "
                    f">= {planned[kind]}, recorded "
                    f"{stormy.stats.injected.get(kind, 0)}"
                )
        if remote and stormy.stats.requeues < planned.get("worker-kill", 0):
            problems.append(
                f"lease re-queues under-count injected worker kills: "
                f"planned >= {planned.get('worker-kill', 0)}, "
                f"recorded {stormy.stats.requeues}"
            )

        if remote:
            # Quiesce the fabric before the resume pass: the store must
            # not move under the local engine reading it.
            server.stop()
            server = None
            for proc in fleet:
                proc.terminate()
                proc.wait(timeout=10)
            fleet = []

        healed = run_sweep_parallel(spec, workers=1, cache_dir=root)
        injected_corrupt = stormy.stats.injected.get("corrupt", 0)
        emit(f"resume pass: {healed.stats.cache_hits} cache hits, "
             f"{healed.stats.cache_corrupt} corrupted entries detected, "
             f"{healed.stats.executed} recomputed")
        if healed.points != serial.points:
            problems.append(
                "resume pass diverged from the fault-free serial baseline"
            )
        if healed.stats.cache_corrupt != injected_corrupt:
            problems.append(
                f"corruption detection mismatch: injected "
                f"{injected_corrupt}, detected {healed.stats.cache_corrupt}"
            )
        if healed.stats.executed != injected_corrupt:
            problems.append(
                f"resume recomputed {healed.stats.executed} points, "
                f"expected exactly the {injected_corrupt} corrupted one(s)"
            )
        return SoakOutcome(
            converged=not problems,
            policy=policy,
            planned=planned,
            injected=dict(stormy.stats.injected),
            healed_corruptions=healed.stats.cache_corrupt,
            problems=problems,
        )
    finally:
        for proc in fleet:
            try:
                proc.terminate()
                proc.wait(timeout=10)
            except OSError:
                pass
        if server is not None:
            server.stop()
        if owns_cache_dir:
            shutil.rmtree(root, ignore_errors=True)


def run_soak_series(
    iterations: int = 1,
    chaos_seed: int = 0,
    log: Optional[Callable[[str], None]] = None,
    **kwargs,
) -> Tuple[bool, List[SoakOutcome]]:
    """Run ``iterations`` soaks on well-separated seeds; True iff all pass."""
    outcomes: List[SoakOutcome] = []
    for iteration in range(iterations):
        if log is not None and iterations > 1:
            log(f"--- soak iteration {iteration + 1}/{iterations} ---")
        outcomes.append(run_soak(
            chaos_seed=chaos_seed + 1000 * iteration, log=log, **kwargs,
        ))
        if log is not None:
            log(outcomes[-1].summary())
    return all(outcome.converged for outcome in outcomes), outcomes
