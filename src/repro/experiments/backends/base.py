"""The executor seam of the parallel sweep engine.

The engine (:func:`repro.experiments.parallel.run_sweep_parallel`) is a
scheduler: it expands the grid, consults the cache, accounts attempts,
retries, and quarantines.  *Where* an attempt actually executes is a
:class:`Backend` — in this process, in a local process pool, or on a
fleet of remote workers behind ``python -m repro serve``.

The contract is deliberately tiny:

* :meth:`Backend.submit` enqueues one ``(point, attempt)`` — it never
  blocks on execution and never raises for execution failures;
* :meth:`Backend.collect` blocks until at least one attempt has an
  outcome and returns the batch as :class:`AttemptResult` s — statuses
  are the engine's ``ok``/``timeout``/``error``/``crash`` vocabulary,
  so a dead worker is an ordinary ``crash`` result, not an exception;
* :meth:`Backend.close` releases pools/sockets.

Capability flags (:class:`BackendCapabilities`) tell the engine what a
backend can promise — whether crashes are isolated from the driving
process, whether specs must pickle, whether lost work is re-queued by
a lease scheduler — without the engine knowing concrete types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can promise the engine.

    Attributes:
        name: short identifier (``serial`` / ``pool`` / ``remote``).
        supports_timeout: per-point wall-clock budgets are enforced
            (SIGALRM in the executing process's main thread).
        isolates_crashes: a crashing point kills a worker process, not
            the driving process (``serial`` executes in-process, so an
            injected crash surfaces as :class:`ChaosCrash` instead).
        requires_picklable: points cross a process/socket boundary, so
            ``algorithm``/``adversary`` must pickle.
        requeues_lost_work: the paper's fail-stop/restart story — work
            leased to a dead or stalled worker is re-queued and
            completes elsewhere without the engine seeing a failure.
        remote: execution leaves this host (socket transport).
    """

    name: str
    supports_timeout: bool = True
    isolates_crashes: bool = False
    requires_picklable: bool = False
    requeues_lost_work: bool = False
    remote: bool = False


@dataclass(frozen=True)
class AttemptResult:
    """One attempt's outcome, as reported by a backend.

    ``status`` uses the engine vocabulary (``ok``/``timeout``/
    ``error``/``crash``); ``payload`` is the
    :class:`~repro.experiments.runner.RunPoint` on success and a
    diagnostic string otherwise.  ``cached=True`` marks a server-side
    cache hit (the point never executed); ``stored=True`` means a
    shared remote store persisted the result, so the engine can account
    cache-side effects it did not perform itself.  ``lease_tries`` is
    how many leases the point consumed before completing (>1 means the
    fabric re-queued it past a dead/stalled worker).
    """

    point: object
    attempt: int
    status: str
    payload: object
    elapsed: float
    cached: bool = False
    stored: bool = False
    lease_tries: int = 1


class Backend:
    """Abstract executor; see the module docstring for the contract."""

    capabilities = BackendCapabilities(name="abstract")

    def submit(self, point, attempt: int) -> None:
        raise NotImplementedError

    def collect(self) -> List[AttemptResult]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    # Optional accounting surfaced into SweepStats by the engine; the
    # base values mean "nothing to report".
    pool_restarts: int = 0
    degraded_serial: bool = False
    requeues: int = 0
    cache_corrupt: int = 0

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        self.close()
        return None
