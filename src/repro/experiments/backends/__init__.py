"""Executor backends for the parallel sweep engine.

``serial`` and ``pool`` reproduce the pre-seam engine bit for bit in
this process / a local process pool; ``remote`` ships points to a
``python -m repro serve`` daemon's worker fleet over sockets.  See
:mod:`repro.experiments.backends.base` for the protocol.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.backends.base import (
    AttemptResult,
    Backend,
    BackendCapabilities,
)
from repro.experiments.backends.local import PoolBackend, SerialBackend

#: Accepted ``--backend`` spellings (remote takes ``remote:host:port``).
BACKEND_NAMES = ("serial", "pool", "remote")


def resolve_backend(
    backend,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    chaos=None,
    resume: bool = True,
    max_pool_restarts: int = 3,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    backoff_seed: int = 0,
) -> Tuple[Backend, bool]:
    """Turn an engine-level backend request into a live Backend.

    ``backend`` may be ``None`` (legacy behavior: ``workers <= 1`` is
    serial, more is a local pool), a string (``"serial"``, ``"pool"``,
    ``"remote:host:port"``), or an already-constructed
    :class:`Backend`.  Returns ``(backend, owns)`` — ``owns`` tells the
    caller whether it should close the backend when the sweep ends.
    """
    if isinstance(backend, Backend):
        return backend, False
    if backend is None:
        backend = "serial" if workers is None or workers <= 1 else "pool"
    if not isinstance(backend, str):
        raise TypeError(
            f"backend must be None, a string, or a Backend; "
            f"got {type(backend).__name__}"
        )
    if backend == "serial":
        return SerialBackend(timeout=timeout, chaos=chaos), True
    if backend == "pool":
        return PoolBackend(
            workers=workers if workers is not None else 2,
            timeout=timeout, chaos=chaos,
            max_pool_restarts=max_pool_restarts,
            backoff_base=backoff_base, backoff_cap=backoff_cap,
            backoff_seed=backoff_seed,
        ), True
    if backend.startswith("remote:") or backend == "remote":
        if backend == "remote":
            raise ValueError(
                "the remote backend needs an address: remote:host:port"
            )
        from repro.experiments.backends.remote import RemoteBackend

        return RemoteBackend(
            backend, timeout=timeout, chaos=chaos, resume=resume,
        ), True
    raise ValueError(
        f"unknown backend {backend!r}: expected one of "
        f"{', '.join(BACKEND_NAMES)} (remote as remote:host:port)"
    )


def __getattr__(name: str):
    # RemoteBackend pulls in the socket stack; import it on demand so
    # plain local sweeps never pay for it.
    if name == "RemoteBackend":
        from repro.experiments.backends.remote import RemoteBackend

        return RemoteBackend
    raise AttributeError(name)


__all__ = [
    "AttemptResult",
    "Backend",
    "BackendCapabilities",
    "BACKEND_NAMES",
    "PoolBackend",
    "RemoteBackend",
    "SerialBackend",
    "resolve_backend",
]
