"""The socket backend: sweep points execute on a serve daemon's fleet.

One connection, pipelined: every :meth:`submit` streams one job to the
server, every :meth:`collect` blocks on the next ``result`` frame.
The server dedupes by content-hash key across all connected clients
and answers from the shared store when it can; ``cached``/``stored``/
``lease_tries``/``healed_corrupt`` flags flow back so the engine's
:class:`~repro.experiments.parallel.SweepStats` stay truthful about
work it never ran locally.
"""

from __future__ import annotations

import collections
from typing import Deque, Dict, List, Optional, Tuple

from repro.experiments.backends.base import (
    AttemptResult,
    Backend,
    BackendCapabilities,
)
from repro.experiments.wire import PointJob, connect, pack, parse_address, unpack


class RemoteBackend(Backend):
    """Client half of ``python -m repro serve``; see the module doc."""

    capabilities = BackendCapabilities(
        name="remote", supports_timeout=True, isolates_crashes=True,
        requires_picklable=True, requeues_lost_work=True, remote=True,
    )

    def __init__(
        self,
        address: str,
        timeout: Optional[float] = None,
        chaos=None,
        resume: bool = True,
    ) -> None:
        host, port = parse_address(address)
        self.address = f"{host}:{port}"
        self._timeout = timeout
        self._chaos_blob = None if chaos is None else pack(chaos)
        self._resume = resume
        self._conn = connect(host, port, role="client", timeout=10.0)
        self._counter = 0
        self._pending: Dict[str, Tuple[object, int]] = {}
        self._buffered: Deque[dict] = collections.deque()
        self.requeues = 0
        self.cache_corrupt = 0

    def submit(self, point, attempt: int) -> None:
        task_id = f"c{self._counter}"
        self._counter += 1
        self._pending[task_id] = (point, attempt)
        # Sweep points ship wrapped in PointJob; other work (the fuzz
        # driver's iterations) provides its own wire job — anything
        # with run(timeout, chaos, attempt) -> (status, payload,
        # elapsed) executes in the worker sandbox.  A None cache key
        # opts out of the server's shared store.
        to_job = getattr(point, "to_wire_job", None)
        self._conn.send({
            "type": "submit",
            "task_id": task_id,
            "sweep": point.sweep,
            "key": point.cache_key(),
            "index": point.index,
            "attempt": attempt,
            "timeout": self._timeout,
            "resume": self._resume,
            "job": pack(to_job() if to_job is not None else PointJob(point)),
            "chaos": self._chaos_blob,
        })

    def _next_frame(self, kind: str) -> dict:
        for position, frame in enumerate(self._buffered):
            if frame.get("type") == kind:
                del self._buffered[position]
                return frame
        while True:
            frame = self._conn.recv()
            if frame.get("type") == kind:
                return frame
            self._buffered.append(frame)

    def collect(self) -> List[AttemptResult]:
        frame = self._next_frame("result")
        point, attempt = self._pending.pop(frame["task_id"])
        lease_tries = int(frame.get("lease_tries", 1))
        self.requeues += max(0, lease_tries - 1)
        self.cache_corrupt += int(frame.get("healed_corrupt", 0))
        return [AttemptResult(
            point=point,
            attempt=attempt,
            status=str(frame.get("status", "error")),
            payload=unpack(frame.get("payload")),
            elapsed=float(frame.get("elapsed", 0.0)),
            cached=bool(frame.get("cached", False)),
            stored=bool(frame.get("stored", False)),
            lease_tries=max(1, lease_tries),
        )]

    def status(self) -> dict:
        """The server's live status (queue depth, fleet, ETA)."""
        self._conn.send({"type": "status"})
        return self._next_frame("status")

    def close(self) -> None:
        try:
            self._conn.send({"type": "bye"})
        except OSError:
            pass
        self._conn.close()
