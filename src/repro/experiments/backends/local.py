"""In-process backends: serial (inline) and local process pool.

Both execute :func:`repro.experiments.parallel.execute_point`, looked
up as a module attribute at call time so tests (and instrumentation)
that monkeypatch it keep working.  The chaos-free call signature stays
exactly ``execute_point(point, timeout)`` — the documented compat hook
from the pre-chaos engine.
"""

from __future__ import annotations

import collections
import concurrent.futures
import concurrent.futures.process
import random
import time
from typing import Deque, Dict, List, Optional, Tuple

from repro.experiments.backends.base import (
    AttemptResult,
    Backend,
    BackendCapabilities,
)

_BrokenPool = concurrent.futures.process.BrokenProcessPool


def _execute(point, timeout, chaos, attempt) -> Tuple[str, object, float]:
    """One inline attempt via the live ``parallel.execute_point``."""
    import repro.experiments.parallel as parallel

    if chaos is None:
        return parallel.execute_point(point, timeout)
    return parallel.execute_point(point, timeout, chaos, attempt)


class SerialBackend(Backend):
    """Inline execution, one point per :meth:`collect` call.

    Laziness is deliberate: executing inside ``collect`` (not
    ``submit``) keeps the engine's loop identical across backends, and
    keeps cache writes incremental — a run killed mid-sweep leaves
    every completed point checkpointed, which the SIGKILL-resume tests
    assert.
    """

    capabilities = BackendCapabilities(
        name="serial", supports_timeout=True, isolates_crashes=False,
    )

    def __init__(self, timeout: Optional[float] = None, chaos=None) -> None:
        self._timeout = timeout
        self._chaos = chaos
        self._queue: Deque[Tuple[object, int]] = collections.deque()

    def submit(self, point, attempt: int) -> None:
        self._queue.append((point, attempt))

    def collect(self) -> List[AttemptResult]:
        point, attempt = self._queue.popleft()
        status, payload, elapsed = _execute(
            point, self._timeout, self._chaos, attempt
        )
        return [AttemptResult(point, attempt, status, payload, elapsed)]


class PoolBackend(Backend):
    """A crash-safe local ``ProcessPoolExecutor``.

    A broken pool (a worker died without reporting) is not an error:
    completed futures keep their results, every in-flight point comes
    back as one ``crash`` attempt, and the next dispatch builds a fresh
    pool after a capped, seeded-jitter exponential backoff.  A pool
    that keeps dying degrades the backend to serial inline execution
    for the remaining attempts.
    """

    capabilities = BackendCapabilities(
        name="pool", supports_timeout=True, isolates_crashes=True,
        requires_picklable=True,
    )

    def __init__(
        self,
        workers: int,
        timeout: Optional[float] = None,
        chaos=None,
        max_pool_restarts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_seed: int = 0,
    ) -> None:
        self._workers = max(1, int(workers))
        self._timeout = timeout
        self._chaos = chaos
        self._max_pool_restarts = max_pool_restarts
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._rng = random.Random(backoff_seed)
        self._queue: Deque[Tuple[object, int]] = collections.deque()
        self._futures: Dict[concurrent.futures.Future,
                            Tuple[object, int]] = {}
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._size: Optional[int] = None
        self.pool_restarts = 0
        self.degraded_serial = False

    def submit(self, point, attempt: int) -> None:
        self._queue.append((point, attempt))

    def _dispatch(self) -> bool:
        """Move queued attempts into the pool; False when it broke."""
        import repro.experiments.parallel as parallel

        if self._pool is None:
            if self._size is None:
                self._size = min(self._workers, max(1, len(self._queue)))
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self._size
            )
        while self._queue:
            point, attempt = self._queue.popleft()
            try:
                if self._chaos is None:
                    future = self._pool.submit(
                        parallel.execute_point, point, self._timeout
                    )
                else:
                    future = self._pool.submit(
                        parallel.execute_point, point, self._timeout,
                        self._chaos, attempt,
                    )
            except _BrokenPool:
                self._queue.appendleft((point, attempt))
                return False
            self._futures[future] = (point, attempt)
        return True

    def collect(self) -> List[AttemptResult]:
        if self.degraded_serial:
            point, attempt = self._queue.popleft()
            status, payload, elapsed = _execute(
                point, self._timeout, self._chaos, attempt
            )
            return [AttemptResult(point, attempt, status, payload, elapsed)]

        results: List[AttemptResult] = []
        broken = not self._dispatch()
        if not broken:
            done, _ = concurrent.futures.wait(
                self._futures,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            for future in done:
                point, attempt = self._futures.pop(future)
                try:
                    status, payload, elapsed = future.result()
                except _BrokenPool:
                    broken = True
                    self._queue.append((point, attempt))
                    continue
                except Exception as exc:  # worker died mid-task
                    status, payload, elapsed = "error", str(exc), 0.0
                results.append(AttemptResult(
                    point, attempt, status, payload, elapsed,
                ))
            if not broken:
                return results

        # The pool broke.  Drain what finished (a broken pool resolves
        # every remaining future immediately), then charge one "crash"
        # attempt to every in-flight point — the engine cannot tell the
        # poison point from its pool-mates.
        for future, (point, attempt) in list(self._futures.items()):
            try:
                status, payload, elapsed = future.result()
            except _BrokenPool:
                self._queue.append((point, attempt))
                continue
            except Exception as exc:
                status, payload, elapsed = "error", str(exc), 0.0
            results.append(AttemptResult(
                point, attempt, status, payload, elapsed,
            ))
        self._futures.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self.pool_restarts += 1
        casualties = list(self._queue)
        self._queue.clear()
        for point, attempt in casualties:
            results.append(AttemptResult(
                point, attempt, "crash",
                "worker process died (process pool broken)", 0.0,
            ))
        if self.pool_restarts > self._max_pool_restarts:
            self.degraded_serial = True
        elif casualties:
            delay = min(
                self._backoff_cap,
                self._backoff_base * (2 ** (self.pool_restarts - 1)),
            )
            time.sleep(delay * (0.5 + self._rng.random()))
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
