"""Accounting, bound predictors and analysis helpers.

* :mod:`repro.metrics.bounds` — closed-form predictors for every bound
  the paper states (used by benchmarks to check measured shapes);
* :mod:`repro.metrics.fitting` — log-log exponent fitting and ratio
  series;
* :mod:`repro.metrics.tables` — ASCII tables for benchmark/example
  output;
* :mod:`repro.metrics.accounting` — aggregation across runs (Definition
  2.3 takes maxima over inputs and failure patterns);
* :mod:`repro.metrics.report` — the machine-readable ``repro-bench/1``
  benchmark report schema (``BENCH_<tag>.json``).
"""

from repro.metrics.accounting import WorstCase, aggregate_worst_case
from repro.metrics.bounds import (
    log2ceil,
    sigma_bound_thm41,
    work_lower_thm31,
    work_lower_thm48,
    work_upper_lemma42,
    work_upper_thm32,
    work_upper_thm43,
    work_upper_thm47,
    work_upper_thm49,
)
from repro.metrics.fitting import fitted_exponent, ratio_series
from repro.metrics.report import (
    bench_report,
    dump_report,
    load_report,
    validate_bench_report,
)
from repro.metrics.tables import render_table

__all__ = [
    "WorstCase",
    "aggregate_worst_case",
    "bench_report",
    "dump_report",
    "fitted_exponent",
    "load_report",
    "validate_bench_report",
    "log2ceil",
    "ratio_series",
    "render_table",
    "sigma_bound_thm41",
    "work_lower_thm31",
    "work_lower_thm48",
    "work_upper_lemma42",
    "work_upper_thm32",
    "work_upper_thm43",
    "work_upper_thm47",
    "work_upper_thm49",
]
