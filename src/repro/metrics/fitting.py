"""Growth-shape analysis: log-log exponent fits and ratio series."""

from __future__ import annotations

import math
from typing import List, Sequence


def fitted_exponent(sizes: Sequence[int], works: Sequence[float]) -> float:
    """Least-squares slope of log(work) against log(size).

    For ``work ~ c * size^e`` this recovers ``e`` (up to lower-order
    terms); benchmarks compare it against predicted exponents such as
    ``log2 3`` for the stalked algorithm X.
    """
    if len(sizes) != len(works):
        raise ValueError(
            f"sizes and works must align, got {len(sizes)} vs {len(works)}"
        )
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit an exponent")
    xs = [math.log(size) for size in sizes]
    ys = [math.log(max(1e-12, work)) for work in works]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        raise ValueError("all sizes identical; exponent undefined")
    return numerator / denominator


def ratio_series(
    works: Sequence[float], predictions: Sequence[float]
) -> List[float]:
    """Element-wise measured/predicted ratios (flat = matching shape)."""
    if len(works) != len(predictions):
        raise ValueError(
            f"series must align, got {len(works)} vs {len(predictions)}"
        )
    return [work / prediction for work, prediction in zip(works, predictions)]


def is_flat(ratios: Sequence[float], tolerance: float = 3.0) -> bool:
    """Whether a ratio series stays within a multiplicative band.

    ``tolerance`` is the allowed max/min ratio; constants and lower-order
    terms make small series wobble, so the default band is generous.
    """
    positive = [ratio for ratio in ratios if ratio > 0]
    if not positive:
        return False
    return max(positive) / min(positive) <= tolerance


def doubling_exponents(
    sizes: Sequence[int], works: Sequence[float]
) -> List[float]:
    """Per-step exponents log(work ratio)/log(size ratio) between points."""
    exponents = []
    for (s0, w0), (s1, w1) in zip(zip(sizes, works), zip(sizes[1:], works[1:])):
        exponents.append(math.log(w1 / w0) / math.log(s1 / s0))
    return exponents
