"""Minimal ASCII table rendering for benchmark and example output."""

from __future__ import annotations

from typing import List, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width table with right-aligned numeric columns."""
    formatted: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
