"""Aggregation across runs.

Definition 2.3 takes the completed work ``S_{N,M,P}`` and overhead ratio
``sigma`` as *maxima* over inputs and failure patterns of size ≤ M.  A
single simulated run realizes one (I, F) pair; benchmarks approximate
the maxima by aggregating several runs (different adversaries/seeds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass
class WorstCase:
    """Maxima of the paper's measures over a set of runs."""

    runs: int = 0
    max_completed_work: int = 0
    max_charged_work: int = 0
    max_pattern_size: int = 0
    max_overhead_ratio: float = 0.0
    max_parallel_time: int = 0
    all_solved: bool = True


def aggregate_worst_case(results: Iterable[object]) -> WorstCase:
    """Fold :class:`~repro.core.runner.WriteAllResult`-likes into maxima."""
    worst = WorstCase()
    for result in results:
        worst.runs += 1
        worst.max_completed_work = max(
            worst.max_completed_work, result.completed_work
        )
        worst.max_charged_work = max(worst.max_charged_work, result.charged_work)
        worst.max_pattern_size = max(worst.max_pattern_size, result.pattern_size)
        worst.max_overhead_ratio = max(
            worst.max_overhead_ratio, result.overhead_ratio
        )
        worst.max_parallel_time = max(
            worst.max_parallel_time, result.parallel_time
        )
        worst.all_solved = worst.all_solved and result.solved
    return worst
