"""Closed-form predictors for the paper's bounds (without constants).

Benchmarks divide measured completed work by these predictors; a bound
of the right *shape* makes the ratio flatten (upper bounds) or stay
bounded away from zero (lower bounds) as N grows.
"""

from __future__ import annotations

import math


def log2ceil(value: int) -> float:
    """``max(1, log2(value))`` — the log factor in the bounds."""
    return max(1.0, math.log2(max(2, value)))


def work_lower_thm31(n: int) -> float:
    """Theorem 3.1: Write-All with restarts needs Omega(N log N) work."""
    return n * log2ceil(n)


def work_upper_thm32(n: int) -> float:
    """Theorem 3.2: the snapshot algorithm's Theta(N log N) work."""
    return n * log2ceil(n)


def work_upper_lemma42(n: int, p: int) -> float:
    """Lemma 4.2: algorithm V without restarts, O(N + P log^2 N)."""
    return n + p * log2ceil(n) ** 2


def work_upper_thm43(n: int, p: int, m: int) -> float:
    """Theorem 4.3: algorithm V with restarts, O(N + P log^2 N + M log N)."""
    return n + p * log2ceil(n) ** 2 + m * log2ceil(n)


def work_upper_thm47(n: int, p: int, delta: float = 0.015) -> float:
    """Theorem 4.7: algorithm X, O(N * P^{log2(3/2) + delta})."""
    return n * p ** (math.log2(1.5) + delta)


def work_lower_thm48(n: int) -> float:
    """Theorem 4.8: the stalker forces X to Omega(N^{log2 3})."""
    return n ** math.log2(3)


def work_upper_thm49(n: int, p: int, m: int, delta: float = 0.015) -> float:
    """Theorem 4.9: interleaved V+X, O(min{...}) of the two bounds."""
    return min(work_upper_thm43(n, p, m), work_upper_thm47(n, p, delta))


def sigma_bound_thm41(n: int) -> float:
    """Theorem 4.1: overhead ratio O(log^2 N)."""
    return log2ceil(n) ** 2
