"""Machine-readable benchmark reports (the ``BENCH_<tag>.json`` schema).

The text tables under ``benchmarks/results/`` are for humans; perf
trajectory tracking needs a stable, parseable artifact.  This module
assembles (and validates) that artifact from engine results.  It is
deliberately duck-typed — it reads ``points`` / ``stats`` / ``meta`` /
``failures`` attributes off whatever sweep result it is handed — so the
metrics layer does not import the experiments layer.

Schema (``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "tag": "<run tag>",
      "created_unix": <float>,
      "workers": <int>,
      "backend": "serial|pool|remote:host:port",  # optional
      "environment": {"python":..,"python_build":..,"platform":..,
                      "cpu_count":..,"cpu_governor":..,"cpu_turbo":..,
                      "load_avg_1min":..,"numpy":..},  # since PR 8;
                      # governor/turbo/load joined with the fabric,
                      # null where the host does not expose them
      "scenarios": [
        {
          "tag": "E1_thrashing",
          "title": "...",
          "source": "bench_example_2_2_thrashing.py",
          "wall_s": <float>,
          "cache": {"hits": n, "executed": n, "hit_rate": x, "failed": n},
          "sweeps": [
            {
              "name": "X/thrashing",
              "points": [
                {"n":..,"p":..,"seed":..,"solved":..,"S":..,"S_prime":..,
                 "F":..,"sigma":..,"ticks":..,"wall_s":..,"cached":..}
              ],
              "failures": [
                {"n":..,"p":..,"seed":..,"kind":..,"attempts":..,
                 "message":..}
              ],
              "stats": {"retries":..,"timeouts":..,"crashes":..,
                        "pool_restarts":..,"degraded_serial":..,
                        "cache_corrupt":..,"injected":{..}}  # optional
            }
          ]
        }
      ],
      "totals": {"points": n, "executed": n, "cache_hits": n,
                 "failed": n, "retries": n, "timeouts": n,
                 "pool_restarts": n, "wall_s": x}
    }

The per-sweep ``stats`` object (and the retry/timeout totals) surface
the engine's recovery accounting — reports written before they existed
still validate; consumers must treat them as optional.  The same goes
for ``environment``: an audit of the host that produced the numbers
(interpreter, platform, CPU count, numpy version or ``null`` when the
extra is absent), so wall-clock comparisons across reports can tell a
perf change from a host change.

S, S' and |F| are the paper's measures (completed work, charged work,
pattern size); ``sigma = S / (N + |F|)``; ``ticks`` is parallel time in
machine ticks; ``wall_s`` is host wall-clock, 0.0 for cached points.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Any, Dict, List

SCHEMA = "repro-bench/1"


def _read_sysfs(path: str) -> Any:
    """One stripped line from a sysfs file, or ``None`` when unreadable
    (non-Linux hosts, containers that mask /sys, missing drivers)."""
    try:
        with open(path) as handle:
            return handle.readline().strip() or None
    except OSError:
        return None


def _cpu_governor() -> Any:
    """The cpufreq scaling governor, or ``None`` where unexposed."""
    return _read_sysfs(
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"
    )


def _cpu_turbo() -> Any:
    """Whether turbo/boost is enabled: True/False, ``None`` unknown."""
    no_turbo = _read_sysfs("/sys/devices/system/cpu/intel_pstate/no_turbo")
    if no_turbo is not None:
        return no_turbo == "0"  # intel_pstate exposes the inverse
    boost = _read_sysfs("/sys/devices/system/cpu/cpufreq/boost")
    if boost is not None:
        return boost == "1"
    return None


def _load_avg_1min() -> Any:
    """The 1-minute load average, or ``None`` where unavailable."""
    try:
        return round(os.getloadavg()[0], 3)
    except (OSError, AttributeError):
        return None


def environment_section() -> Dict[str, Any]:
    """Audit of the host producing a report (the ``environment`` key).

    ``numpy`` is the installed version string, or ``None`` when the
    optional extra is absent — so a report records which lanes could
    have run at all.  ``cpu_governor``/``cpu_turbo``/``load_avg_1min``
    capture the frequency-scaling state and ambient load at report
    time (``None`` where the host does not expose them): two reports
    with the same code but different governors or a loaded machine are
    not comparable wall-clock-wise, and now the artifact says so.
    """
    try:
        import numpy
        numpy_version: Any = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "python_build": " ".join(platform.python_build()),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "cpu_governor": _cpu_governor(),
        "cpu_turbo": _cpu_turbo(),
        "load_avg_1min": _load_avg_1min(),
        "numpy": numpy_version,
        "executable": sys.executable,
    }


def point_record(point, elapsed_s: float = 0.0,
                 cached: bool = False) -> Dict[str, Any]:
    """One RunPoint as a JSON-ready record."""
    return {
        "n": point.n, "p": point.p, "seed": point.seed,
        "solved": point.solved,
        "S": point.completed_work,
        "S_prime": point.charged_work,
        "F": point.pattern_size,
        "sigma": point.overhead_ratio,
        "ticks": point.parallel_time,
        "wall_s": round(elapsed_s, 6),
        "cached": cached,
    }


def sweep_section(result) -> Dict[str, Any]:
    """One engine result (``ParallelSweepResult``) as a JSON section."""
    meta = list(getattr(result, "meta", []))
    records = []
    for position, point in enumerate(result.points):
        if position < len(meta):
            records.append(point_record(
                point,
                elapsed_s=meta[position].elapsed_s,
                cached=meta[position].cached,
            ))
        else:
            records.append(point_record(point))
    failures = [
        {
            "n": failure.n, "p": failure.p, "seed": failure.seed,
            "kind": failure.kind, "attempts": failure.attempts,
            "message": str(getattr(failure, "message", ""))[:500],
        }
        for failure in getattr(result, "failures", [])
    ]
    section = {
        "name": result.spec.name,
        "points": records,
        "failures": failures,
    }
    stats = getattr(result, "stats", None)
    if stats is not None:
        # Engine accounting per sweep, so recovery events (retries,
        # quarantines, pool restarts, corrupt cache entries, injected
        # chaos faults) cannot vanish from the artifact.
        section["stats"] = {
            "total": getattr(stats, "total", len(records)),
            "executed": getattr(stats, "executed", 0),
            "cache_hits": getattr(stats, "cache_hits", 0),
            "timeouts": getattr(stats, "timeouts", 0),
            "retries": getattr(stats, "retries", 0),
            "failed": getattr(stats, "failed", 0),
            "crashes": getattr(stats, "crashes", 0),
            "pool_restarts": getattr(stats, "pool_restarts", 0),
            "degraded_serial": bool(getattr(stats, "degraded_serial",
                                            False)),
            "cache_corrupt": getattr(stats, "cache_corrupt", 0),
            "injected": dict(getattr(stats, "injected", {}) or {}),
        }
    return section


def scenario_section(tag: str, title: str, source: str,
                     results: List[Any], wall_s: float,
                     adversaries: Any = ()) -> Dict[str, Any]:
    """One scenario's JSON section.

    ``adversaries`` optionally names the registry adversaries
    (:mod:`repro.faults.registry`) the scenario exercises; when
    non-empty it is recorded so the regression checker can verify the
    names still resolve (``model-tag-missing``).  Reports written
    before the key existed simply omit it.
    """
    hits = sum(getattr(r.stats, "cache_hits", 0) for r in results)
    executed = sum(getattr(r.stats, "executed", 0) for r in results)
    failed = sum(getattr(r.stats, "failed", 0) for r in results)
    total = hits + executed + failed
    section = {
        "tag": tag,
        "title": title,
        "source": source,
        "wall_s": round(wall_s, 6),
        "cache": {
            "hits": hits,
            "executed": executed,
            "failed": failed,
            "hit_rate": round(hits / total, 6) if total else 0.0,
            "retries": sum(getattr(r.stats, "retries", 0)
                           for r in results),
            "timeouts": sum(getattr(r.stats, "timeouts", 0)
                            for r in results),
            "pool_restarts": sum(getattr(r.stats, "pool_restarts", 0)
                                 for r in results),
            "cache_corrupt": sum(getattr(r.stats, "cache_corrupt", 0)
                                 for r in results),
        },
        "sweeps": [sweep_section(result) for result in results],
    }
    if adversaries:
        section["adversaries"] = [str(name) for name in adversaries]
    return section


def bench_report(tag: str, scenarios: List[Dict[str, Any]],
                 workers: int, backend: Any = None) -> Dict[str, Any]:
    """Assemble the top-level report from scenario sections.

    ``backend`` records which executor produced the numbers (``serial``,
    ``pool``, ``remote:host:port``); ``None`` omits the key (legacy
    reports).  Model measures are backend-independent, but wall-clock
    comparisons across backends are meaningless — the regression
    checker refuses them by name (``backend-mismatch``).
    """
    totals = {
        "points": sum(
            len(sweep["points"])
            for scenario in scenarios for sweep in scenario["sweeps"]
        ),
        "executed": sum(s["cache"]["executed"] for s in scenarios),
        "cache_hits": sum(s["cache"]["hits"] for s in scenarios),
        "failed": sum(s["cache"]["failed"] for s in scenarios),
        "retries": sum(s["cache"].get("retries", 0) for s in scenarios),
        "timeouts": sum(s["cache"].get("timeouts", 0) for s in scenarios),
        "pool_restarts": sum(
            s["cache"].get("pool_restarts", 0) for s in scenarios
        ),
        "wall_s": round(sum(s["wall_s"] for s in scenarios), 6),
    }
    report = {
        "schema": SCHEMA,
        "tag": tag,
        "created_unix": time.time(),
        "workers": workers,
        "environment": environment_section(),
        "scenarios": scenarios,
        "totals": totals,
    }
    if backend is not None:
        report["backend"] = str(backend)
    return report


_POINT_KEYS = {
    "n", "p", "seed", "solved", "S", "S_prime", "F", "sigma", "ticks",
    "wall_s", "cached",
}


def validate_bench_report(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` matches ``repro-bench/1``.

    Used by tests and by consumers that ingest foreign report files.
    """
    if not isinstance(report, dict) or report.get("schema") != SCHEMA:
        raise ValueError(f"not a {SCHEMA} report")
    for key in ("tag", "created_unix", "workers", "scenarios", "totals"):
        if key not in report:
            raise ValueError(f"missing top-level key {key!r}")
    if not isinstance(report["scenarios"], list):
        raise ValueError("scenarios must be a list")
    for scenario in report["scenarios"]:
        for key in ("tag", "title", "source", "wall_s", "cache", "sweeps"):
            if key not in scenario:
                raise ValueError(
                    f"scenario {scenario.get('tag', '?')!r} missing {key!r}"
                )
        if "adversaries" in scenario:
            # Optional since the fault-frontier scenarios; names the
            # registry adversaries the scenario exercises.
            names = scenario["adversaries"]
            if not isinstance(names, list) or not all(
                isinstance(name, str) and name for name in names
            ):
                raise ValueError(
                    "scenario adversaries must be a list of names"
                )
        for sweep in scenario["sweeps"]:
            if "name" not in sweep or "points" not in sweep:
                raise ValueError("sweep sections need name and points")
            if "stats" in sweep and not isinstance(sweep["stats"], dict):
                raise ValueError("sweep stats must be an object")
            for record in sweep["points"]:
                missing = _POINT_KEYS - set(record)
                if missing:
                    raise ValueError(
                        f"point record missing keys {sorted(missing)}"
                    )
                for optional_ratio in ("vec_speedup", "auto_speedup"):
                    # Optional since the vectorized lane (PR 7) and the
                    # adaptive-dispatch lane (PR 8) landed; older
                    # reports simply omit them.
                    if optional_ratio not in record:
                        continue
                    ratio = record[optional_ratio]
                    if (not isinstance(ratio, (int, float))
                            or isinstance(ratio, bool) or ratio <= 0):
                        raise ValueError(
                            f"{optional_ratio} must be a positive number, "
                            f"got {ratio!r}"
                        )
    if "backend" in report:
        # Optional since the distributed fabric; legacy reports omit it.
        if not isinstance(report["backend"], str) or not report["backend"]:
            raise ValueError("backend must be a non-empty string")
    if "environment" in report:
        # Optional since PR 8; older reports simply omit the audit.
        environment = report["environment"]
        if not isinstance(environment, dict):
            raise ValueError("environment must be an object")
        for key in ("python", "platform", "cpu_count", "numpy"):
            if key not in environment:
                raise ValueError(f"environment missing key {key!r}")
        # Governor/turbo/load joined the audit with the distributed
        # fabric; older reports omit them, and on hosts that do not
        # expose the state they are recorded as null.
        if "cpu_governor" in environment:
            governor = environment["cpu_governor"]
            if governor is not None and not isinstance(governor, str):
                raise ValueError("cpu_governor must be a string or null")
        if "cpu_turbo" in environment:
            turbo = environment["cpu_turbo"]
            if turbo is not None and not isinstance(turbo, bool):
                raise ValueError("cpu_turbo must be a boolean or null")
        if "load_avg_1min" in environment:
            load = environment["load_avg_1min"]
            if load is not None and (
                not isinstance(load, (int, float)) or isinstance(load, bool)
            ):
                raise ValueError("load_avg_1min must be a number or null")


def dump_report(report: Dict[str, Any], path: str) -> None:
    validate_bench_report(report)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        report = json.load(handle)
    validate_bench_report(report)
    return report
