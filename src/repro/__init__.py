"""repro — Efficient Parallel Algorithms on Restartable Fail-Stop Processors.

A full reproduction of Kanellakis & Shvartsman (PODC 1991): a
restartable fail-stop CRCW PRAM simulator with the paper's completed-work
accounting, the Write-All algorithms W, V, X, V+X, the Theorem 3.2
snapshot matcher and a randomized ACC reconstruction, the paper's
adversaries (thrashing, pigeonhole-halving, stalking), and the iterated
Write-All execution of arbitrary PRAM programs on faulty processors.

Quickstart::

    from repro import AlgorithmX, RandomAdversary, solve_write_all

    result = solve_write_all(
        AlgorithmX(), n=256, p=256,
        adversary=RandomAdversary(0.05, restart_probability=0.2, seed=7),
    )
    assert result.solved
    print(result.summary())
"""

from repro.core import (
    AccAlgorithm,
    AlgorithmV,
    AlgorithmVX,
    AlgorithmW,
    AlgorithmX,
    SnapshotAlgorithm,
    TrivialAssignment,
    WriteAllAlgorithm,
    WriteAllResult,
    solve_write_all,
)
from repro.faults import (
    AccStalker,
    Adversary,
    BurstAdversary,
    FailureBudgetAdversary,
    HalvingAdversary,
    IterationStarver,
    NoFailures,
    NoRestartAdversary,
    RandomAdversary,
    ScheduledAdversary,
    StalkingAdversaryX,
    ThrashingAdversary,
)
from repro.pram import Machine, RunLedger, SharedMemory

__version__ = "1.0.0"

__all__ = [
    "AccAlgorithm",
    "AccStalker",
    "Adversary",
    "AlgorithmV",
    "AlgorithmVX",
    "AlgorithmW",
    "AlgorithmX",
    "BurstAdversary",
    "FailureBudgetAdversary",
    "HalvingAdversary",
    "IterationStarver",
    "Machine",
    "NoFailures",
    "NoRestartAdversary",
    "RandomAdversary",
    "RunLedger",
    "ScheduledAdversary",
    "SharedMemory",
    "SnapshotAlgorithm",
    "StalkingAdversaryX",
    "ThrashingAdversary",
    "TrivialAssignment",
    "WriteAllAlgorithm",
    "WriteAllResult",
    "solve_write_all",
    "__version__",
]
