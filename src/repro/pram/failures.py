"""Failure events, failure patterns, and per-tick adversary decisions.

Definition 2.1 of the paper: a *failure pattern* ``F`` is a set of triples
``<tag, PID, t>`` where ``tag`` is ``failure`` or ``restart``, ``PID`` is
the processor identifier and ``t`` the time.  The *size* of the pattern is
its cardinality ``|F|``; the overhead ratio amortizes completed work over
``|I| + |F|``.

These types are owned by the substrate (the machine both consumes
decisions and records the realized pattern); the :mod:`repro.faults`
package builds concrete adversaries on top of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Tuple


class FailureTag(Enum):
    """Tag of a failure-pattern event (Definition 2.1)."""

    FAILURE = "failure"
    RESTART = "restart"


@dataclass(frozen=True)
class FailureEvent:
    """One ``<tag, PID, t>`` triple of a failure pattern."""

    tag: FailureTag
    pid: int
    time: int

    def is_failure(self) -> bool:
        return self.tag is FailureTag.FAILURE

    def is_restart(self) -> bool:
        return self.tag is FailureTag.RESTART


class FailurePattern:
    """An ordered record of failure/restart events.

    The machine appends events as the run unfolds; afterwards the pattern
    is the realized ``F`` whose size ``|F|`` enters the overhead ratio.
    """

    def __init__(self, events: Iterable[FailureEvent] = ()) -> None:
        self._events: List[FailureEvent] = list(events)

    def record(self, tag: FailureTag, pid: int, time: int) -> None:
        self._events.append(FailureEvent(tag, pid, time))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FailurePattern(|F|={len(self._events)})"

    @property
    def size(self) -> int:
        """``|F|`` — the cardinality used by the overhead ratio."""
        return len(self._events)

    @property
    def failure_count(self) -> int:
        return sum(1 for event in self._events if event.is_failure())

    @property
    def restart_count(self) -> int:
        return sum(1 for event in self._events if event.is_restart())

    def events_at(self, time: int) -> Tuple[FailureEvent, ...]:
        return tuple(event for event in self._events if event.time == time)

    def events_for(self, pid: int) -> Tuple[FailureEvent, ...]:
        return tuple(event for event in self._events if event.pid == pid)


#: Sentinel for :class:`Decision` failure values: the processor completes
#: every write of its current update cycle (the cycle counts as completed
#: work) and *then* fails, i.e. the failure lands between cycles.
AFTER_ALL_WRITES = -1

#: A failure landing before any write of the cycle is applied.  The cycle
#: is charged to ``S'`` but not to the completed work ``S``.
BEFORE_WRITES = 0


@dataclass(frozen=True)
class Decision:
    """An adversary's verdict for one machine tick.

    ``failures`` maps a running processor's PID to the number of atomic
    writes of its current cycle that land before the processor stops
    (``BEFORE_WRITES`` = none, ``AFTER_ALL_WRITES`` = all of them, any
    ``0 <= k <= len(writes)`` for a prefix — bit/word writes are atomic so
    a failure can only fall between writes, never inside one).

    ``restarts`` lists failed processors revived at this tick; a restarted
    processor re-enters its program from the initial state (knowing only
    its PID) and executes its first update cycle on the *next* tick.

    ``stalls`` lists running processors whose pending cycle is *deferred*
    this tick (the heterogeneous-speed model of Zavou & Fernández Anta: a
    class-k processor advances only every k-th tick).  A stalled cycle is
    not executed, not charged, and not a failure — the processor keeps
    its private state and re-attempts the same cycle with fresh reads on
    the next tick the adversary lets it run.  Stalls never enter the
    failure pattern ``F``.  A PID may not be both stalled and failed.
    """

    failures: Mapping[int, int] = field(default_factory=dict)
    restarts: FrozenSet[int] = frozenset()
    stalls: FrozenSet[int] = frozenset()

    @staticmethod
    def none() -> "Decision":
        """The adversary does nothing this tick."""
        return Decision()

    @staticmethod
    def fail(pids: Iterable[int], writes_applied: int = BEFORE_WRITES) -> "Decision":
        """Fail every PID in ``pids`` at the same point of its cycle."""
        return Decision(failures={pid: writes_applied for pid in pids})

    @staticmethod
    def restart(pids: Iterable[int]) -> "Decision":
        """Restart every PID in ``pids``."""
        return Decision(restarts=frozenset(pids))

    @staticmethod
    def stall(pids: Iterable[int]) -> "Decision":
        """Defer the pending cycles of ``pids`` to a later tick."""
        return Decision(stalls=frozenset(pids))

    def merged_with(self, other: "Decision") -> "Decision":
        """Combine two decisions (later failure verdicts win on overlap)."""
        failures: Dict[int, int] = dict(self.failures)
        failures.update(other.failures)
        return Decision(
            failures=failures,
            restarts=frozenset(self.restarts) | frozenset(other.restarts),
            stalls=(frozenset(self.stalls) | frozenset(other.stalls))
            - set(failures),
        )
