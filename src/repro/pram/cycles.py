"""The update-cycle protocol between processor programs and the machine.

Section 2.1 of the paper: *"Each update cycle consists of reading a small
fixed number of shared memory cells (e.g., <= 4), performing some fixed
time computation, and writing a small fixed number of shared memory cells
(e.g., <= 2)."*  Update cycles are the unit of accounting — completed work
charges one unit per completed cycle — and the unit of failure granularity:
a processor may fail before or after any atomic write of a cycle, never
inside one.

A processor program is a Python generator that *yields* :class:`Cycle`
objects.  Reads are declared up front; the write set is either a static
tuple or a pure function of the read values (the "fixed time computation").
The machine sends the read values back into the generator once the cycle
completes, so the program's local state between yields models the
processor's private memory (which a failure erases, by discarding the
generator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, Union

from repro.pram.errors import ProgramError


@dataclass(frozen=True)
class Write:
    """One atomic word write: ``cell[address] = value``."""

    address: int
    value: int


WritesSpec = Union[
    Tuple[Write, ...],
    Callable[[Tuple[int, ...]], Sequence[Write]],
]

#: One read request of a cycle: a fixed address, or a function of the
#: values read so far in this cycle returning the next address (or None
#: to skip the read — the value slot is then 0).  Dependent addresses are
#: legal because all reads of a tick observe the memory state at the
#: start of the tick; only the *addresses* chain, never the data.
ReadSpec = Union[int, Callable[[Tuple[int, ...]], Optional[int]]]

#: Declares a unit-cost full-memory read (Theorem 3.2's strong model).
SNAPSHOT = "snapshot"


@dataclass(frozen=True)
class Cycle:
    """One update cycle request.

    Attributes:
        reads: read requests performed at the start of the cycle (see
            :data:`ReadSpec`), or the :data:`SNAPSHOT` marker for a
            unit-cost full-memory read (only legal on machines created
            with ``allow_snapshot=True``).
        writes: either a tuple of :class:`Write` (when the writes do not
            depend on this cycle's reads) or a pure function mapping the
            tuple of read values to a sequence of :class:`Write`.
        label: free-form tag surfaced to adversaries and traces.
    """

    reads: Union[Tuple[ReadSpec, ...], str] = ()
    writes: WritesSpec = ()
    label: str = ""

    @property
    def is_snapshot(self) -> bool:
        return self.reads == SNAPSHOT

    def read_specs(self) -> Tuple[ReadSpec, ...]:
        if self.is_snapshot:
            return ()
        if not isinstance(self.reads, tuple):
            raise ProgramError(
                f"cycle reads must be a tuple of read specs or SNAPSHOT, "
                f"got {self.reads!r}"
            )
        return self.reads

    def materialize_writes(self, values: Tuple[int, ...]) -> Tuple[Write, ...]:
        """Run the cycle's compute step and return its write set."""
        if callable(self.writes):
            produced = self.writes(values)
        else:
            produced = self.writes
        writes = tuple(produced)
        for write in writes:
            if not isinstance(write, Write):
                raise ProgramError(
                    f"cycle produced a non-Write entry: {write!r} "
                    f"(label={self.label!r})"
                )
        return writes


def read_cycle(*addresses: int, label: str = "") -> Cycle:
    """A cycle that only reads (no writes) — e.g. polling a flag."""
    return Cycle(reads=tuple(addresses), label=label)


def write_cycle(*writes: Write, label: str = "") -> Cycle:
    """A cycle that only writes constant values."""
    return Cycle(writes=tuple(writes), label=label)


def noop_cycle(label: str = "idle") -> Cycle:
    """A cycle with no reads and no writes (a completed no-op still counts
    as one unit of completed work — waiting is not free)."""
    return Cycle(label=label)


def snapshot_cycle(
    compute: Callable[[Tuple[int, ...]], Sequence[Write]],
    label: str = "snapshot",
) -> Cycle:
    """A unit-cost full-memory read followed by ``compute`` (Theorem 3.2).

    ``compute`` receives the entire memory contents as its value tuple.
    """
    return Cycle(reads=SNAPSHOT, writes=compute, label=label)
