"""Adaptive lane dispatch: pick vec vs scalar per fused quiet window.

PR 7's vectorized lane wins big when windows are long and P is large
(5.6x on trivial@65536x64) but *loses* on short-window/small-P runs
(X@512 ~0.3x): every window used to pay a full pack/unpack plus a
whole-memory mirror and writeback.  PR 8 made the window resident —
the boundary cost is now O(touched) — but a real crossover remains:
the vector lane pays a fixed per-tick array-machinery cost (mask
builds, lexsort commits) that only amortizes once ``ticks x P`` is
large enough.  This module is the calibrated cost model behind
``--lane auto``: a per-program-kind linear model over the window's
tick budget, the running-lane count, and the residency state, scaled
once per process by a micro-probe so the committed coefficients
transfer across hosts.

The choice is **purely a performance decision**: both lanes are
bit-identical by the differential contract, so a wrong prediction
costs time, never correctness.  That is what makes shipping a
heuristic safe.

Calibration: ``benchmarks/calibrate_dispatch.py`` regenerates
``DEFAULT_TABLE`` by timing real solver runs on both lanes; the
micro-probe (:func:`_run_probe`) then corrects for the speed ratio
between the calibration host and the current one.  Set
``REPRO_DISPATCH_PROBE=0`` to skip the probe (scales pinned to 1.0 —
deterministic, used by tests and fine in practice since the probe
only shifts the crossover point).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


@dataclass(frozen=True)
class LaneCosts:
    """Per-program-kind cost coefficients (nanoseconds).

    ``scalar_tick_lane_ns``
        One scalar compiled quiet tick, per running lane (the fused
        kernel loop is O(P) Python dispatches per tick).
    ``vec_tick_ns``
        Fixed vector cost per tick regardless of P (mask allocation,
        lexsort/commit machinery; amortized per tick for closed-form
        burst kernels like trivial).
    ``vec_tick_lane_ns``
        Vector cost per tick per lane (the array ops proper).
    ``vec_window_ns``
        Fixed cost of materializing a window (allocation, goal count).
    ``vec_cell_ns``
        Mirror-build cost per memory cell, paid only when no resident
        window exists yet (first window of a run).
    ``vec_pack_lane_ns``
        Pack + eventual unpack cost per lane, paid when the resident
        columns are cold (flushed since the last vector window).
    """

    scalar_tick_lane_ns: float
    vec_tick_ns: float
    vec_tick_lane_ns: float
    vec_window_ns: float
    vec_cell_ns: float
    vec_pack_lane_ns: float


#: Calibrated on the repository's CI-class reference host by
#: ``benchmarks/calibrate_dispatch.py``; the runtime micro-probe
#: rescales both sides for the current host.
DEFAULT_TABLE: Dict[str, LaneCosts] = {
    "trivial": LaneCosts(
        scalar_tick_lane_ns=593.0,
        vec_tick_ns=1_432.8,
        vec_tick_lane_ns=87.0,
        vec_window_ns=0.0,
        vec_cell_ns=22.2,
        vec_pack_lane_ns=238.6,
    ),
    "X": LaneCosts(
        scalar_tick_lane_ns=762.8,
        vec_tick_ns=81_609.0,
        vec_tick_lane_ns=65.7,
        vec_window_ns=0.0,
        vec_cell_ns=22.2,
        vec_pack_lane_ns=238.6,
    ),
    "W": LaneCosts(
        scalar_tick_lane_ns=1_487.4,
        vec_tick_ns=72_749.6,
        vec_tick_lane_ns=151.1,
        vec_window_ns=0.0,
        vec_cell_ns=22.2,
        vec_pack_lane_ns=238.6,
    ),
    # Unknown vector programs: assume X-like per-tick machinery (the
    # conservative choice — vec only dispatches when clearly ahead).
    "generic": LaneCosts(
        scalar_tick_lane_ns=762.8,
        vec_tick_ns=81_609.0,
        vec_tick_lane_ns=65.7,
        vec_window_ns=0.0,
        vec_cell_ns=22.2,
        vec_pack_lane_ns=238.6,
    ),
}


@dataclass(frozen=True)
class ProbeResult:
    """Micro-probe timings (ns) for interpreter and array throughput."""

    scalar_ns: float
    vector_ns: float


#: The probe's readings on the calibration host, committed alongside
#: DEFAULT_TABLE: the runtime scales are current/reference ratios.
REFERENCE_PROBE = ProbeResult(scalar_ns=36_429.0, vector_ns=7_468.0)

#: Probe repetitions; min-of-k suppresses scheduler noise the same way
#: the perf harness does.
_PROBE_REPEATS = 5


def _probe_scalar_once() -> float:
    """Time one pass of an interpreter-bound loop (ns)."""
    start = time.perf_counter_ns()
    total = 0
    for value in range(1_000):
        total += value & 7
    elapsed = time.perf_counter_ns() - start
    # `total` anchors the loop against hoisting by optimizing runtimes.
    return float(elapsed + (total & 0))


def _probe_vector_once() -> float:
    """Time one pass of a small ndarray pipeline (ns)."""
    np = _np
    start = time.perf_counter_ns()
    arr = np.arange(4_096, dtype=np.int64)
    out = int((arr * 3 & 7).sum())
    elapsed = time.perf_counter_ns() - start
    return float(elapsed + (out & 0))


def _run_probe() -> ProbeResult:
    """Measure the current host's interpreter and array speed."""
    scalar = min(_probe_scalar_once() for _ in range(_PROBE_REPEATS))
    vector = min(_probe_vector_once() for _ in range(_PROBE_REPEATS))
    return ProbeResult(scalar_ns=scalar, vector_ns=vector)


class DispatchModel:
    """Predicts the faster lane for one fused quiet window.

    ``scale_scalar``/``scale_vector`` multiply the respective cost
    sides; they come from the micro-probe (current host vs calibration
    host) and default to 1.0.
    """

    def __init__(
        self,
        table: Optional[Dict[str, LaneCosts]] = None,
        scale_scalar: float = 1.0,
        scale_vector: float = 1.0,
    ) -> None:
        self.table = dict(DEFAULT_TABLE if table is None else table)
        if "generic" not in self.table:
            raise ValueError("dispatch table needs a 'generic' fallback row")
        self.scale_scalar = scale_scalar
        self.scale_vector = scale_vector

    def costs_for(self, kind: str) -> LaneCosts:
        return self.table.get(kind, self.table["generic"])

    def prefer_vector(
        self,
        kind: str,
        ticks: int,
        p: int,
        cells: int,
        mirror: bool,
        packed: bool,
    ) -> bool:
        """Is the vector lane predicted faster for this window?

        ``ticks`` is the window's tick budget (the event horizon may
        stop it earlier — the budget is the best prediction available
        at dispatch time), ``p`` the running-lane count, ``cells`` the
        memory size, ``mirror`` whether a resident window already holds
        the memory mirror, ``packed`` whether its SoA columns are still
        warm from the previous window.
        """
        costs = self.costs_for(kind)
        scalar = ticks * p * costs.scalar_tick_lane_ns * self.scale_scalar
        vector = ticks * (costs.vec_tick_ns + p * costs.vec_tick_lane_ns)
        vector += costs.vec_window_ns
        if not mirror:
            vector += cells * costs.vec_cell_ns
        if not packed:
            vector += p * costs.vec_pack_lane_ns
        vector *= self.scale_vector
        return vector < scalar


_MODEL: Optional[DispatchModel] = None


def get_model() -> DispatchModel:
    """The process-wide dispatch model, probing the host once (memoized).

    Without numpy the question never arises (``resolve_vectorized``
    already returned None for ``"auto"``), but the model still answers
    deterministically if asked.
    """
    global _MODEL
    if _MODEL is None:
        scale_scalar = scale_vector = 1.0
        if os.environ.get("REPRO_DISPATCH_PROBE", "1") != "0" and _np is not None:
            probe = _run_probe()
            if probe.scalar_ns > 0 and probe.vector_ns > 0:
                scale_scalar = probe.scalar_ns / REFERENCE_PROBE.scalar_ns
                scale_vector = probe.vector_ns / REFERENCE_PROBE.vector_ns
        _MODEL = DispatchModel(
            scale_scalar=scale_scalar, scale_vector=scale_vector
        )
    return _MODEL


def set_model(model: Optional[DispatchModel]) -> None:
    """Override (or with None, reset) the process-wide model — test seam."""
    global _MODEL
    _MODEL = model
