"""The single registry of machine execution lanes.

A *lane* is one configuration of the machine's optimization switches:

========== ========== ============= ========== ============
name       fast_path  fast_forward  compiled   vectorized
========== ========== ============= ========== ============
fast       yes        yes           yes        no
noff       yes        no            yes        no   (no fast-forward)
nokernel   yes        yes           no         no   (no compiled kernels)
vec        yes        yes           yes        yes  (needs numpy)
auto       yes        yes           yes        auto (adaptive dispatch)
reference  no         no            no         no
========== ========== ============= ========== ============

Every optimization is a claim of observational equivalence to the
reference core, so every consumer that enumerates lanes — the
differential suite in ``tests/pram/``, the fuzz driver
(``repro.fuzz.driver``), and the perf harness legs (``repro.perf``) —
derives them from this registry.  Adding a lane is one registration
here, and it is immediately fuzzed, differentially tested, and
benchmarkable.

The ``vec`` lane needs the optional numpy extra;
:func:`lane_available` / :func:`available_lane_names` let consumers
skip it cleanly (never crash) when numpy is absent.  The ``auto``
lane (``--lane auto``) runs everywhere: with numpy it consults the
calibrated cost model in :mod:`repro.pram.dispatch` per fused quiet
window, without numpy it silently degrades to the scalar compiled
lane (its ``vectorized`` switch is the string ``"auto"`` rather than
a bool, which :func:`repro.pram.vectorized.resolve_vectorized`
understands as "soft opt-in").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union


@dataclass(frozen=True)
class Lane:
    """One machine lane: a name plus the solver/Machine switches.

    ``vectorized`` is tri-state: ``False`` (scalar), ``True`` (the
    hard ``--vectorized`` opt-in, loud error without numpy) or
    ``"auto"`` (adaptive dispatch, silent scalar degrade without
    numpy).
    """

    name: str
    fast_path: bool
    fast_forward: bool
    compiled: bool
    vectorized: Union[bool, str] = False
    #: Lanes that need the optional numpy extra are skipped (not failed)
    #: by consumers when it is absent.
    requires_numpy: bool = False
    description: str = ""

    def solver_kwargs(self) -> Dict[str, Union[bool, str]]:
        """Keyword arguments for ``solve_write_all`` / ``RobustSimulator``."""
        return {
            "fast_path": self.fast_path,
            "fast_forward": self.fast_forward,
            "compiled": self.compiled,
            "vectorized": self.vectorized,
        }


#: Ordered lane registry.  The reference lane is last on purpose: the
#: differential harness compares every lane against the final entry.
LANES: Dict[str, Lane] = {
    lane.name: lane
    for lane in (
        Lane(
            name="fast",
            fast_path=True,
            fast_forward=True,
            compiled=True,
            description="all optimizations on (the default production lane)",
        ),
        Lane(
            name="noff",
            fast_path=True,
            fast_forward=False,
            compiled=True,
            description="fast path without event-horizon batching "
            "(--no-fast-forward)",
        ),
        Lane(
            name="nokernel",
            fast_path=True,
            fast_forward=True,
            compiled=False,
            description="fast path without compiled kernels (--no-compiled)",
        ),
        Lane(
            name="vec",
            fast_path=True,
            fast_forward=True,
            compiled=True,
            vectorized=True,
            requires_numpy=True,
            description="vectorized quiet windows (--vectorized; "
            "needs the numpy extra)",
        ),
        Lane(
            name="auto",
            fast_path=True,
            fast_forward=True,
            compiled=True,
            vectorized="auto",
            description="adaptive per-window vec/scalar dispatch "
            "(--lane auto; scalar without numpy)",
        ),
        Lane(
            name="reference",
            fast_path=False,
            fast_forward=False,
            compiled=False,
            description="the executable specification (no optimizations)",
        ),
    )
}


def lane_available(name: str) -> bool:
    """Whether ``name``'s lane can run in this environment."""
    lane = LANES[name]
    if not lane.requires_numpy:
        return True
    from repro.pram.vectorized import HAVE_NUMPY

    return HAVE_NUMPY


def available_lane_names() -> List[str]:
    """Registry-ordered lane names runnable in this environment."""
    return [name for name in LANES if lane_available(name)]
