"""Vectorized batch-processor lane: all P processors advance as array ops.

The perf lineage so far removed per-tick *allocation* (the fast path),
per-tick *adversary dispatch* (event-horizon windows) and per-tick
*generator dispatch* (compiled kernels) — but even the compiled quiet
loop still steps processors one at a time in pure Python, so a quiet
tick costs ``O(P)`` interpreter dispatches.  This module adds the fifth
lane: inside a fused quiet window the per-processor program state lives
as a struct-of-arrays (one int64/bool column per kernel field), shared
memory is mirrored into an int64 ndarray, and each tick executes as
masked array operations — gather for reads, per-phase compute kernels,
CRCW resolution via ``np.lexsort`` + ``np.minimum.reduceat``, scatter
for commits.  That is exactly how the paper's Write-All algorithms are
specified: synchronous lockstep phases over shared memory.

The lane is **opt-in** (``--vectorized``) and **windows-only**:

* outside quiet windows — adversary-visible ticks, traces, the
  reference core — every processor is driven through the same scalar
  :class:`~repro.pram.compiled.CompiledProgram` kernels as the compiled
  lane (``materialize_pending()`` works unchanged), so failure
  patterns, pending views, and traces are identical by construction;
* at window entry the touched lanes' scalar state is *packed* into the
  column arrays, and at window exit (or on any error) it is *unpacked*
  back, so the two representations are never live at once.

**Soundness contract for vector-program authors** (extends the kernel
contract in :mod:`repro.pram.compiled`):

* a window tick must charge exactly the reads the scalar kernel's
  ``quiet_step`` would charge, stage the same ``(address, value)``
  writes, and advance each lane's state exactly as ``advance()`` would;
* write resolution must match the object lane value-for-value: one
  write charged per *distinct* address per tick, singleton writers
  commit as-is (the policies here guarantee identity), and collision
  groups resolve through the same :class:`~repro.pram.policies`
  semantics — including raising the same errors, applied in ascending
  address order so partial state on error is identical;
* ``pack_lane``/``unpack_lane`` must round-trip the scalar kernel state
  exactly (a lane untouched by any burst is never written back at all).

The 5-mode differential suite (``tests/pram/``) and the CRCW property
tests enforce the contract; numpy is an optional extra
(``pip install .[numpy]``) and everything here degrades with a clear
error — never a crash at import time — when it is absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.pram.errors import MemoryError_
from repro.pram.policies import (
    ArbitraryCrcw,
    CollisionCrcw,
    CommonCrcw,
    PriorityCrcw,
    StrongCrcw,
    WritePolicy,
)

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: Whether the optional numpy extra is importable in this environment.
HAVE_NUMPY = _np is not None


class VectorizedUnavailable(RuntimeError):
    """The vectorized lane was requested but numpy is not installed."""


def require_numpy() -> None:
    """Raise a clear error when the optional numpy extra is missing."""
    if _np is None:
        raise VectorizedUnavailable(
            "the vectorized lane needs numpy, which is an optional "
            "dependency — install it with `pip install .[numpy]` (or "
            "`pip install numpy`), or drop --vectorized"
        )


def numpy_module():
    """The numpy module, raising :class:`VectorizedUnavailable` if absent."""
    require_numpy()
    return _np


def trusted_vectorized_program(algorithm: object):
    """The algorithm's ``vectorized_program`` hook, or None if untrusted.

    Same MRO trust guard as
    :func:`repro.pram.compiled.trusted_compiled_program`: a vector
    program is a promise about what ``program()`` does, so it is only
    honored when declared by the class that defines the instance's
    effective ``program()`` (or a subclass of it).
    """
    hook = getattr(algorithm, "vectorized_program", None)
    if hook is None:
        return None
    instance_vars = getattr(algorithm, "__dict__", {})
    if "vectorized_program" in instance_vars:
        return hook
    if "program" in instance_vars:
        return None
    for klass in type(algorithm).__mro__:
        if "vectorized_program" in vars(klass):
            return hook
        if "program" in vars(klass):
            return None
    return None


def resolve_vectorized(
    algorithm: object,
    layout: object,
    tasks: object,
    vectorized: Union[bool, str] = False,
) -> Optional["VectorProgram"]:
    """The vector program to install for a run, or None for scalar lanes.

    Combines the opt-in switch (``vectorized=True`` is the
    ``--vectorized`` flag; the default stays on the scalar lanes; the
    string ``"auto"`` is the ``--lane auto`` adaptive mode), the numpy
    availability check (an explicit ``True`` without numpy is a loud
    :class:`VectorizedUnavailable`, not a silent downgrade — but
    ``"auto"`` *does* degrade silently to the scalar compiled lane,
    that being the whole point of an adaptive default), the MRO trust
    guard, and the algorithm's own gating (``vectorized_program``
    returns None for configurations it cannot vectorize, e.g.
    non-trivial task sets or PID-hashed routing).
    """
    if not vectorized:
        return None
    if vectorized == "auto":
        if not HAVE_NUMPY:
            return None
    else:
        require_numpy()
    hook = trusted_vectorized_program(algorithm)
    if hook is None:
        return None
    return hook(layout, tasks)


# ---------------------------------------------------------------------- #
# CRCW write resolution
# ---------------------------------------------------------------------- #


def _sorted_groups(addresses, pids, values):
    """Lexsort staged writes by (address, pid); return group starts.

    The object lane groups concurrent writers per address with PIDs
    ascending (processors are iterated in PID order); sorting by
    address with PID as the tie-break reproduces exactly that grouping
    in flat-array form.
    """
    np = _np
    addrs = np.asarray(addresses, dtype=np.int64).ravel()
    pid_arr = np.asarray(pids, dtype=np.int64).ravel()
    vals = np.asarray(values, dtype=np.int64).ravel()
    if addrs.size == 0:
        starts = np.zeros(0, dtype=np.int64)
        return addrs, pid_arr, vals, starts
    order = np.lexsort((pid_arr, addrs))
    a = addrs[order]
    w = pid_arr[order]
    v = vals[order]
    boundary = np.empty(a.size, dtype=bool)
    boundary[0] = True
    np.not_equal(a[1:], a[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    return a, w, v, starts


def _vector_resolve(a, w, v, starts, policy: WritePolicy):
    """Resolve sorted write groups fully vectorized, or None for fallback.

    Handles the stock identity-singleton policies; anything it cannot
    prove conflict-free (a COMMON disagreement, an unknown policy
    subclass) returns None so the caller can fall back to the ordered
    per-group reference path with its exact error semantics.
    """
    np = _np
    first = v[starts]
    # counts > 1 anywhere?  starts[i+1] - starts[i] == 1 for singletons.
    if starts.size == a.size and policy.singleton_resolve_is_identity:
        # every group is a singleton and the policy lets single-writer
        # commits skip resolve (the grouped commit's fast case) — a
        # stateful policy must instead fall through so its resolve
        # call count matches the object lane exactly.
        return first
    kind = type(policy)
    if kind is ArbitraryCrcw or kind is PriorityCrcw:
        # both commit to the lowest PID, which is first-in-group here.
        return first
    if kind is StrongCrcw:
        return np.maximum.reduceat(v, starts)
    if kind is CommonCrcw:
        lo = np.minimum.reduceat(v, starts)
        hi = np.maximum.reduceat(v, starts)
        if bool((lo == hi).all()):
            return first
        return None  # a genuine COMMON violation: raise via the slow path
    if kind is CollisionCrcw:
        lo = np.minimum.reduceat(v, starts)
        hi = np.maximum.reduceat(v, starts)
        return np.where(lo == hi, first, np.int64(policy.collision_value))
    return None


def resolve_writes(addresses, pids, values, policy: WritePolicy):
    """Resolve one tick's staged writes; the property-test entry point.

    Returns ``(unique_addresses, resolved_values)`` as int64 arrays with
    addresses strictly ascending — value-for-value what the object
    lane's grouped commit (`Machine._commit_grouped`) would store, for
    any collision pattern.  Policies (or collision patterns) the vector
    path cannot express are resolved through ``policy.resolve`` per
    group in ascending address order, raising the reference errors.
    """
    require_numpy()
    np = _np
    a, w, v, starts = _sorted_groups(addresses, pids, values)
    if a.size == 0:
        return a, v
    uaddrs = a[starts]
    resolved = _vector_resolve(a, w, v, starts, policy)
    if resolved is not None:
        return uaddrs, resolved
    ends = np.append(starts[1:], a.size)
    out = np.empty(starts.size, dtype=np.int64)
    for index in range(starts.size):
        lo = int(starts[index])
        hi = int(ends[index])
        writers = [(int(w[j]), int(v[j])) for j in range(lo, hi)]
        out[index] = policy.resolve(int(uaddrs[index]), writers)
    return uaddrs, out


# ---------------------------------------------------------------------- #
# window machinery
# ---------------------------------------------------------------------- #


@dataclass
class Burst:
    """One batched stretch of quiet ticks executed inside a window.

    ``ticks`` is at least 1; ``halted`` lists the PIDs whose programs
    halted voluntarily on the burst's final tick (the machine flips
    their processor status, exactly as the scalar quiet loop would).
    """

    ticks: int
    halted: List[int] = field(default_factory=list)


#: Dirty fraction above which flushing falls back to a full
#: ``replace_cells`` (one C-speed bulk copy + vectorized recount) instead
#: of the per-cell tracker-exact sync loop.
_FULL_SYNC_FRACTION = 3


class VectorWindow:
    """Resident state for fused quiet windows run on the vector lane.

    Mirrors shared memory into an int64 ndarray and accumulates
    read/write charges plus the goal region's remaining-zero count.
    Since PR 8 the window is *persistent*: consecutive quiet windows
    reuse the mirror and the packed SoA columns with zero boundary cost,
    and only :meth:`flush` — called by the machine the moment anything
    outside the vector lane could observe memory or kernel state —
    unpacks the touched lanes and writes back the **dirty cells only**
    (tracked in a bitmap by :meth:`mark_dirty`), turning the old
    per-window ``O(P + M)`` pack/mirror/writeback cost into
    ``O(touched)``.  While suspended, a
    :class:`~repro.pram.memory.WriteWatcher` journals every external
    write so :meth:`resume` refreshes exactly those mirror cells.
    """

    def __init__(
        self,
        program: "VectorProgram",
        memory,
        policy: WritePolicy,
        goal: Optional[Tuple[int, int]],
    ) -> None:
        self.program = program
        self.memory = memory
        self.policy = policy
        self.cells = _np.array(memory.raw_cells(), dtype=_np.int64)
        self.dirty = _np.zeros(self.cells.size, dtype=bool)
        self.reads = 0
        self.writes = 0
        self.touched: Set[int] = set()
        self.goal = goal
        if goal is not None:
            tracker = memory.track_zeros(goal[0], goal[1])
            self.goal_zeros = tracker.zeros
        else:
            self.goal_zeros = -1
        self._watcher = memory.attach_watcher()
        self._suspended = False

    @property
    def goal_reached(self) -> bool:
        return self.goal is not None and self.goal_zeros == 0

    @property
    def suspended(self) -> bool:
        """Whether the window is flushed (memory authoritative, lanes cold)."""
        return self._suspended

    def resume(self, goal: Optional[Tuple[int, int]]) -> None:
        """Make the mirror current again after a :meth:`flush`.

        Between back-to-back quiet windows (nothing intervened) this is
        a no-op; after observable/adversary ticks it refreshes exactly
        the journaled cells — a bulk rewrite (``replace_cells``) sets
        the journal's overflow flag and forces a full refresh — and
        re-reads the goal tracker, which stayed exact while the scalar
        paths wrote through :class:`~repro.pram.memory.SharedMemory`.
        Packed lanes are *not* revived: flush invalidated them (their
        scalar kernels advanced in the meantime), so the next burst's
        ``ensure_packed`` re-packs the running set.
        """
        if self._suspended:
            watcher = self._watcher
            if watcher.overflow:
                self.cells[:] = self.memory.raw_cells()
            elif watcher.addresses:
                raw = self.memory.raw_cells()
                addrs = list(watcher.addresses)
                self.cells[addrs] = [raw[address] for address in addrs]
            watcher.clear()
            if self.goal is not None:
                tracker = self.memory.track_zeros(self.goal[0], self.goal[1])
                self.goal_zeros = tracker.zeros
            self._suspended = False
        if goal != self.goal:
            # A different ``until`` predicate than the one the window
            # was built for (a later run() on the same machine): count
            # the new region from the mirror, which is authoritative
            # for any cell the resident window has dirtied.
            self.goal = goal
            if goal is None:
                self.goal_zeros = -1
            else:
                self.memory.track_zeros(goal[0], goal[1])
                start, length = goal
                self.goal_zeros = int(_np.count_nonzero(
                    self.cells[start : start + length] == 0
                ))

    def flush(self) -> None:
        """Unpack touched lanes and write back dirty cells (idempotent).

        Called by the machine before anything outside the vector lane
        observes memory or per-PID kernel state: adversary-visible
        ticks, scalar quiet windows, ``until`` predicates outside the
        window, and run exits.  Afterwards memory and mirror agree, so
        the external-write journal restarts empty.
        """
        if self._suspended:
            return
        self._suspended = True
        for pid in sorted(self.touched):
            self.program.unpack_lane(pid)
        self.touched.clear()
        dirty = self.dirty
        indexes = _np.flatnonzero(dirty)
        if indexes.size:
            cells = self.cells
            memory = self.memory
            if indexes.size * _FULL_SYNC_FRACTION >= cells.size:
                memory.replace_cells(
                    cells.tolist(),
                    count_zeros=lambda start, stop: _np.count_nonzero(
                        cells[start:stop] == 0
                    ),
                )
            else:
                memory.sync_cells(zip(
                    indexes.tolist(), cells[indexes].tolist()
                ))
            dirty[indexes] = False
        self._watcher.clear()

    def charge_traffic(self) -> None:
        """Charge the accumulated read/write counts into the memory.

        Called at every window boundary (not only at flush) so the
        ledger's traffic totals at any observable point are identical
        to the scalar quiet loop's.
        """
        memory = self.memory
        if self.reads:
            memory.charge_reads(self.reads)
            self.reads = 0
        if self.writes:
            memory.charge_writes(self.writes)
            self.writes = 0

    def mark_dirty(self, addresses) -> None:
        """Record mirror cells written outside :meth:`commit`.

        Vector programs with closed-form bursts (TrivialVector) scatter
        into ``window.cells`` directly; they must mark what they wrote
        so the dirty-cell writeback stays exact.
        """
        self.dirty[addresses] = True

    def commit(self, addresses, pids, values) -> None:
        """Resolve and apply one tick's staged writes.

        Charges one write per distinct address (matching both the
        clean ``commit_resolved`` path and the grouped general path of
        the object lane).  Irregular groups fall back to ordered
        per-address ``policy.resolve`` application, so a policy error
        leaves the same partially-applied state as the reference.
        """
        np = _np
        a, w, v, starts = _sorted_groups(addresses, pids, values)
        if a.size == 0:
            return
        cells = self.cells
        if int(a[0]) < 0 or int(a[-1]) >= cells.size:
            bad = int(a[0]) if int(a[0]) < 0 else int(a[-1])
            raise MemoryError_(
                f"address {bad} out of range [0, {cells.size})"
            )
        uaddrs = a[starts]
        resolved = _vector_resolve(a, w, v, starts, self.policy)
        if resolved is not None:
            self._scatter(uaddrs, resolved)
            return
        ends = np.append(starts[1:], a.size)
        for index in range(starts.size):
            lo = int(starts[index])
            hi = int(ends[index])
            address = int(uaddrs[index])
            writers = [(int(w[j]), int(v[j])) for j in range(lo, hi)]
            value = int(self.policy.resolve(address, writers))
            self._scatter(
                uaddrs[index : index + 1],
                np.asarray([value], dtype=np.int64),
            )

    def _scatter(self, uaddrs, uvals) -> None:
        """Apply resolved (address, value) pairs; maintain the goal count."""
        cells = self.cells
        self.writes += int(uaddrs.size)
        if self.goal is not None:
            start, length = self.goal
            in_region = (uaddrs >= start) & (uaddrs < start + length)
            if bool(in_region.any()):
                old = cells[uaddrs[in_region]]
                new = uvals[in_region]
                filled = int(((old == 0) & (new != 0)).sum())
                emptied = int(((old != 0) & (new == 0)).sum())
                self.goal_zeros += emptied - filled
        cells[uaddrs] = uvals
        self.dirty[uaddrs] = True

    def finish(self) -> None:
        """Charge traffic and flush: the one-shot (non-resident) exit."""
        self.charge_traffic()
        self.flush()

    def close(self) -> None:
        """Flush and detach the external-write journal (end of residency).

        Called when the machine retires the window for good — a new
        program is loaded — so the journal stops charging every scalar
        write with a set insert.
        """
        self.flush()
        self.memory.detach_watcher(self._watcher)


class VectorProgram:
    """Base class for whole-machine vectorized programs.

    One instance covers all P lanes of a run.  Its :meth:`pid_stepper`
    doubles as the machine's compiled-kernel factory, handing out the
    *scalar* kernels that drive observable ticks; the column arrays a
    subclass allocates hold the same state in struct-of-arrays form
    while a window is live, with :meth:`pack_lane` /
    :meth:`unpack_lane` converting at the boundary.
    """

    #: Program-kind tag consumed by the adaptive dispatch cost model
    #: (:mod:`repro.pram.dispatch`); subclasses override with their
    #: algorithm name so per-kind calibrated coefficients apply.
    kind = "generic"

    def __init__(self, layout, scalar_factory: Callable[[int], object]) -> None:
        require_numpy()
        self.layout = layout
        self.p = layout.p
        self.kernels: Dict[int, object] = {}
        self._scalar_factory = scalar_factory

    # -- object-lane adapter ------------------------------------------- #

    def pid_stepper(self, pid: int):
        """CompiledFactory adapter: one shared scalar kernel per PID."""
        kernel = self.kernels.get(pid)
        if kernel is None:
            kernel = self._scalar_factory(pid)
            self.kernels[pid] = kernel
        return kernel

    # -- window lifecycle ---------------------------------------------- #

    def begin_window(
        self, memory, policy: WritePolicy, goal: Optional[Tuple[int, int]]
    ) -> VectorWindow:
        return VectorWindow(self, memory, policy, goal)

    def ensure_packed(self, window: VectorWindow, pids: Sequence[int]) -> None:
        """Pack any lane not yet materialized into the column arrays."""
        touched = window.touched
        for pid in pids:
            if pid not in touched:
                self.pack_lane(pid)
                touched.add(pid)

    # -- subclass responsibilities ------------------------------------- #

    def pack_lane(self, pid: int) -> None:
        """Copy lane ``pid``'s scalar-kernel state into the columns."""
        raise NotImplementedError

    def unpack_lane(self, pid: int) -> None:
        """Copy lane ``pid``'s column state back into its scalar kernel."""
        raise NotImplementedError

    def run_quiet(
        self, window: VectorWindow, pids: Sequence[int], budget: int
    ) -> Burst:
        """Advance lanes ``pids`` by up to ``budget`` quiet ticks.

        Must execute at least one tick, stop *on* (including) the first
        tick where any lane halts or the goal region empties, charge
        reads into ``window.reads``, and stage every tick's writes
        through ``window.commit``.
        """
        raise NotImplementedError
