"""Structured execution tracing for the simulated machine.

A :class:`Tracer` is attached to a machine as (part of) its adversary —
it observes every tick through the same omniscient view adversaries get
and records structured events: cycle attempts and completions, failures,
restarts, and writes to watched cells.  Because it composes through
:class:`~repro.faults.compose.UnionAdversary`, tracing works alongside
any real adversary without touching the machine core.

The recorded trace supports filtering and two renderings: a flat event
log and a per-processor ASCII timeline (one lane per PID, one column per
tick) that makes failure/restart choreography visible at a glance::

    pid 0 |##########F...R####E
    pid 1 |####F.R####F......R#
           ^ tick 1

Legend: ``#`` completed cycle, ``x`` interrupted cycle, ``.`` failed
(down), ``F`` failure event, ``R`` restart event, ``E`` halted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.faults.base import Adversary
from repro.pram.failures import Decision
from repro.pram.view import TickView


class TraceEventKind(Enum):
    CYCLE_PENDING = "cycle"
    WRITE = "write"
    STATUS = "status"


@dataclass(frozen=True)
class TraceEvent:
    """One observed fact about one tick."""

    time: int
    kind: TraceEventKind
    pid: int
    label: str = ""
    address: Optional[int] = None
    value: Optional[int] = None


@dataclass
class TickRecord:
    """Everything the tracer saw during one tick."""

    time: int
    running: Tuple[int, ...] = ()
    failed: Tuple[int, ...] = ()
    halted: Tuple[int, ...] = ()
    labels: Dict[int, str] = field(default_factory=dict)
    watched_values: Dict[int, int] = field(default_factory=dict)


class Tracer(Adversary):
    """A passive observer implemented as a no-op adversary.

    Args:
        watch: shared-memory addresses whose values are sampled per tick.
        max_ticks: ring-buffer capacity (oldest records dropped first).
    """

    def __init__(
        self,
        watch: Iterable[int] = (),
        max_ticks: int = 100_000,
    ) -> None:
        if max_ticks <= 0:
            raise ValueError(f"max_ticks must be positive, got {max_ticks}")
        self.watch: Tuple[int, ...] = tuple(watch)
        self.max_ticks = max_ticks
        self.records: List[TickRecord] = []

    def reset(self) -> None:
        self.records = []

    def quiet_until(self, tick: int) -> int:
        # A tracer never *acts*, but it must *observe* every tick: its
        # decide() appends a TickRecord, so skipping consults would drop
        # records.  Pinning the horizon to the very next tick keeps
        # traces tick-exact; composed through UnionAdversary this also
        # pins the whole union (the minimum member horizon wins), so the
        # machine's fast-forward loop is disabled whenever a trace is
        # being recorded.
        return tick + 1

    def decide(self, view: TickView) -> Decision:
        record = TickRecord(
            time=view.time,
            running=view.running_pids,
            failed=view.failed_pids,
            halted=view.halted_pids,
            labels={pid: view.pending[pid].label for pid in view.pending},
            watched_values={
                address: view.memory.read(address) for address in self.watch
            },
        )
        self.records.append(record)
        if len(self.records) > self.max_ticks:
            del self.records[0 : len(self.records) - self.max_ticks]
        return Decision.none()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def ticks_recorded(self) -> int:
        return len(self.records)

    def labels_of(self, pid: int) -> List[Tuple[int, str]]:
        """The (tick, cycle-label) sequence one processor attempted."""
        return [
            (record.time, record.labels[pid])
            for record in self.records
            if pid in record.labels
        ]

    def watched_series(self, address: int) -> List[Tuple[int, int]]:
        """The (tick, value) series of a watched cell."""
        return [
            (record.time, record.watched_values[address])
            for record in self.records
            if address in record.watched_values
        ]

    def downtime_of(self, pid: int) -> int:
        """Ticks the processor spent failed."""
        return sum(1 for record in self.records if pid in record.failed)


def render_timeline(
    tracer: Tracer,
    ledger,
    pids: Optional[Sequence[int]] = None,
    start: int = 1,
    width: int = 72,
) -> str:
    """ASCII per-processor timeline of a traced run.

    ``ledger`` supplies the realized failure pattern so the F/R marks
    land on exact event ticks.
    """
    if not tracer.records:
        return "(empty trace)"
    first_tick = max(start, tracer.records[0].time)
    last_tick = min(tracer.records[-1].time, first_tick + width - 1)
    by_time = {record.time: record for record in tracer.records}

    failure_marks: Set[Tuple[int, int]] = set()
    restart_marks: Set[Tuple[int, int]] = set()
    for event in ledger.pattern:
        key = (event.pid, event.time)
        if event.is_failure():
            failure_marks.add(key)
        else:
            restart_marks.add(key)

    all_pids: List[int] = sorted(
        pids
        if pids is not None
        else {
            pid
            for record in tracer.records
            for pid in (*record.running, *record.failed, *record.halted)
        }
    )

    lines = []
    for pid in all_pids:
        cells = []
        for tick in range(first_tick, last_tick + 1):
            record = by_time.get(tick)
            if record is None:
                cells.append(" ")
                continue
            if (pid, tick) in failure_marks:
                cells.append("F")
            elif (pid, tick) in restart_marks:
                cells.append("R")
            elif pid in record.running:
                cells.append("#")
            elif pid in record.failed:
                cells.append(".")
            elif pid in record.halted:
                cells.append("E")
            else:
                cells.append(" ")
        lines.append(f"pid {pid:>4} |{''.join(cells)}")
    lines.append(f"         ^ tick {first_tick} .. {last_tick}"
                 f"  (# run, x cut, . down, F fail, R restart, E halted)")
    return "\n".join(lines)
