"""Exception hierarchy for the PRAM substrate.

Every failure mode of the simulated machine maps to a distinct exception
type so tests can assert precisely which model rule was violated.
"""

from __future__ import annotations


class PramError(Exception):
    """Base class for all errors raised by the PRAM substrate."""


class ProgramError(PramError):
    """A processor program violated the update-cycle protocol.

    Raised when a program yields something that is not a :class:`Cycle`,
    exceeds the machine's read/write limits, or requests a snapshot read on
    a machine that does not grant unit-cost snapshots.
    """


class MemoryError_(PramError):
    """An address was out of range or a value violated the word size."""


class WriteConflictError(PramError):
    """Concurrent writes violated the machine's write-resolution policy.

    COMMON CRCW raises this when concurrent writers disagree on the value;
    EREW/CREW raise it on any concurrent write.
    """


class ReadConflictError(PramError):
    """Concurrent reads violated an EREW machine's exclusive-read rule."""


class AdversaryError(PramError):
    """An adversary produced an inconsistent decision.

    Examples: failing a processor that is not running, restarting a
    processor that is not failed, or reporting more applied writes than the
    cycle contains.
    """


class ProgressViolationError(PramError):
    """The adversary stopped every pending update cycle in strict mode.

    The model (Section 2.1, condition 2.(i)) requires that at any time at
    least one processor is executing an update cycle that successfully
    completes.  With ``enforce_progress=False`` and ``strict_progress=True``
    the machine raises this instead of silently thrashing.
    """


class MachineStalledError(PramError):
    """Every processor is failed and the adversary issued no restarts."""


class TickLimitError(PramError):
    """The run exceeded ``max_ticks`` without reaching its goal."""
