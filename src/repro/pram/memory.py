"""Reliable shared memory with atomic word writes.

Model assumptions from Section 2.1/2.3 of the paper:

* shared memory is reliable — failures never corrupt it;
* cells store ``O(log max(N, P))``-bit words and word writes are atomic
  (failures land between writes, never inside one);
* the input occupies the first cells and the rest is cleared (zeroes).

The class also keeps running read/write counters; they feed the ledger's
traffic statistics (useful for sanity-checking the ≤4-read / ≤2-write
update-cycle discipline at the aggregate level).

Two facilities exist purely for the simulator's hot path:

* :class:`ZeroRegionTracker` — a remaining-zeros counter over a cell
  region, maintained incrementally by every write so termination
  predicates (e.g. Write-All's "all of x is non-zero") are O(1) per tick
  instead of an O(N) rescan;
* :meth:`SharedMemory.raw_cells` / :meth:`SharedMemory.commit_resolved` /
  :meth:`SharedMemory.charge_reads` — raw access for the machine's
  validated fast path, which keeps the traffic counters and trackers
  coherent itself.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.pram.errors import MemoryError_

#: Value returned by reads of a faulty cell (the CGP static-memory-fault
#: model: dead cells never store, and reads yield garbage — we make the
#: garbage a recognizable sentinel so simulations stay deterministic).
#: Deliberately nonzero: a dead Write-All cell must never look "written",
#: and zero-region trackers count it as non-zero, so termination
#: predicates that scan for zeros are not fooled either way — fault-aware
#: algorithms must certify completion through their own live structures.
POISON = -(1 << 61)


class ZeroRegionTracker:
    """Incrementally maintained count of zero-valued cells in a region.

    Registered via :meth:`SharedMemory.track_zeros`; every write path of
    the memory (and the machine's raw fast path) keeps ``zeros`` exact,
    so ``tracker.zeros == 0`` is an O(1) "every cell in the region is
    non-zero" test.
    """

    __slots__ = ("start", "stop", "zeros")

    def __init__(self, start: int, stop: int, zeros: int) -> None:
        self.start = start
        self.stop = stop
        self.zeros = zeros

    @property
    def all_nonzero(self) -> bool:
        return self.zeros == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ZeroRegionTracker([{self.start}, {self.stop}), "
            f"zeros={self.zeros})"
        )


class WriteWatcher:
    """A journal of addresses written since it was last cleared.

    Attached via :meth:`SharedMemory.attach_watcher` by a resident
    vector window (see :mod:`repro.pram.vectorized`): while the window
    is suspended, every write path records the touched address here, so
    resuming the window refreshes only those mirror cells instead of
    rebuilding the whole ndarray.  ``overflow`` is set by bulk rewrites
    (:meth:`SharedMemory.replace_cells`) whose touched set is "all of
    memory" — the watcher's owner must then do a full refresh.
    """

    __slots__ = ("addresses", "overflow")

    def __init__(self) -> None:
        self.addresses: set = set()
        self.overflow = False

    def clear(self) -> None:
        self.addresses.clear()
        self.overflow = False


class SharedMemory:
    """A flat array of integer word cells."""

    def __init__(
        self,
        size: int,
        initial: Optional[Sequence[int]] = None,
        word_bits: Optional[int] = None,
    ) -> None:
        if size <= 0:
            raise MemoryError_(f"shared memory size must be positive, got {size}")
        self._cells: List[int] = [0] * size
        self._word_bits = word_bits
        self._trackers: List[ZeroRegionTracker] = []
        self._watchers: List[WriteWatcher] = []
        self._faulty: frozenset = frozenset()
        self.reads_served = 0
        self.writes_applied = 0
        if initial is not None:
            if len(initial) > size:
                raise MemoryError_(
                    f"initial contents ({len(initial)} cells) exceed memory size {size}"
                )
            for address, value in enumerate(initial):
                self._validate_value(address, value)
                self._cells[address] = value

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def size(self) -> int:
        return len(self._cells)

    @property
    def word_bits(self) -> Optional[int]:
        """Word width enforced on writes, or ``None`` for unbounded."""
        return self._word_bits

    def _validate_address(self, address: int) -> None:
        if not isinstance(address, int) or isinstance(address, bool):
            raise MemoryError_(f"address must be an integer, got {address!r}")
        if not 0 <= address < len(self._cells):
            raise MemoryError_(
                f"address {address} out of range [0, {len(self._cells)})"
            )

    def _validate_value(self, address: int, value: int) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise MemoryError_(
                f"cell {address}: values must be integers, got {value!r}"
            )
        if self._word_bits is not None and abs(value) >= (1 << self._word_bits):
            raise MemoryError_(
                f"cell {address}: value {value} does not fit in a "
                f"{self._word_bits}-bit word"
            )

    # ------------------------------------------------------------------ #
    # cell access
    # ------------------------------------------------------------------ #

    def read(self, address: int) -> int:
        """Read one cell (counted toward the traffic statistics)."""
        self._validate_address(address)
        self.reads_served += 1
        return self._cells[address]

    def peek(self, address: int) -> int:
        """Read one cell without charging traffic (for harness/adversary use)."""
        self._validate_address(address)
        return self._cells[address]

    def _set_cell(self, address: int, value: int) -> None:
        """Store a validated value, keeping zero-region trackers exact."""
        if address in self._faulty:
            return  # writes to dead cells vanish (static memory faults)
        cells = self._cells
        old = cells[address]
        cells[address] = value
        if self._trackers and (old == 0) != (value == 0):
            delta = 1 if value == 0 else -1
            for tracker in self._trackers:
                if tracker.start <= address < tracker.stop:
                    tracker.zeros += delta
        if self._watchers:
            for watcher in self._watchers:
                watcher.addresses.add(address)

    def write(self, address: int, value: int) -> None:
        """Atomically write one word (counted toward traffic statistics)."""
        self._validate_address(address)
        self._validate_value(address, value)
        self.writes_applied += 1
        self._set_cell(address, value)

    def poke(self, address: int, value: int) -> None:
        """Write without charging traffic (for harness initialization)."""
        self._validate_address(address)
        self._validate_value(address, value)
        self._set_cell(address, value)

    def snapshot(self) -> List[int]:
        """A copy of the entire contents (harness/adversary use; uncharged)."""
        return list(self._cells)

    def load(self, values: Iterable[int], offset: int = 0) -> None:
        """Bulk-load ``values`` starting at ``offset`` (uncharged)."""
        for delta, value in enumerate(values):
            self.poke(offset + delta, value)

    def region(self, start: int, length: int) -> List[int]:
        """A copy of ``length`` cells starting at ``start`` (uncharged).

        An empty region is legal anywhere in ``[0, size]`` — including
        ``start == size``, the one-past-the-end position a zero-length
        slice at the end of memory naturally has.
        """
        if length < 0:
            raise MemoryError_(f"region length must be non-negative, got {length}")
        if length == 0:
            if (
                isinstance(start, int)
                and not isinstance(start, bool)
                and 0 <= start <= len(self._cells)
            ):
                return []
            self._validate_address(start)  # raises the standard error
        self._validate_address(start)
        if start + length > len(self._cells):
            raise MemoryError_(
                f"region [{start}, {start + length}) exceeds memory size "
                f"{len(self._cells)}"
            )
        return self._cells[start : start + length]

    # ------------------------------------------------------------------ #
    # fast-path hooks (simulator internals)
    # ------------------------------------------------------------------ #

    def raw_cells(self) -> List[int]:
        """The underlying cell list, for the machine's validated fast path.

        Callers reading from it must charge traffic via
        :meth:`charge_reads`; callers writing through it must instead go
        through :meth:`commit_resolved` so counters and zero-region
        trackers stay exact.
        """
        return self._cells

    def charge_reads(self, count: int) -> None:
        """Charge ``count`` reads performed through :meth:`raw_cells`."""
        self.reads_served += count

    def charge_writes(self, count: int) -> None:
        """Charge ``count`` writes applied outside :meth:`write`.

        Counterpart of :meth:`charge_reads` for the vectorized lane,
        which resolves and applies whole quiet windows of writes in a
        detached ndarray and syncs the result back in bulk via
        :meth:`replace_cells`.
        """
        self.writes_applied += count

    def replace_cells(
        self,
        values: Sequence[int],
        count_zeros: Optional[Callable[[int, int], int]] = None,
    ) -> None:
        """Overwrite the full contents in bulk (uncharged); recount trackers.

        The vectorized lane's window-exit sync: ``values`` must cover
        every cell.  Traffic is charged separately (the window counted
        its own reads/writes); zero-region trackers are recounted
        exactly, so incremental termination predicates stay coherent
        with the new contents.  ``count_zeros(start, stop)``, when
        given, must return the exact zero count of ``values[start:stop]``
        — callers holding the data in an ndarray use it to replace the
        per-cell Python scan with one array reduction.
        """
        cells = self._cells
        if len(values) != len(cells):
            raise MemoryError_(
                f"replace_cells got {len(values)} values for "
                f"{len(cells)} cells"
            )
        cells[:] = values
        if self._faulty:
            # Dead cells never change: re-pin the poison the bulk assign
            # may have clobbered, and recount trackers by scan (the
            # caller's count_zeros saw the pre-pin values).
            for address in self._faulty:
                cells[address] = POISON
            count_zeros = None
        for watcher in self._watchers:
            # The touched set is "everything": watchers must do a full
            # refresh rather than enumerate every address.
            watcher.overflow = True
        for tracker in self._trackers:
            if count_zeros is not None:
                tracker.zeros = int(count_zeros(tracker.start, tracker.stop))
            else:
                tracker.zeros = sum(
                    1 for value in cells[tracker.start : tracker.stop]
                    if value == 0
                )

    def commit_resolved(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Apply pre-validated resolved writes (one per address).

        Fast-path equivalent of calling :meth:`write` per pair: charges
        one write per pair and keeps zero-region trackers exact.
        Addresses must already be in range.
        """
        self.writes_applied += len(pairs)
        if self._faulty:
            pairs = [
                (address, value) for address, value in pairs
                if address not in self._faulty
            ]
        cells = self._cells
        trackers = self._trackers
        watchers = self._watchers
        if trackers or watchers:
            for address, value in pairs:
                old = cells[address]
                cells[address] = value
                if trackers and (old == 0) != (value == 0):
                    delta = 1 if value == 0 else -1
                    for tracker in trackers:
                        if tracker.start <= address < tracker.stop:
                            tracker.zeros += delta
                for watcher in watchers:
                    watcher.addresses.add(address)
        else:
            for address, value in pairs:
                cells[address] = value

    def attach_watcher(self) -> WriteWatcher:
        """Register (and return) a journal of subsequently written cells."""
        watcher = WriteWatcher()
        self._watchers.append(watcher)
        return watcher

    def detach_watcher(self, watcher: WriteWatcher) -> None:
        """Unregister a journal returned by :meth:`attach_watcher`."""
        if watcher in self._watchers:
            self._watchers.remove(watcher)

    def sync_cells(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Apply externally resolved cell contents (uncharged, unjournaled).

        The resident vector window's dirty-cell writeback: like
        :meth:`replace_cells` it charges no traffic (the window counted
        its own reads/writes) and keeps zero-region trackers exact, but
        it touches only the given cells — O(dirty) instead of O(M) —
        and does *not* notify watchers (the caller IS the watcher's
        owner, syncing its own mirror; after it, mirror and memory
        agree, so it clears its journal instead).
        """
        cells = self._cells
        trackers = self._trackers
        faulty = self._faulty
        if trackers:
            for address, value in pairs:
                if address in faulty:
                    continue
                old = cells[address]
                cells[address] = value
                if (old == 0) != (value == 0):
                    delta = 1 if value == 0 else -1
                    for tracker in trackers:
                        if tracker.start <= address < tracker.stop:
                            tracker.zeros += delta
        else:
            for address, value in pairs:
                if address in faulty:
                    continue
                cells[address] = value

    def track_zeros(self, start: int, length: int) -> ZeroRegionTracker:
        """Register (or fetch) a zero-count tracker over a cell region.

        The initial count is taken by one scan; afterwards every write
        path maintains it incrementally.  Idempotent per (start, length).
        """
        if length < 0:
            raise MemoryError_(
                f"tracked region length must be non-negative, got {length}"
            )
        if length:
            self._validate_address(start)
            if start + length > len(self._cells):
                raise MemoryError_(
                    f"tracked region [{start}, {start + length}) exceeds "
                    f"memory size {len(self._cells)}"
                )
        stop = start + length
        for tracker in self._trackers:
            if tracker.start == start and tracker.stop == stop:
                return tracker
        zeros = sum(1 for value in self._cells[start:stop] if value == 0)
        tracker = ZeroRegionTracker(start, stop, zeros)
        self._trackers.append(tracker)
        return tracker

    # ------------------------------------------------------------------ #
    # static memory faults (Chlebus–Gasieniec–Pelc model)
    # ------------------------------------------------------------------ #

    def mark_faulty(self, addresses: Iterable[int]) -> None:
        """Declare cells permanently dead (static memory faults).

        From this call on, every write path silently drops writes to
        these cells and reads return :data:`POISON`.  Faults never heal;
        repeated calls accumulate.  The poison is pinned into the cell
        contents directly, so the machine's raw fast path and compiled
        kernels observe it with no read-path changes.  Zero-region
        trackers are updated (a dead cell counts as non-zero), which is
        deliberate: a tracker-based "all written" check can be *fooled*
        by poison, exactly as the CGP model intends — fault-aware
        algorithms must certify completion through live cells.
        """
        dead = []
        for address in addresses:
            self._validate_address(address)
            if address not in self._faulty:
                dead.append(address)
        if not dead:
            return
        self._faulty = self._faulty | frozenset(dead)
        for address in dead:
            old = self._cells[address]
            self._cells[address] = POISON
            if self._trackers and old == 0:
                for tracker in self._trackers:
                    if tracker.start <= address < tracker.stop:
                        tracker.zeros -= 1
            if self._watchers:
                for watcher in self._watchers:
                    watcher.addresses.add(address)

    @property
    def has_faults(self) -> bool:
        """Whether any cell has been marked dead."""
        return bool(self._faulty)

    def faulty_addresses(self) -> frozenset:
        """The (immutable) set of dead cell addresses."""
        return self._faulty

    def is_faulty(self, address: int) -> bool:
        return address in self._faulty


class MemoryReader:
    """A read-only facade over :class:`SharedMemory`.

    Handed to adversaries (which are omniscient about machine state but
    must not mutate it) and to termination predicates.
    """

    def __init__(self, memory: SharedMemory) -> None:
        self._memory = memory

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def size(self) -> int:
        return self._memory.size

    def read(self, address: int) -> int:
        return self._memory.peek(address)

    def __getitem__(self, address: int) -> int:
        return self._memory.peek(address)

    def region(self, start: int, length: int) -> List[int]:
        return self._memory.region(start, length)

    def snapshot(self) -> List[int]:
        return self._memory.snapshot()

    def track_zeros(self, start: int, length: int) -> ZeroRegionTracker:
        """Register a zero-region tracker (termination-predicate use).

        Mutates only the memory's *accounting* structures, never model
        state, so it is safe to expose on the read-only facade.
        """
        return self._memory.track_zeros(start, length)

    @property
    def has_faults(self) -> bool:
        return self._memory.has_faults

    def faulty_addresses(self) -> frozenset:
        return self._memory.faulty_addresses()

    def is_faulty(self, address: int) -> bool:
        return self._memory.is_faulty(address)
