"""Reliable shared memory with atomic word writes.

Model assumptions from Section 2.1/2.3 of the paper:

* shared memory is reliable — failures never corrupt it;
* cells store ``O(log max(N, P))``-bit words and word writes are atomic
  (failures land between writes, never inside one);
* the input occupies the first cells and the rest is cleared (zeroes).

The class also keeps running read/write counters; they feed the ledger's
traffic statistics (useful for sanity-checking the ≤4-read / ≤2-write
update-cycle discipline at the aggregate level).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.pram.errors import MemoryError_


class SharedMemory:
    """A flat array of integer word cells."""

    def __init__(
        self,
        size: int,
        initial: Optional[Sequence[int]] = None,
        word_bits: Optional[int] = None,
    ) -> None:
        if size <= 0:
            raise MemoryError_(f"shared memory size must be positive, got {size}")
        self._cells: List[int] = [0] * size
        self._word_bits = word_bits
        self.reads_served = 0
        self.writes_applied = 0
        if initial is not None:
            if len(initial) > size:
                raise MemoryError_(
                    f"initial contents ({len(initial)} cells) exceed memory size {size}"
                )
            for address, value in enumerate(initial):
                self._validate_value(address, value)
                self._cells[address] = value

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def size(self) -> int:
        return len(self._cells)

    @property
    def word_bits(self) -> Optional[int]:
        """Word width enforced on writes, or ``None`` for unbounded."""
        return self._word_bits

    def _validate_address(self, address: int) -> None:
        if not isinstance(address, int) or isinstance(address, bool):
            raise MemoryError_(f"address must be an integer, got {address!r}")
        if not 0 <= address < len(self._cells):
            raise MemoryError_(
                f"address {address} out of range [0, {len(self._cells)})"
            )

    def _validate_value(self, address: int, value: int) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise MemoryError_(
                f"cell {address}: values must be integers, got {value!r}"
            )
        if self._word_bits is not None and abs(value) >= (1 << self._word_bits):
            raise MemoryError_(
                f"cell {address}: value {value} does not fit in a "
                f"{self._word_bits}-bit word"
            )

    def read(self, address: int) -> int:
        """Read one cell (counted toward the traffic statistics)."""
        self._validate_address(address)
        self.reads_served += 1
        return self._cells[address]

    def peek(self, address: int) -> int:
        """Read one cell without charging traffic (for harness/adversary use)."""
        self._validate_address(address)
        return self._cells[address]

    def write(self, address: int, value: int) -> None:
        """Atomically write one word (counted toward traffic statistics)."""
        self._validate_address(address)
        self._validate_value(address, value)
        self.writes_applied += 1
        self._cells[address] = value

    def poke(self, address: int, value: int) -> None:
        """Write without charging traffic (for harness initialization)."""
        self._validate_address(address)
        self._validate_value(address, value)
        self._cells[address] = value

    def snapshot(self) -> List[int]:
        """A copy of the entire contents (harness/adversary use; uncharged)."""
        return list(self._cells)

    def load(self, values: Iterable[int], offset: int = 0) -> None:
        """Bulk-load ``values`` starting at ``offset`` (uncharged)."""
        for delta, value in enumerate(values):
            self.poke(offset + delta, value)

    def region(self, start: int, length: int) -> List[int]:
        """A copy of ``length`` cells starting at ``start`` (uncharged)."""
        if length < 0:
            raise MemoryError_(f"region length must be non-negative, got {length}")
        self._validate_address(start)
        if length and start + length > len(self._cells):
            raise MemoryError_(
                f"region [{start}, {start + length}) exceeds memory size "
                f"{len(self._cells)}"
            )
        return self._cells[start : start + length]


class MemoryReader:
    """A read-only facade over :class:`SharedMemory`.

    Handed to adversaries (which are omniscient about machine state but
    must not mutate it) and to termination predicates.
    """

    def __init__(self, memory: SharedMemory) -> None:
        self._memory = memory

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def size(self) -> int:
        return self._memory.size

    def read(self, address: int) -> int:
        return self._memory.peek(address)

    def __getitem__(self, address: int) -> int:
        return self._memory.peek(address)

    def region(self, start: int, length: int) -> List[int]:
        return self._memory.region(start, length)

    def snapshot(self) -> List[int]:
        return self._memory.snapshot()
