"""Compiled program kernels: cycle streams without generator dispatch.

A processor *program* is normally a Python generator yielding
:class:`~repro.pram.cycles.Cycle` objects.  That representation is the
executable specification — every cycle is a fresh dataclass, every tick
resumes one generator frame per running processor.  After the fast path
(allocation-lean ticks) and event horizons (batched quiescent windows),
that generator dispatch is the last big constant factor on the inner
loop of large sweeps.

A :class:`CompiledProgram` is the compiled form of the same program: a
per-PID stepper object with *explicit* state that

* is rebuilt from the PID alone on every (re)start — matching the
  paper's fail-stop semantics, where a restarted processor comes back
  "at its initial state with its PID as its only knowledge";
* can emit read addresses and staged writes directly into the machine's
  scratch buffers (:meth:`CompiledProgram.quiet_step`), with no
  generator resume and no ``Cycle``/``Write`` allocation;
* can still materialize a bona-fide :class:`Cycle` for any tick the
  adversary (or a tracer) needs to observe
  (:meth:`CompiledProgram.current_cycle`), so traces, pending views, and
  the realized failure pattern are identical to the generator path.

**Soundness contract for kernel authors.**  A kernel must be
*observationally identical* to the generator program it compiles:

* ``current_cycle()`` must return a cycle with the same label, the same
  read specs (same addresses, in the same order, with the same
  ``None``-skip shape), and writes that materialize to the same
  ``(address, value)`` sequence the generator's cycle would produce for
  any read-value tuple;
* ``quiet_step()`` must charge exactly as many reads as the generator
  cycle performs (``None`` read specs charge nothing), append only
  in-range integer ``(address, value)`` pairs in the cycle's write
  order, and advance the state exactly as ``advance()`` would with the
  values it just read;
* state transitions may depend only on the PID, the layout constants
  captured at construction, and the values read — never on wall-clock,
  randomness that is not PID-derived, or machine internals;
* ``reset()`` must restore the exact initial state (a restarted
  processor must be indistinguishable from a freshly spawned one).

The differential suite runs every algorithm × adversary combination
with kernels on, off, and against the reference core and asserts
ledger, trace, and memory equality — that suite is the contract's
enforcement.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.pram.cycles import Cycle

#: A compiled-program factory: called with the PID, returns the per-PID
#: stepper.  The machine calls ``reset()`` before first use.
CompiledFactory = Callable[[int], "CompiledProgram"]


class CompiledProgram:
    """Base class / protocol for compiled per-PID program steppers.

    Subclasses hold the program state explicitly (plain attributes), so
    the machine can advance them without resuming a generator frame.
    The machine drives a stepper through exactly one of two lanes per
    tick:

    * the **fused quiet lane** calls :meth:`quiet_step` once per tick —
      read, compute, stage writes, advance, all in one call;
    * the **observable lane** (adversary ticks, tracing, the reference
      core) calls :meth:`current_cycle` to materialize the pending
      cycle, and after the machine resolves the tick,
      :meth:`advance` with the values that were read.

    ``live`` is ``True`` from a successful :meth:`reset` until the
    program halts voluntarily (``advance``/``quiet_step`` observed the
    halt condition).  A failed processor's stepper keeps whatever state
    it had — the state is conceptually lost, and :meth:`reset` rebuilds
    it from the PID on restart.
    """

    __slots__ = ("live",)

    def reset(self) -> bool:
        """(Re)build the initial state from the PID alone.

        Returns ``False`` when the program halts immediately (the
        generator analogue: the first ``next()`` raises
        ``StopIteration``), ``True`` otherwise.  Must set ``live``
        accordingly.
        """
        raise NotImplementedError

    def current_cycle(self) -> Cycle:
        """Materialize the pending cycle for adversary-visible ticks.

        Pure: must not mutate the stepper state.  The returned cycle
        must be observationally identical to the one the generator
        program would currently have pending.
        """
        raise NotImplementedError

    def advance(self, values: Tuple[int, ...]) -> bool:
        """Complete the pending cycle with the values that were read.

        Returns ``False`` when the program halts voluntarily (the
        generator analogue: ``send()`` raises ``StopIteration``), and
        must keep ``live`` in sync.
        """
        raise NotImplementedError

    def quiet_step(self, cells: Sequence[int], out: List[int]) -> int:
        """One fused read→compute→stage→advance step (quiet ticks only).

        ``cells`` is the raw memory cell array (read-only by contract);
        staged writes are appended to ``out`` as flat
        ``address, value`` pairs in cycle write order.  Returns the
        number of reads to charge.  Must update ``live`` exactly as
        :meth:`advance` would.
        """
        raise NotImplementedError


def trusted_compiled_program(algorithm: object):
    """The algorithm's ``compiled_program`` hook, or None if untrusted.

    A compiled kernel is a promise about what ``program()`` does, so —
    exactly like the adversary's ``passive`` flag and ``quiet_until``
    horizon — it is only trusted when declared by the class that
    defines the instance's *effective* ``program()`` (or a subclass of
    it).  A subclass that overrides ``program()`` while inheriting its
    parent's kernel would silently run the wrong compiled code; it
    falls back to the always-sound generator path instead.
    """
    hook = getattr(algorithm, "compiled_program", None)
    if hook is None:
        return None
    instance_vars = getattr(algorithm, "__dict__", {})
    if "compiled_program" in instance_vars:
        return hook
    if "program" in instance_vars:
        return None
    for klass in type(algorithm).__mro__:
        if "compiled_program" in vars(klass):
            return hook
        if "program" in vars(klass):
            return None
    return None


def resolve_kernel(
    algorithm: object, layout: object, tasks: object, compiled: bool = True
) -> Optional[CompiledFactory]:
    """The kernel factory to install for a run, or None for generators.

    Combines the opt-out switch (``compiled=False`` — the
    ``--no-compiled`` escape hatch), the MRO trust guard, and the
    algorithm's own gating (``compiled_program`` returns None for
    configurations it has no kernel for, e.g. non-trivial task sets).
    """
    if not compiled:
        return None
    hook = trusted_compiled_program(algorithm)
    if hook is None:
        return None
    return hook(layout, tasks)
