"""The omniscient on-line adversary's view of a machine tick.

"A failure pattern F is determined by an on-line adversary, that knows
everything about the algorithm and is unknown to the algorithm"
(Section 2.1).  The view hands the adversary, per tick:

* the clock, every processor's status, and the run ledger so far;
* read-only shared memory;
* each running processor's *pending* update cycle — including the write
  set its compute step will produce — so the adversary can fail processors
  based on what they are about to do (this is exactly the power the
  pigeonhole-halving and stalking adversaries of the paper require);
* harness-provided context (e.g. the algorithm's memory layout) so
  adversaries can locate the Write-All array, progress tree, etc.

Views are rebuilt every tick on the machine's hot path, so they are
deliberately allocation-lean: :class:`PendingCycleView` is a NamedTuple
(one tuple allocation, no per-field ``__setattr__``), and ``statuses``
may be a read-only proxy over the machine's cached status table rather
than a fresh dict — adversaries must treat every view field as frozen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, NamedTuple, Tuple

from repro.pram.cycles import Cycle, Write
from repro.pram.ledger import RunLedger
from repro.pram.memory import MemoryReader
from repro.pram.processor import ProcessorStatus


class PendingCycleView(NamedTuple):
    """What one running processor is about to do this tick."""

    pid: int
    cycle: Cycle
    read_values: Tuple[int, ...]
    writes: Tuple[Write, ...]

    @property
    def label(self) -> str:
        return self.cycle.label

    def writes_to(self, address: int) -> bool:
        return any(write.address == address for write in self.writes)


@dataclass(frozen=True)
class TickView:
    """Everything the adversary may inspect before ruling on a tick."""

    time: int
    memory: MemoryReader
    statuses: Mapping[int, ProcessorStatus]
    pending: Mapping[int, PendingCycleView]
    ledger: RunLedger
    context: Mapping[str, object]

    @property
    def running_pids(self) -> Tuple[int, ...]:
        return tuple(
            pid
            for pid, status in sorted(self.statuses.items())
            if status is ProcessorStatus.RUNNING
        )

    @property
    def failed_pids(self) -> Tuple[int, ...]:
        return tuple(
            pid
            for pid, status in sorted(self.statuses.items())
            if status is ProcessorStatus.FAILED
        )

    @property
    def halted_pids(self) -> Tuple[int, ...]:
        return tuple(
            pid
            for pid, status in sorted(self.statuses.items())
            if status is ProcessorStatus.HALTED
        )

    def writers_of(self, address: int) -> Tuple[int, ...]:
        """PIDs whose pending cycle writes to ``address`` this tick."""
        return tuple(
            pid
            for pid, pending in sorted(self.pending.items())
            if pending.writes_to(address)
        )
