"""Run accounting: completed work ``S``, charged work ``S'`` and friends.

Definitions 2.2 and 2.3 of the paper:

* ``S = c * sum_i P_i(I, F)`` where ``P_i`` is the number of processors
  *completing* an update cycle at time ``i`` (we take the cycle cost
  ``c = 1``);
* ``S'`` additionally charges cycles the adversary interrupted
  (``S' <= S + |F|`` — Remark 2);
* the overhead ratio ``sigma = max S / (|I| + |F|)`` amortizes work over
  the input size and the failure-pattern size.

The ledger records everything a single run produced; the aggregate
measures of Definition 2.3 (maxima over inputs and patterns) are taken by
the benchmark harness across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pram.failures import FailurePattern


@dataclass
class RunLedger:
    """Accounting record of one machine run."""

    #: Number of clock ticks executed.
    ticks: int = 0
    #: Completed update cycles, per PID.
    completed_by_pid: Dict[int, int] = field(default_factory=dict)
    #: Update cycles charged under the S' measure, per PID (completed plus
    #: adversary-interrupted attempts).
    attempted_by_pid: Dict[int, int] = field(default_factory=dict)
    #: The realized failure pattern F.
    pattern: FailurePattern = field(default_factory=FailurePattern)
    #: Times the machine vetoed the adversary to preserve the progress
    #: condition (Section 2.1, condition 2.(i)).
    progress_vetoes: int = 0
    #: Times the optional fairness window forced an interrupted
    #: processor's cycle through (see Machine(fairness_window=...)).
    fairness_vetoes: int = 0
    #: Number of P_i(I, F) values, i.e. completed cycles per tick.
    completed_per_tick: List[int] = field(default_factory=list)
    #: Shared-memory traffic totals.
    memory_reads: int = 0
    memory_writes: int = 0
    #: Why the run ended.
    halted: bool = False
    goal_reached: bool = False
    stalled: bool = False
    tick_limited: bool = False

    # ------------------------------------------------------------------ #
    # paper measures
    # ------------------------------------------------------------------ #

    @property
    def completed_work(self) -> int:
        """``S`` — completed update cycles across all processors."""
        return sum(self.completed_by_pid.values())

    @property
    def charged_work(self) -> int:
        """``S'`` — completed plus interrupted update cycles."""
        return sum(self.attempted_by_pid.values())

    @property
    def pattern_size(self) -> int:
        """``|F|`` — cardinality of the realized failure pattern."""
        return self.pattern.size

    def overhead_ratio(self, input_size: int) -> float:
        """``sigma = S / (|I| + |F|)`` for this run."""
        denominator = input_size + self.pattern_size
        if denominator <= 0:
            raise ValueError(
                f"overhead ratio needs |I| + |F| > 0, got {denominator}"
            )
        return self.completed_work / denominator

    @property
    def parallel_time(self) -> int:
        """Ticks elapsed — the tau of Parallel-time x Processors."""
        return self.ticks

    # ------------------------------------------------------------------ #
    # recording hooks (called by the machine)
    # ------------------------------------------------------------------ #

    def charge_attempt(self, pid: int) -> None:
        self.attempted_by_pid[pid] = self.attempted_by_pid.get(pid, 0) + 1

    def charge_completion(self, pid: int) -> None:
        self.completed_by_pid[pid] = self.completed_by_pid.get(pid, 0) + 1

    def describe(self, input_size: Optional[int] = None) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"ticks={self.ticks}",
            f"S (completed work)={self.completed_work}",
            f"S' (charged work)={self.charged_work}",
            f"|F| (failures+restarts)={self.pattern_size}"
            f" ({self.pattern.failure_count} failures,"
            f" {self.pattern.restart_count} restarts)",
        ]
        if input_size is not None and input_size + self.pattern_size > 0:
            lines.append(f"sigma=S/(N+|F|)={self.overhead_ratio(input_size):.3f}")
        status = (
            "goal reached"
            if self.goal_reached
            else "halted"
            if self.halted
            else "stalled"
            if self.stalled
            else "tick limited"
            if self.tick_limited
            else "running"
        )
        lines.append(f"status={status}")
        return ", ".join(lines)
