"""Run accounting: completed work ``S``, charged work ``S'`` and friends.

Definitions 2.2 and 2.3 of the paper:

* ``S = c * sum_i P_i(I, F)`` where ``P_i`` is the number of processors
  *completing* an update cycle at time ``i`` (we take the cycle cost
  ``c = 1``);
* ``S'`` additionally charges cycles the adversary interrupted
  (``S' <= S + |F|`` — Remark 2);
* the overhead ratio ``sigma = max S / (|I| + |F|)`` amortizes work over
  the input size and the failure-pattern size.

The ledger records everything a single run produced; the aggregate
measures of Definition 2.3 (maxima over inputs and patterns) are taken by
the benchmark harness across runs.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.pram.failures import FailurePattern


class PidCounter(MappingABC):
    """An array-backed per-PID counter with the sparse-dict interface.

    The machine's hot loop charges one attempt (and usually one
    completion) per running processor per tick; a plain ``dict`` pays a
    hash + probe per charge.  This counter stores counts in a flat list
    indexed by PID — an O(1) list add per charge — while presenting the
    same *observable* mapping as the sparse dicts it replaces: PIDs with
    a zero count are absent (``pid in counter`` is False, iteration
    skips them, ``len`` counts only non-zero entries), and
    ``collections.abc.Mapping`` supplies dict-compatible equality, so
    ledgers from array-backed and dict-backed runs compare equal.
    """

    __slots__ = ("_counts",)

    def __init__(self, size: int = 0) -> None:
        self._counts: List[int] = [0] * size

    # -- fast-path hooks ------------------------------------------------ #

    def increment(self, pid: int, amount: int = 1) -> None:
        counts = self._counts
        if pid >= len(counts):
            counts.extend([0] * (pid + 1 - len(counts)))
        counts[pid] += amount

    def increment_many(self, pids: Iterable[int], amount: int) -> None:
        """Add ``amount`` to every pid in one pass (window flushes)."""
        counts = self._counts
        length = len(counts)
        for pid in pids:
            if pid < length:
                counts[pid] += amount
            else:
                self.increment(pid, amount)
                length = len(counts)

    def backing_list(self) -> List[int]:
        """The raw count array (machine fast-path use only).

        Callers may add to existing slots but must never shrink the
        list; PIDs beyond its length go through :meth:`increment`.
        """
        return self._counts

    def total(self) -> int:
        return sum(self._counts)

    # -- Mapping interface ---------------------------------------------- #

    def __getitem__(self, pid: int) -> int:
        counts = self._counts
        if isinstance(pid, int) and 0 <= pid < len(counts) and counts[pid]:
            return counts[pid]
        raise KeyError(pid)

    def __iter__(self) -> Iterator[int]:
        return (pid for pid, count in enumerate(self._counts) if count)

    def __len__(self) -> int:
        return sum(1 for count in self._counts if count)

    def get(self, pid: int, default=None):
        counts = self._counts
        if isinstance(pid, int) and 0 <= pid < len(counts) and counts[pid]:
            return counts[pid]
        return default

    def copy(self) -> Dict[int, int]:
        return {pid: count for pid, count in enumerate(self._counts) if count}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PidCounter({self.copy()!r})"


@dataclass
class RunLedger:
    """Accounting record of one machine run."""

    #: Number of clock ticks executed.
    ticks: int = 0
    #: Completed update cycles, per PID.  A plain dict by default; the
    #: machine swaps in an array-backed :class:`PidCounter` (same
    #: observable mapping) via :meth:`use_array_counters`.
    completed_by_pid: Mapping[int, int] = field(default_factory=dict)
    #: Update cycles charged under the S' measure, per PID (completed plus
    #: adversary-interrupted attempts).
    attempted_by_pid: Mapping[int, int] = field(default_factory=dict)
    #: The realized failure pattern F.
    pattern: FailurePattern = field(default_factory=FailurePattern)
    #: Times the machine vetoed the adversary to preserve the progress
    #: condition (Section 2.1, condition 2.(i)).
    progress_vetoes: int = 0
    #: Times the optional fairness window forced an interrupted
    #: processor's cycle through (see Machine(fairness_window=...)).
    fairness_vetoes: int = 0
    #: Number of P_i(I, F) values, i.e. completed cycles per tick.
    completed_per_tick: List[int] = field(default_factory=list)
    #: Shared-memory traffic totals.
    memory_reads: int = 0
    memory_writes: int = 0
    #: Why the run ended.
    halted: bool = False
    goal_reached: bool = False
    stalled: bool = False
    tick_limited: bool = False

    # ------------------------------------------------------------------ #
    # paper measures
    # ------------------------------------------------------------------ #

    @property
    def completed_work(self) -> int:
        """``S`` — completed update cycles across all processors."""
        counter = self.completed_by_pid
        if type(counter) is PidCounter:
            return counter.total()
        return sum(counter.values())

    @property
    def charged_work(self) -> int:
        """``S'`` — completed plus interrupted update cycles."""
        counter = self.attempted_by_pid
        if type(counter) is PidCounter:
            return counter.total()
        return sum(counter.values())

    @property
    def pattern_size(self) -> int:
        """``|F|`` — cardinality of the realized failure pattern."""
        return self.pattern.size

    def overhead_ratio(self, input_size: int) -> float:
        """``sigma = S / (|I| + |F|)`` for this run."""
        denominator = input_size + self.pattern_size
        if denominator <= 0:
            raise ValueError(
                f"overhead ratio needs |I| + |F| > 0, got {denominator}"
            )
        return self.completed_work / denominator

    @property
    def parallel_time(self) -> int:
        """Ticks elapsed — the tau of Parallel-time x Processors."""
        return self.ticks

    # ------------------------------------------------------------------ #
    # recording hooks (called by the machine)
    # ------------------------------------------------------------------ #

    def use_array_counters(self, num_processors: int) -> None:
        """Switch the per-PID counters to array backing (machine setup).

        Only legal before any work is charged; a no-op if already
        array-backed.
        """
        if type(self.attempted_by_pid) is not PidCounter:
            if self.attempted_by_pid or self.completed_by_pid:
                raise ValueError(
                    "cannot switch counter backing after work was charged"
                )
            self.attempted_by_pid = PidCounter(num_processors)
            self.completed_by_pid = PidCounter(num_processors)

    def charge_attempt(self, pid: int) -> None:
        counter = self.attempted_by_pid
        if type(counter) is PidCounter:
            counter.increment(pid)
        else:
            counter[pid] = counter.get(pid, 0) + 1

    def charge_completion(self, pid: int) -> None:
        counter = self.completed_by_pid
        if type(counter) is PidCounter:
            counter.increment(pid)
        else:
            counter[pid] = counter.get(pid, 0) + 1

    def charge_quiet_window(self, pids: Sequence[int], ticks: int) -> None:
        """Flush a fast-forwarded quiescent window in one batch.

        During ``ticks`` consecutive adversary-free ticks every pid in
        ``pids`` attempted *and* completed exactly one update cycle per
        tick, so attempts, completions, and the per-tick completion
        series can all be charged wholesale.  Equivalent to ``ticks``
        individual :meth:`charge_attempt` + :meth:`charge_completion`
        rounds plus ``completed_per_tick.append(len(pids))`` each tick.
        """
        if ticks <= 0:
            return
        attempted = self.attempted_by_pid
        completed = self.completed_by_pid
        if type(attempted) is PidCounter:
            attempted.increment_many(pids, ticks)
        else:
            for pid in pids:
                attempted[pid] = attempted.get(pid, 0) + ticks
        if type(completed) is PidCounter:
            completed.increment_many(pids, ticks)
        else:
            for pid in pids:
                completed[pid] = completed.get(pid, 0) + ticks
        self.completed_per_tick.extend([len(pids)] * ticks)

    def describe(self, input_size: Optional[int] = None) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"ticks={self.ticks}",
            f"S (completed work)={self.completed_work}",
            f"S' (charged work)={self.charged_work}",
            f"|F| (failures+restarts)={self.pattern_size}"
            f" ({self.pattern.failure_count} failures,"
            f" {self.pattern.restart_count} restarts)",
        ]
        if input_size is not None and input_size + self.pattern_size > 0:
            lines.append(f"sigma=S/(N+|F|)={self.overhead_ratio(input_size):.3f}")
        status = (
            "goal reached"
            if self.goal_reached
            else "halted"
            if self.halted
            else "stalled"
            if self.stalled
            else "tick limited"
            if self.tick_limited
            else "running"
        )
        lines.append(f"status={status}")
        return ", ".join(lines)
