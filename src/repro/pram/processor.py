"""Processor lifecycle: running, failed, restarted, halted.

A restartable fail-stop processor (Section 2.1):

* runs a synchronous program, one update cycle per clock tick;
* may be failed by the adversary at any point of a cycle — its private
  memory (here: the program generator's local state) is lost;
* may later be restarted *"at their initial state with their PID as their
  only knowledge"* — here: a fresh generator built from the same program
  factory;
* halts voluntarily when its program returns (e.g. algorithm X exits once
  its pointer leaves the progress-tree root).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Generator, Optional

from repro.pram.cycles import Cycle
from repro.pram.errors import ProgramError

#: A processor program: called with the PID, returns a generator that
#: yields :class:`Cycle` objects and receives read-value tuples.
ProgramFactory = Callable[[int], Generator[Cycle, tuple, None]]


class ProcessorStatus(Enum):
    RUNNING = "running"
    FAILED = "failed"
    HALTED = "halted"


class Processor:
    """State of one fail-stop processor inside the machine."""

    def __init__(self, pid: int, program_factory: ProgramFactory) -> None:
        self.pid = pid
        self._program_factory = program_factory
        self.status = ProcessorStatus.FAILED  # becomes RUNNING on spawn()
        self._generator: Optional[Generator[Cycle, tuple, None]] = None
        self._pending: Optional[Cycle] = None
        self.cycles_completed = 0
        self.cycles_attempted = 0
        self.restart_count = 0
        # Shared status-epoch cell (a one-element list), installed by the
        # owning machine.  Every status transition bumps it, which is how
        # the machine knows its cached running-list/statuses snapshots
        # are stale — including transitions driven directly by tests.
        self._epoch_cell: Optional[list] = None

    def bind_epoch_cell(self, cell: list) -> None:
        """Install the owner's status-epoch cell (see Machine)."""
        self._epoch_cell = cell

    def _bump_epoch(self) -> None:
        cell = self._epoch_cell
        if cell is not None:
            cell[0] += 1

    # ------------------------------------------------------------------ #
    # lifecycle transitions
    # ------------------------------------------------------------------ #

    def spawn(self) -> None:
        """Start (or restart) the program from its initial state."""
        generator = self._program_factory(self.pid)
        try:
            first_cycle = next(generator)
        except StopIteration:
            # A program may legitimately do nothing (already-halted PID).
            self.status = ProcessorStatus.HALTED
            self._generator = None
            self._pending = None
            self._bump_epoch()
            return
        self._check_cycle(first_cycle)
        self._generator = generator
        self._pending = first_cycle
        self.status = ProcessorStatus.RUNNING
        self._bump_epoch()

    def fail(self) -> None:
        """Stop the processor; private memory (generator state) is lost."""
        if self.status is not ProcessorStatus.RUNNING:
            raise ProgramError(
                f"pid {self.pid}: cannot fail a {self.status.value} processor"
            )
        if self._generator is not None:
            self._generator.close()
        self._generator = None
        self._pending = None
        self.status = ProcessorStatus.FAILED
        self._bump_epoch()

    def restart(self) -> None:
        """Revive a failed processor at its initial state (PID-only)."""
        if self.status is not ProcessorStatus.FAILED:
            raise ProgramError(
                f"pid {self.pid}: cannot restart a {self.status.value} processor"
            )
        self.restart_count += 1
        self.spawn()

    # ------------------------------------------------------------------ #
    # cycle execution
    # ------------------------------------------------------------------ #

    @property
    def pending_cycle(self) -> Cycle:
        """The update cycle the processor executes on the current tick."""
        if self.status is not ProcessorStatus.RUNNING or self._pending is None:
            raise ProgramError(f"pid {self.pid}: no pending cycle")
        return self._pending

    def complete_cycle(self, read_values: tuple) -> None:
        """Advance past a completed cycle; fetch the next one.

        The read values are delivered into the program (they are the only
        information a cycle brings into private memory).  If the program
        returns, the processor halts.
        """
        if self.status is not ProcessorStatus.RUNNING or self._generator is None:
            raise ProgramError(f"pid {self.pid}: no running program to advance")
        self.cycles_completed += 1
        try:
            next_cycle = self._generator.send(read_values)
        except StopIteration:
            self._generator = None
            self._pending = None
            self.status = ProcessorStatus.HALTED
            self._bump_epoch()
            return
        self._check_cycle(next_cycle)
        self._pending = next_cycle

    def _check_cycle(self, cycle: object) -> None:
        if not isinstance(cycle, Cycle):
            raise ProgramError(
                f"pid {self.pid}: program yielded {cycle!r}, expected a Cycle"
            )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def is_running(self) -> bool:
        return self.status is ProcessorStatus.RUNNING

    @property
    def is_failed(self) -> bool:
        return self.status is ProcessorStatus.FAILED

    @property
    def is_halted(self) -> bool:
        return self.status is ProcessorStatus.HALTED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Processor(pid={self.pid}, status={self.status.value}, "
            f"completed={self.cycles_completed}, restarts={self.restart_count})"
        )
