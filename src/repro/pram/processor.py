"""Processor lifecycle: running, failed, restarted, halted.

A restartable fail-stop processor (Section 2.1):

* runs a synchronous program, one update cycle per clock tick;
* may be failed by the adversary at any point of a cycle — its private
  memory (here: the program generator's local state) is lost;
* may later be restarted *"at their initial state with their PID as their
  only knowledge"* — here: a fresh generator built from the same program
  factory;
* halts voluntarily when its program returns (e.g. algorithm X exits once
  its pointer leaves the progress-tree root).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.pram.cycles import Cycle
from repro.pram.errors import ProgramError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.pram.compiled import CompiledFactory, CompiledProgram

#: A processor program: called with the PID, returns a generator that
#: yields :class:`Cycle` objects and receives read-value tuples.
ProgramFactory = Callable[[int], Generator[Cycle, tuple, None]]


class ProcessorStatus(Enum):
    RUNNING = "running"
    FAILED = "failed"
    HALTED = "halted"


class Processor:
    """State of one fail-stop processor inside the machine."""

    def __init__(
        self,
        pid: int,
        program_factory: ProgramFactory,
        compiled_factory: Optional["CompiledFactory"] = None,
    ) -> None:
        self.pid = pid
        self._program_factory = program_factory
        # Optional compiled kernel (see repro.pram.compiled).  When set,
        # the processor never builds a generator: spawn()/restart()
        # reset the stepper from the PID, adversary-visible ticks
        # materialize the pending Cycle on demand, and quiet windows
        # advance the stepper directly.
        self._compiled_factory = compiled_factory
        self._stepper: Optional["CompiledProgram"] = None
        self.status = ProcessorStatus.FAILED  # becomes RUNNING on spawn()
        self._generator: Optional[Generator[Cycle, tuple, None]] = None
        self._pending: Optional[Cycle] = None
        self.cycles_completed = 0
        self.cycles_attempted = 0
        self.restart_count = 0
        # Shared status-epoch cell (a one-element list), installed by the
        # owning machine.  Every status transition bumps it, which is how
        # the machine knows its cached running-list/statuses snapshots
        # are stale — including transitions driven directly by tests.
        self._epoch_cell: Optional[list] = None

    def bind_epoch_cell(self, cell: list) -> None:
        """Install the owner's status-epoch cell (see Machine)."""
        self._epoch_cell = cell

    def _bump_epoch(self) -> None:
        cell = self._epoch_cell
        if cell is not None:
            cell[0] += 1

    # ------------------------------------------------------------------ #
    # lifecycle transitions
    # ------------------------------------------------------------------ #

    def spawn(self) -> None:
        """Start (or restart) the program from its initial state."""
        factory = self._compiled_factory
        if factory is not None:
            stepper = self._stepper
            if stepper is None:
                stepper = factory(self.pid)
                self._stepper = stepper
            self._generator = None
            self._pending = None
            # reset() rebuilds the state from the PID alone (a restart
            # knows nothing else); False is the compiled analogue of the
            # first next() raising StopIteration.
            if stepper.reset():
                self.status = ProcessorStatus.RUNNING
            else:
                self.status = ProcessorStatus.HALTED
            self._bump_epoch()
            return
        generator = self._program_factory(self.pid)
        try:
            first_cycle = next(generator)
        except StopIteration:
            # A program may legitimately do nothing (already-halted PID).
            self.status = ProcessorStatus.HALTED
            self._generator = None
            self._pending = None
            self._bump_epoch()
            return
        self._check_cycle(first_cycle)
        self._generator = generator
        self._pending = first_cycle
        self.status = ProcessorStatus.RUNNING
        self._bump_epoch()

    def fail(self) -> None:
        """Stop the processor; private memory (generator state) is lost."""
        if self.status is not ProcessorStatus.RUNNING:
            raise ProgramError(
                f"pid {self.pid}: cannot fail a {self.status.value} processor"
            )
        if self._generator is not None:
            self._generator.close()
        self._generator = None
        self._pending = None
        self.status = ProcessorStatus.FAILED
        self._bump_epoch()

    def restart(self) -> None:
        """Revive a failed processor at its initial state (PID-only)."""
        if self.status is not ProcessorStatus.FAILED:
            raise ProgramError(
                f"pid {self.pid}: cannot restart a {self.status.value} processor"
            )
        self.restart_count += 1
        self.spawn()

    # ------------------------------------------------------------------ #
    # cycle execution
    # ------------------------------------------------------------------ #

    @property
    def pending_cycle(self) -> Cycle:
        """The update cycle the processor executes on the current tick."""
        pending = self._pending
        if self.status is ProcessorStatus.RUNNING and pending is not None:
            return pending
        return self.materialize_pending()

    def materialize_pending(self) -> Cycle:
        """Materialize (and cache) the pending cycle of a compiled program.

        Generator programs always carry their pending cycle; compiled
        steppers build it lazily, only for ticks something actually
        observes (an active adversary, a tracer, the reference core).
        Raises the standard :class:`ProgramError` when there is nothing
        pending — explicitly, not via a side-effect attribute access.
        """
        if self.status is ProcessorStatus.RUNNING:
            pending = self._pending
            if pending is not None:
                return pending
            stepper = self._stepper
            if stepper is not None and stepper.live:
                pending = stepper.current_cycle()
                self._check_cycle(pending)
                self._pending = pending
                return pending
        raise ProgramError(f"pid {self.pid}: no pending cycle")

    def complete_cycle(self, read_values: tuple) -> None:
        """Advance past a completed cycle; fetch the next one.

        The read values are delivered into the program (they are the only
        information a cycle brings into private memory).  If the program
        returns, the processor halts.
        """
        if self.status is not ProcessorStatus.RUNNING:
            raise ProgramError(f"pid {self.pid}: no running program to advance")
        generator = self._generator
        if generator is None:
            stepper = self._stepper
            if stepper is None or not stepper.live:
                raise ProgramError(
                    f"pid {self.pid}: no running program to advance"
                )
            self.cycles_completed += 1
            self._pending = None
            if not stepper.advance(read_values):
                self.status = ProcessorStatus.HALTED
                self._bump_epoch()
            return
        self.cycles_completed += 1
        try:
            next_cycle = generator.send(read_values)
        except StopIteration:
            self._generator = None
            self._pending = None
            self.status = ProcessorStatus.HALTED
            self._bump_epoch()
            return
        self._check_cycle(next_cycle)
        self._pending = next_cycle

    def _check_cycle(self, cycle: object) -> None:
        if not isinstance(cycle, Cycle):
            raise ProgramError(
                f"pid {self.pid}: program yielded {cycle!r}, expected a Cycle"
            )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def is_running(self) -> bool:
        return self.status is ProcessorStatus.RUNNING

    @property
    def is_failed(self) -> bool:
        return self.status is ProcessorStatus.FAILED

    @property
    def is_halted(self) -> bool:
        return self.status is ProcessorStatus.HALTED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Processor(pid={self.pid}, status={self.status.value}, "
            f"completed={self.cycles_completed}, restarts={self.restart_count})"
        )
