"""Composable runtime invariant checkers.

Checkers are passive observers (no-op adversaries) that watch every
tick through the omniscient view and collect violations of structural
invariants.  Compose them with real adversaries via
:class:`~repro.faults.compose.UnionAdversary`; assert
``checker.violations == []`` afterwards.  The property-test suite runs
them under hypothesis-generated fault environments.

Provided checkers:

* :class:`MonotoneCellChecker` — watched cells never decrease
  (Write-All arrays, progress counts, step counters, generation flags);
* :class:`WriteQuiesceChecker` — watched cells never change after
  reaching a target value (e.g. x cells are written once and final);
* :class:`BudgetChecker` — every pending cycle respects the update-cycle
  read/write budget (redundant with machine enforcement; useful when
  auditing custom machines with relaxed limits);
* :class:`CompletionFloorChecker` — the progress condition holds: at
  least one cycle completes whenever cycles were pending.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.faults.base import Adversary
from repro.pram.failures import Decision
from repro.pram.view import TickView


class CheckerBase(Adversary):
    """Common plumbing: a violation list and a reset."""

    def __init__(self) -> None:
        self.violations: List[Tuple] = []

    def reset(self) -> None:
        self.violations = []

    @property
    def ok(self) -> bool:
        return not self.violations


class MonotoneCellChecker(CheckerBase):
    """Watched cells must never decrease across ticks."""

    def __init__(self, cells: Iterable[int]) -> None:
        super().__init__()
        self.cells = tuple(cells)
        self._last: Dict[int, int] = {}

    def reset(self) -> None:
        super().reset()
        self._last = {}

    def decide(self, view: TickView) -> Decision:
        for address in self.cells:
            value = view.memory.read(address)
            previous = self._last.get(address)
            if previous is not None and value < previous:
                self.violations.append(
                    ("decreased", view.time, address, previous, value)
                )
            self._last[address] = value
        return Decision.none()


class WriteQuiesceChecker(CheckerBase):
    """Once a watched cell reaches ``target``, it must stay there."""

    def __init__(self, cells: Iterable[int], target: int) -> None:
        super().__init__()
        self.cells = tuple(cells)
        self.target = target
        self._reached: Dict[int, int] = {}

    def reset(self) -> None:
        super().reset()
        self._reached = {}

    def decide(self, view: TickView) -> Decision:
        for address in self.cells:
            value = view.memory.read(address)
            if address in self._reached and value != self.target:
                self.violations.append(
                    ("changed-after-quiesce", view.time, address, value)
                )
            elif value == self.target:
                self._reached[address] = view.time
        return Decision.none()


class BudgetChecker(CheckerBase):
    """Pending cycles must respect the read/write budget."""

    def __init__(self, max_reads: int = 4, max_writes: int = 2) -> None:
        super().__init__()
        self.max_reads = max_reads
        self.max_writes = max_writes

    def decide(self, view: TickView) -> Decision:
        for pid, pending in view.pending.items():
            if len(pending.read_values) > self.max_reads:
                self.violations.append(
                    ("reads", view.time, pid, len(pending.read_values))
                )
            if len(pending.writes) > self.max_writes:
                self.violations.append(
                    ("writes", view.time, pid, len(pending.writes))
                )
        return Decision.none()


class CompletionFloorChecker(CheckerBase):
    """At least one completion per tick with pending work.

    Checked retrospectively: on each tick it verifies the *previous*
    tick's completion count in the ledger.
    """

    def decide(self, view: TickView) -> Decision:
        series = view.ledger.completed_per_tick
        if series and series[-1] == 0:
            self.violations.append(("no-completion", view.time - 1))
        return Decision.none()
