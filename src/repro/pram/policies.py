"""Concurrent-write resolution policies for the CRCW PRAM variants.

The paper's algorithms run on the COMMON CRCW PRAM ("all concurrently
writing processors write the same value", Section 2.1) and Theorem 4.1
states which source models can be simulated on which target models
(EREW/CREW/WEAK/COMMON on COMMON; ARBITRARY and STRONG on machines of the
same type).  We implement every policy so both sides of that statement are
exercisable.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.pram.errors import ReadConflictError, WriteConflictError

#: A pending concurrent write: ``(pid, value)``.
PidValue = Tuple[int, int]


class WritePolicy:
    """Base class: resolves the concurrent writes landing on one cell."""

    #: Human-readable policy name (matches the paper's terminology).
    name = "abstract"
    #: Whether two processors may read the same cell in one tick.
    allows_concurrent_reads = True
    #: Whether two processors may write the same cell in one tick.
    allows_concurrent_writes = True
    #: Whether ``resolve(address, [(pid, value)])`` with a single writer
    #: is guaranteed to return ``value`` without raising and without
    #: mutating policy state.  When True the machine's fast path skips
    #: the resolve call entirely for addresses with exactly one writer
    #: (the overwhelmingly common case); stateful policies whose choice
    #: depends on *how many times* resolve ran must set this False.
    singleton_resolve_is_identity = True

    def resolve(self, address: int, writers: Sequence[PidValue]) -> int:
        """Return the value stored at ``address`` given ``writers``.

        ``writers`` is non-empty and sorted by PID (the machine guarantees
        both).  Policies that forbid concurrency raise
        :class:`WriteConflictError`.
        """
        raise NotImplementedError

    def check_reads(self, address: int, reader_pids: Sequence[int]) -> None:
        """Validate the set of processors reading ``address`` this tick."""
        if not self.allows_concurrent_reads and len(reader_pids) > 1:
            raise ReadConflictError(
                f"{self.name}: {len(reader_pids)} processors "
                f"(pids {list(reader_pids)}) concurrently read cell {address}"
            )


class CommonCrcw(WritePolicy):
    """COMMON CRCW: concurrent writers must agree on the value."""

    name = "COMMON"

    def resolve(self, address: int, writers: Sequence[PidValue]) -> int:
        first_value = writers[0][1]
        for pid, value in writers[1:]:
            if value != first_value:
                raise WriteConflictError(
                    f"COMMON CRCW violation at cell {address}: pid "
                    f"{writers[0][0]} writes {first_value} but pid {pid} "
                    f"writes {value}"
                )
        return first_value


class ArbitraryCrcw(WritePolicy):
    """ARBITRARY CRCW: any single writer's value survives.

    The model allows any choice; for reproducibility the simulator commits
    to the *lowest PID*.  (Algorithms must be correct for every choice;
    tests exercise other choices via :class:`RotatingArbitraryCrcw`.)
    """

    name = "ARBITRARY"

    def resolve(self, address: int, writers: Sequence[PidValue]) -> int:
        return writers[0][1]


class RotatingArbitraryCrcw(WritePolicy):
    """ARBITRARY CRCW resolving to a rotating writer index.

    A deterministic but non-lowest-PID arbitrary rule, used by tests to
    check that algorithms do not silently depend on the lowest-PID choice.
    """

    name = "ARBITRARY(rotating)"
    # resolve() advances the rotation counter even for single-writer
    # addresses, so skipping those calls would change later choices.
    singleton_resolve_is_identity = False

    def __init__(self) -> None:
        self._counter = 0

    def resolve(self, address: int, writers: Sequence[PidValue]) -> int:
        self._counter += 1
        return writers[self._counter % len(writers)][1]


class PriorityCrcw(WritePolicy):
    """PRIORITY CRCW: the lowest-PID writer wins (by definition)."""

    name = "PRIORITY"

    def resolve(self, address: int, writers: Sequence[PidValue]) -> int:
        return writers[0][1]


class StrongCrcw(WritePolicy):
    """STRONG CRCW: the maximum written value survives."""

    name = "STRONG"

    def resolve(self, address: int, writers: Sequence[PidValue]) -> int:
        return max(value for _pid, value in writers)


class CollisionCrcw(WritePolicy):
    """COLLISION CRCW: disagreeing concurrent writes leave a collision mark."""

    name = "COLLISION"

    def __init__(self, collision_value: int = -1) -> None:
        self.collision_value = collision_value

    def resolve(self, address: int, writers: Sequence[PidValue]) -> int:
        values = {value for _pid, value in writers}
        if len(values) > 1:
            return self.collision_value
        return writers[0][1]


class Crew(WritePolicy):
    """CREW: concurrent reads allowed, concurrent writes forbidden."""

    name = "CREW"
    allows_concurrent_writes = False

    def resolve(self, address: int, writers: Sequence[PidValue]) -> int:
        if len(writers) > 1:
            raise WriteConflictError(
                f"CREW violation at cell {address}: pids "
                f"{[pid for pid, _ in writers]} write concurrently"
            )
        return writers[0][1]


class Erew(Crew):
    """EREW: both concurrent reads and concurrent writes forbidden."""

    name = "EREW"
    allows_concurrent_reads = False

    def resolve(self, address: int, writers: Sequence[PidValue]) -> int:
        if len(writers) > 1:
            raise WriteConflictError(
                f"EREW violation at cell {address}: pids "
                f"{[pid for pid, _ in writers]} write concurrently"
            )
        return writers[0][1]


_POLICIES = {
    "COMMON": CommonCrcw,
    "ARBITRARY": ArbitraryCrcw,
    "PRIORITY": PriorityCrcw,
    "STRONG": StrongCrcw,
    "COLLISION": CollisionCrcw,
    "CREW": Crew,
    "EREW": Erew,
}


def policy_by_name(name: str) -> WritePolicy:
    """Instantiate a policy from its paper-style name (case-insensitive)."""
    try:
        return _POLICIES[name.upper()]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown PRAM policy {name!r}; known: {known}") from None


def policy_names() -> List[str]:
    """All registered policy names."""
    return sorted(_POLICIES)
