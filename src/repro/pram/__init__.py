"""The restartable fail-stop CRCW PRAM substrate.

This package implements the abstract machine of Section 2 of the paper:
synchronous processors executing update cycles over reliable shared
memory, subject to on-line failure/restart adversaries, with completed
work and overhead-ratio accounting.
"""

from repro.pram.cycles import (
    SNAPSHOT,
    Cycle,
    Write,
    noop_cycle,
    read_cycle,
    snapshot_cycle,
    write_cycle,
)
from repro.pram.errors import (
    AdversaryError,
    MachineStalledError,
    MemoryError_,
    PramError,
    ProgramError,
    ProgressViolationError,
    ReadConflictError,
    TickLimitError,
    WriteConflictError,
)
from repro.pram.failures import (
    AFTER_ALL_WRITES,
    BEFORE_WRITES,
    Decision,
    FailureEvent,
    FailurePattern,
    FailureTag,
)
from repro.pram.ledger import RunLedger
from repro.pram.machine import Machine
from repro.pram.memory import MemoryReader, SharedMemory
from repro.pram.policies import (
    ArbitraryCrcw,
    CollisionCrcw,
    CommonCrcw,
    Crew,
    Erew,
    PriorityCrcw,
    RotatingArbitraryCrcw,
    StrongCrcw,
    WritePolicy,
    policy_by_name,
    policy_names,
)
from repro.pram.processor import Processor, ProcessorStatus
from repro.pram.view import PendingCycleView, TickView

__all__ = [
    "AFTER_ALL_WRITES",
    "AdversaryError",
    "ArbitraryCrcw",
    "BEFORE_WRITES",
    "CollisionCrcw",
    "CommonCrcw",
    "Crew",
    "Cycle",
    "Decision",
    "Erew",
    "FailureEvent",
    "FailurePattern",
    "FailureTag",
    "Machine",
    "MachineStalledError",
    "MemoryError_",
    "MemoryReader",
    "PendingCycleView",
    "PramError",
    "PriorityCrcw",
    "Processor",
    "ProcessorStatus",
    "ProgramError",
    "ProgressViolationError",
    "ReadConflictError",
    "RotatingArbitraryCrcw",
    "RunLedger",
    "SNAPSHOT",
    "SharedMemory",
    "StrongCrcw",
    "TickLimitError",
    "TickView",
    "Write",
    "WriteConflictError",
    "WritePolicy",
    "noop_cycle",
    "policy_by_name",
    "policy_names",
    "read_cycle",
    "snapshot_cycle",
    "write_cycle",
]
