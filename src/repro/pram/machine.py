"""The restartable fail-stop CRCW PRAM, executed in lock step.

One machine tick implements one synchronous PRAM clock step for every
running processor:

1. restart events from the previous tick take effect (revived processors
   run their first cycle on the *next* tick — they restart "at their
   initial state with their PID as their only knowledge");
2. every running processor's pending update cycle performs its reads
   against the memory state at the start of the tick (synchronous PRAM
   semantics) and its fixed compute step produces a write set;
3. the on-line adversary inspects everything (clock, memory, statuses,
   pending cycles *including* their computed write sets) and rules: for
   each processor, survive, or fail after a prefix of its atomic writes;
4. the machine enforces the model's progress condition — at least one
   pending cycle must complete per tick — by vetoing the adversary on one
   processor if necessary (configurable);
5. the surviving writes are resolved under the machine's CRCW policy and
   applied atomically;
6. processors whose cycles completed are charged one unit of completed
   work and advance to their next cycle; interrupted cycles are charged
   only under the S' measure.

This is a *model-level* simulator: "work" is the paper's completed-work
measure, not wall-clock time, so the results are exact in the paper's own
cost model regardless of host parallelism.

Two tick implementations share these semantics:

* the **reference path** (``fast_path=False``) is the original
  straight-line implementation — it rebuilds every per-tick structure
  from scratch and validates every memory access, and serves as the
  executable specification;
* the **fast path** (``fast_path=True``, the default) commits the same
  reads→compute→writes with near-zero per-tick allocation: the running
  list and status table are cached and invalidated only on status
  transitions (a shared status-epoch cell bumped by the processors),
  cell reads go straight to the backing array after an explicit
  bounds/type check (invalid accesses fall back to the validated reader
  so errors are identical), per-PID work counters are array-backed, the
  CRCW resolve call is skipped when every address has a single writer
  and the policy declares singleton resolution the identity, and — when
  no (active) adversary is attached — the adversary view and pending
  dataclasses are never built at all.  A one-time program-validation
  gate runs each distinct cycle label through the fully validated
  reference collection once before trusting its shape.

On top of the fast path, :meth:`Machine.run` is **event-driven**: before
each tick it asks the adversary for its *event horizon*
(``Adversary.quiet_until`` — the earliest future tick at which it might
act; scheduled/budget/periodic adversaries know theirs exactly).  All
ticks strictly inside the horizon are executed by a batched inner loop
(``fast_forward=True``, the default) that skips the adversary view,
consult, and failure phases entirely and flushes per-PID ledger charges
once per status generation — while still checking the status epoch and
the ``until`` goal every tick, so halting, termination, and the ledger
stay exact.  A composed ``Tracer`` pins the horizon to one tick, keeping
traces tick-exact.

The differential suite (``tests/pram/test_fast_path_differential.py``)
holds the two paths ledger- and trace-identical across the algorithm ×
adversary matrix, including fast-forwarded quiescent windows.
"""

from __future__ import annotations

from collections import defaultdict
from time import perf_counter
from types import MappingProxyType
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.pram.cycles import Cycle, Write
from repro.pram.errors import (
    AdversaryError,
    ProgramError,
    ProgressViolationError,
    TickLimitError,
)
from repro.pram.failures import (
    AFTER_ALL_WRITES,
    Decision,
    FailureTag,
)
from repro.pram.ledger import RunLedger
from repro.pram.memory import MemoryReader, SharedMemory
from repro.pram.policies import CommonCrcw, WritePolicy
from repro.pram.processor import Processor, ProcessorStatus, ProgramFactory
from repro.pram.view import PendingCycleView, TickView

#: Termination predicate: receives a read-only memory view.
UntilPredicate = Callable[[MemoryReader], bool]

#: Event horizon of a passive/absent adversary: "never acts again".
#: (Numerically equal to repro.faults.base.QUIET_FOREVER; the pram layer
#: cannot import the faults layer, which builds on top of it.)
_NO_HORIZON = 1 << 62

#: Outcomes of one fast-forwarded quiescent window (see
#: Machine._run_quiet_window).
_WINDOW_RAN = "ran"
_WINDOW_GOAL = "goal"
_WINDOW_IDLE = "idle"


def _is_passive(adversary: object) -> bool:
    """Whether ``adversary`` is declared passive (never acts).

    ``passive = True`` is only trusted when it is declared by the same
    class that defines the instance's ``decide`` — a subclass that
    overrides ``decide()`` while inheriting the flag (e.g. a spy wrapped
    around NoFailures) must still be consulted every tick.
    """
    if not getattr(adversary, "passive", False):
        return False
    for klass in type(adversary).__mro__:
        if "decide" in vars(klass):
            return bool(vars(klass).get("passive", False))
    return False


def _trusted_quiet_hook(adversary: object):
    """The adversary's ``quiet_until`` hook, or None if it can't be trusted.

    A ``quiet_until`` horizon is a promise about what ``decide`` will do,
    so — exactly like the ``passive`` flag in :func:`_is_passive` — it is
    only trusted when defined by the class that defines the instance's
    effective ``decide`` (or a subclass of it).  A subclass that
    overrides ``decide()`` while inheriting, say, NoFailures' infinite
    horizon has broken the promise and falls back to the always-sound
    per-tick horizon.
    """
    hook = getattr(adversary, "quiet_until", None)
    if hook is None:
        return None
    instance_vars = getattr(adversary, "__dict__", {})
    if "quiet_until" in instance_vars:
        return hook
    if "decide" in instance_vars:
        return None
    for klass in type(adversary).__mro__:
        if "quiet_until" in vars(klass):
            return hook
        if "decide" in vars(klass):
            return None
    return None


class Machine:
    """A P-processor restartable fail-stop PRAM over shared memory."""

    def __init__(
        self,
        num_processors: int,
        memory: SharedMemory,
        policy: Optional[WritePolicy] = None,
        adversary: Optional[object] = None,
        max_reads: int = 4,
        max_writes: int = 2,
        allow_snapshot: bool = False,
        enforce_progress: bool = True,
        strict_progress: bool = False,
        fairness_window: Optional[int] = None,
        context: Optional[Dict[str, object]] = None,
        fast_path: bool = True,
        fast_forward: bool = True,
        phase_counters: Optional[object] = None,
    ) -> None:
        if num_processors <= 0:
            raise ValueError(
                f"machine needs at least one processor, got {num_processors}"
            )
        self.num_processors = num_processors
        self.memory = memory
        self.policy = policy if policy is not None else CommonCrcw()
        self.adversary = adversary
        self.max_reads = max_reads
        self.max_writes = max_writes
        self.allow_snapshot = allow_snapshot
        self.enforce_progress = enforce_progress
        self.strict_progress = strict_progress
        # Optional fairness guarantee: a processor whose attempts were
        # interrupted `fairness_window` consecutive times cannot be
        # interrupted again until it completes a cycle.  This is the
        # "eventual progress" reading of the model's condition 2.(i) —
        # without it, an adversary can satisfy the letter of the
        # condition by letting only repeatable read-only cycles (e.g.
        # algorithm V's waiter polls) complete, while starving every
        # productive cycle forever.  None disables the guarantee.
        if fairness_window is not None and fairness_window < 1:
            raise ValueError(
                f"fairness_window must be >= 1 or None, got {fairness_window}"
            )
        self.fairness_window = fairness_window
        self._consecutive_interrupts: Dict[int, int] = {}
        self.context: Dict[str, object] = dict(context or {})
        self.ledger = RunLedger()
        self.ledger.use_array_counters(num_processors)
        self._processors: List[Processor] = []
        self._reader = MemoryReader(memory)
        #: Selects the optimized tick implementation (see module docs).
        self.fast_path = fast_path
        #: Lets :meth:`run` batch ticks across adversary-promised
        #: quiescent windows (the event-horizon protocol of
        #: ``repro.faults.base.Adversary.quiet_until``).  Only effective
        #: together with ``fast_path``; ``False`` is the escape hatch
        #: that forces one adversary consult per tick.
        self.fast_forward = fast_forward
        #: Optional per-phase wall-clock accumulator (duck-typed, see
        #: repro.perf.phases.PhaseCounters).  Instrumented on the fast
        #: path only so the reference path stays byte-for-byte the
        #: executable specification.
        self.phase_counters = phase_counters
        # -- fast-path state ------------------------------------------- #
        # Shared status-epoch cell: every processor status transition
        # bumps it, invalidating the cached running list/status table.
        self._status_epoch: List[int] = [0]
        self._cache_epoch = -1
        self._running_cache: List[Processor] = []
        self._failed_count = 0
        self._statuses_view: Mapping[int, ProcessorStatus] = MappingProxyType({})
        # Raw cell array (validated accesses fall back to memory.read /
        # memory.write); raw value storage is only safe without a word
        # width to enforce.
        self._cells = memory.raw_cells()
        self._raw_write_ok = memory.word_bits is None
        # One-time program-validation gate: cycle labels whose shape ran
        # through the fully validated reference collection once.
        self._validated_labels: set = set()
        # Memoized passivity and event-horizon hook of the
        # currently-attached adversary (the sentinel object never
        # compares `is` to a real adversary).
        self._passivity_for: object = object()
        self._passivity = False
        self._quiet_hook: Optional[Callable[[int], int]] = None
        # Reusable per-tick scratch (the point is zero steady-state
        # allocation; cleared, never reallocated).
        self._collect_scratch: List[tuple] = []
        self._pairs_scratch: List[tuple] = []
        self._resolved_scratch: List[Tuple[int, int]] = []
        self._single_scratch: Dict[int, Tuple[int, int]] = {}
        # Quiet-window scratch (the fused tick of _run_quiet_window).
        self._window_procs_scratch: List[Processor] = []
        self._window_values_scratch: List[tuple] = []
        self._window_writes_scratch: List[object] = []
        self._window_staged: Dict[int, int] = {}
        # Compiled-kernel lane (see repro.pram.compiled): set by
        # load_program when a kernel factory is installed; the kernel
        # fused tick stages flat (address, value) pairs here.
        self._kernel_mode = False
        self._kernel_raw_scratch: List[int] = []
        self._kernel_ends_scratch: List[int] = []
        # Vectorized lane (see repro.pram.vectorized): set by
        # load_program when a whole-machine vector program is installed;
        # fused quiet windows then run as batched ndarray bursts.
        self._vector: Optional[object] = None
        # Resident vector window: persists across consecutive quiet
        # windows (mirror + packed columns stay warm) and is flushed by
        # _flush_resident before anything outside the vector lane can
        # observe memory or per-PID kernel state.  With
        # vector_dispatch="auto", _dispatch holds the calibrated cost
        # model that picks vec vs scalar per fused window.
        self._resident: Optional[object] = None
        self._vector_auto = False
        self._dispatch: Optional[object] = None

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    def load_program(
        self,
        program_factory: ProgramFactory,
        compiled_program: Optional[object] = None,
        vectorized_program: Optional[object] = None,
        vector_dispatch: str = "always",
    ) -> None:
        """Install the program on all P processors and start them.

        ``compiled_program`` optionally installs a compiled kernel
        factory (see :mod:`repro.pram.compiled`) alongside the program:
        every processor then advances through its per-PID stepper
        instead of a generator, and quiet-window ticks take the fused
        kernel lane.  Callers are expected to route the factory through
        :func:`repro.pram.compiled.resolve_kernel`, which applies the
        MRO trust guard and the ``--no-compiled`` opt-out.

        ``vectorized_program`` optionally installs a whole-machine
        vector program (see :mod:`repro.pram.vectorized`, routed through
        ``resolve_vectorized``): its per-PID scalar kernels then drive
        every observable tick exactly like the compiled lane (it
        supersedes ``compiled_program``), and fused quiet windows run
        as batched array bursts instead of per-processor Python steps.

        ``vector_dispatch`` selects how a vector program is used:
        ``"always"`` (every eligible quiet window runs vectorized —
        the ``--vectorized`` behaviour) or ``"auto"`` (the calibrated
        cost model in :mod:`repro.pram.dispatch` picks vec vs scalar
        per fused window — the ``--lane auto`` behaviour).  Either
        lane choice produces bit-identical results; dispatch only
        decides which one is faster.
        """
        if self._resident is not None:
            self._resident.close()
            self._resident = None
        self._vector = vectorized_program
        self._vector_auto = (
            vectorized_program is not None and vector_dispatch == "auto"
        )
        if vectorized_program is not None:
            compiled_program = vectorized_program.pid_stepper
        self._kernel_mode = compiled_program is not None
        self._processors = [
            Processor(pid, program_factory, compiled_program)
            for pid in range(self.num_processors)
        ]
        for processor in self._processors:
            processor.bind_epoch_cell(self._status_epoch)
            processor.spawn()

    @property
    def processors(self) -> Tuple[Processor, ...]:
        return tuple(self._processors)

    @property
    def time(self) -> int:
        """Ticks executed so far."""
        return self.ledger.ticks

    def statuses(self) -> Dict[int, ProcessorStatus]:
        return {proc.pid: proc.status for proc in self._processors}

    # ------------------------------------------------------------------ #
    # one tick
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Execute one clock tick.

        Returns ``True`` when the machine is still live (some processor is
        running or failed-but-restartable), ``False`` once every processor
        has halted.
        """
        if not self._processors:
            raise ProgramError("no program loaded; call load_program() first")
        if self._resident is not None:
            # Observable tick: the adversary view, traces, and the
            # scalar kernels all read memory / per-PID state directly.
            self._resident.flush()
        if self.fast_path:
            return self._step_fast()
        return self._step_reference()

    # ================================================================== #
    # reference tick (executable specification; fast_path=False)
    # ================================================================== #

    def _step_reference(self) -> bool:
        running = [proc for proc in self._processors if proc.is_running]
        failed = [proc for proc in self._processors if proc.is_failed]
        if not running and not failed:
            return False

        self.ledger.ticks += 1
        tick = self.ledger.ticks

        pending = self._collect_pending(running)
        view = TickView(
            time=tick,
            memory=self._reader,
            statuses=self.statuses(),
            pending=pending,
            ledger=self.ledger,
            context=self.context,
        )
        decision = self._consult_adversary(view)
        failures = self._validated_failures(decision, pending)
        failures = self._apply_fairness(failures)
        stalls = self._validated_stalls(decision, pending)
        failures, stalls = self._apply_progress_policy(
            failures, pending, stalls
        )

        self._apply_writes(pending, failures, stalls)
        completed_this_tick = self._settle_processors(
            pending, failures, tick, stalls
        )
        self.ledger.completed_per_tick.append(completed_this_tick)
        self._apply_restarts(decision, failures, pending, tick)
        self._sync_traffic()
        return True

    # -- tick sub-phases ------------------------------------------------ #

    def _collect_pending(
        self, running: List[Processor]
    ) -> Dict[int, PendingCycleView]:
        pending: Dict[int, PendingCycleView] = {}
        readers_by_address: Dict[int, List[int]] = defaultdict(list)
        for processor in running:
            cycle = processor.pending_cycle
            if cycle.is_snapshot:
                if not self.allow_snapshot:
                    raise ProgramError(
                        f"pid {processor.pid}: snapshot read on a machine "
                        f"without allow_snapshot (label={cycle.label!r})"
                    )
                values: Tuple[int, ...] = tuple(self.memory.snapshot())
                self.memory.reads_served += 1  # unit cost by assumption
            else:
                specs = cycle.read_specs()
                if len(specs) > self.max_reads:
                    raise ProgramError(
                        f"pid {processor.pid}: cycle reads {len(specs)} "
                        f"cells, limit is {self.max_reads} "
                        f"(label={cycle.label!r})"
                    )
                value_list: List[int] = []
                for spec in specs:
                    address = spec(tuple(value_list)) if callable(spec) else spec
                    if address is None:
                        value_list.append(0)
                        continue
                    value_list.append(self.memory.read(address))
                    readers_by_address[address].append(processor.pid)
                values = tuple(value_list)
            writes = cycle.materialize_writes(values)
            if len(writes) > self.max_writes:
                raise ProgramError(
                    f"pid {processor.pid}: cycle writes {len(writes)} cells, "
                    f"limit is {self.max_writes} (label={cycle.label!r})"
                )
            pending[processor.pid] = PendingCycleView(
                pid=processor.pid, cycle=cycle, read_values=values, writes=writes
            )
        for address, reader_pids in readers_by_address.items():
            self.policy.check_reads(address, reader_pids)
        return pending

    def _consult_adversary(self, view: TickView) -> Decision:
        if self.adversary is None:
            return Decision.none()
        decision = self.adversary.decide(view)
        if decision is None:
            return Decision.none()
        if not isinstance(decision, Decision):
            raise AdversaryError(
                f"adversary returned {decision!r}, expected a Decision"
            )
        return decision

    def _validated_failures(
        self, decision: Decision, pending: Mapping[int, PendingCycleView]
    ) -> Dict[int, int]:
        failures: Dict[int, int] = {}
        for pid, writes_applied in decision.failures.items():
            if pid not in pending:
                raise AdversaryError(
                    f"adversary failed pid {pid}, which has no pending cycle"
                )
            write_count = len(pending[pid].writes)
            if writes_applied == AFTER_ALL_WRITES:
                writes_applied = write_count
            if not 0 <= writes_applied <= write_count:
                raise AdversaryError(
                    f"adversary applied {writes_applied} writes for pid {pid}, "
                    f"cycle has {write_count}"
                )
            failures[pid] = writes_applied
        return failures

    def _validated_stalls(
        self, decision: Decision, pending: Mapping[int, PendingCycleView]
    ) -> FrozenSet[int]:
        """Validate the decision's stall set (heterogeneous-speed model).

        A stalled processor's pending cycle is deferred: not executed,
        not charged, not failed.  The processor keeps its private state
        and re-attempts the same cycle (with fresh reads) on the next
        tick it is allowed to run.  Stalls never enter the failure
        pattern.  Only pending PIDs may be stalled, and a PID may not be
        both stalled and failed in one decision.
        """
        stalls = decision.stalls
        if not stalls:
            return frozenset()
        for pid in stalls:
            if pid not in pending:
                raise AdversaryError(
                    f"adversary stalled pid {pid}, which has no pending cycle"
                )
            if pid in decision.failures:
                raise AdversaryError(
                    f"adversary both stalled and failed pid {pid}"
                )
        return frozenset(stalls)

    def _apply_fairness(self, failures: Dict[int, int]) -> Dict[int, int]:
        if self.fairness_window is None:
            return failures
        for pid in list(failures):
            if self._consecutive_interrupts.get(pid, 0) >= self.fairness_window:
                del failures[pid]
                self.ledger.fairness_vetoes += 1
        return failures

    def _cycle_completes(
        self, pid: int, failures: Mapping[int, int], pending: Mapping[int, PendingCycleView]
    ) -> bool:
        """A cycle completes iff the processor was not failed during it.

        A failure with ``writes_applied == len(writes)`` leaves every
        atomic write in memory but the cycle still counts as interrupted
        (charged to S' only): the processor stopped before reaching the
        cycle boundary.
        """
        return pid not in failures

    def _apply_progress_policy(
        self,
        failures: Dict[int, int],
        pending: Mapping[int, PendingCycleView],
        stalls: FrozenSet[int] = frozenset(),
    ) -> Tuple[Dict[int, int], FrozenSet[int]]:
        if not pending:
            return failures, stalls
        if any(
            pid not in failures and pid not in stalls for pid in pending
        ):
            return failures, stalls
        # Every pending cycle would be interrupted or deferred: the
        # model's progress condition (at least one completing update
        # cycle at any time) is violated.
        if self.strict_progress:
            raise ProgressViolationError(
                "adversary interrupted every pending update cycle at tick "
                f"{self.ledger.ticks}"
            )
        if not self.enforce_progress:
            return failures, stalls
        if failures:
            spared_pid = min(failures)
            del failures[spared_pid]
        else:
            # Everyone pending was stalled: un-stall the lowest PID so
            # one cycle completes this tick.
            stalls = stalls - {min(stalls)}
        self.ledger.progress_vetoes += 1
        return failures, stalls

    def _apply_writes(
        self,
        pending: Mapping[int, PendingCycleView],
        failures: Mapping[int, int],
        stalls: FrozenSet[int] = frozenset(),
    ) -> None:
        writers_by_address: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        for pid in sorted(pending):
            if pid in stalls:
                continue  # deferred cycle: its writes never happen
            entry = pending[pid]
            if pid in failures:
                surviving: Tuple[Write, ...] = entry.writes[: failures[pid]]
            else:
                surviving = entry.writes
            for write in surviving:
                writers_by_address[write.address].append((pid, write.value))
        for address in sorted(writers_by_address):
            writers = writers_by_address[address]
            value = self.policy.resolve(address, writers)
            self.memory.write(address, value)

    def _settle_processors(
        self,
        pending: Mapping[int, PendingCycleView],
        failures: Mapping[int, int],
        tick: int,
        stalls: FrozenSet[int] = frozenset(),
    ) -> int:
        completed_this_tick = 0
        for pid in sorted(pending):
            if pid in stalls:
                # Deferred: no charge, no completion, no failure.  The
                # processor's pending cycle stays cached and re-collects
                # (with fresh reads) on its next un-stalled tick.
                continue
            processor = self._processors[pid]
            self.ledger.charge_attempt(pid)
            completes = self._cycle_completes(pid, failures, pending)
            if completes:
                self.ledger.charge_completion(pid)
                completed_this_tick += 1
                self._consecutive_interrupts[pid] = 0
            else:
                self._consecutive_interrupts[pid] = (
                    self._consecutive_interrupts.get(pid, 0) + 1
                )
            if pid in failures:
                self.ledger.pattern.record(FailureTag.FAILURE, pid, tick)
                processor.fail()
            else:
                processor.complete_cycle(pending[pid].read_values)
        return completed_this_tick

    def _apply_restarts(
        self,
        decision: Decision,
        failures: Mapping[int, int],
        pending: Mapping[int, PendingCycleView],
        tick: int,
    ) -> None:
        for pid in sorted(decision.restarts):
            if not 0 <= pid < self.num_processors:
                raise AdversaryError(f"adversary restarted unknown pid {pid}")
            processor = self._processors[pid]
            if not processor.is_failed:
                if processor.is_running and pid in decision.failures:
                    # The progress veto cancelled this pid's failure, so
                    # its paired restart is vacuous — skip it.
                    continue
                raise AdversaryError(
                    f"adversary restarted pid {pid}, which is "
                    f"{processor.status.value}"
                )
            self.ledger.pattern.record(FailureTag.RESTART, pid, tick)
            processor.restart()
        # Progress policy for an all-failed machine: something must be
        # executing an update cycle.  If the adversary left every processor
        # failed, forcibly restart the lowest PID.
        if self.enforce_progress and not pending and not decision.restarts:
            self._force_restart_lowest_failed(tick)

    def _force_restart_lowest_failed(self, tick: int) -> None:
        failed = [proc for proc in self._processors if proc.is_failed]
        if failed:
            revived = min(failed, key=lambda proc: proc.pid)
            self.ledger.pattern.record(FailureTag.RESTART, revived.pid, tick)
            revived.restart()
            self.ledger.progress_vetoes += 1

    def _sync_traffic(self) -> None:
        self.ledger.memory_reads = self.memory.reads_served
        self.ledger.memory_writes = self.memory.writes_applied

    # ================================================================== #
    # fast tick (allocation-lean; semantics identical to the reference)
    # ================================================================== #

    def _refresh_status_caches(self) -> None:
        epoch = self._status_epoch[0]
        if epoch == self._cache_epoch:
            return
        running: List[Processor] = []
        statuses: Dict[int, ProcessorStatus] = {}
        failed = 0
        for proc in self._processors:
            status = proc.status
            statuses[proc.pid] = status
            if status is ProcessorStatus.RUNNING:
                running.append(proc)
            elif status is ProcessorStatus.FAILED:
                failed += 1
        self._running_cache = running
        self._failed_count = failed
        self._statuses_view = MappingProxyType(statuses)
        self._cache_epoch = epoch

    def _refresh_adversary_memo(self) -> None:
        adversary = self.adversary
        if adversary is not self._passivity_for:
            # self.adversary is public and may be swapped between runs.
            self._passivity_for = adversary
            self._passivity = adversary is None or _is_passive(adversary)
            self._quiet_hook = (
                None if adversary is None else _trusted_quiet_hook(adversary)
            )

    def _event_horizon(self) -> int:
        """First future tick at which the adversary might act.

        A passive (or absent) adversary never acts; an adversary without
        the ``quiet_until`` hook is consulted every tick.  Malformed or
        stale horizons are clamped to the always-sound next tick.
        """
        self._refresh_adversary_memo()
        tick = self.ledger.ticks
        if self._passivity:
            return _NO_HORIZON
        hook = self._quiet_hook
        if hook is None:
            return tick + 1
        horizon = hook(tick)
        if not isinstance(horizon, int):
            raise AdversaryError(
                f"adversary quiet_until({tick}) returned {horizon!r}, "
                "expected an int tick number"
            )
        return horizon if horizon > tick else tick + 1

    def _step_fast(self) -> bool:
        self._refresh_status_caches()
        running = self._running_cache
        if not running and not self._failed_count:
            return False
        self.ledger.ticks += 1
        tick = self.ledger.ticks
        self._refresh_adversary_memo()
        if self._passivity:
            self._tick_fast_passive(tick, running)
        else:
            self._tick_fast_adversary(tick, running)
        self._sync_traffic()
        return True

    def _collect_fast(self, running: List[Processor]) -> List[tuple]:
        """Collect every running processor's (cycle, reads, writes).

        Returns reusable ``(processor, cycle, values, writes)`` tuples;
        reads go straight to the cell array after a type/bounds check,
        with invalid accesses routed through the validated reader so
        error behavior matches the reference path exactly.
        """
        memory = self.memory
        cells = self._cells
        size = len(cells)
        max_reads = self.max_reads
        max_writes = self.max_writes
        validated = self._validated_labels
        policy = self.policy
        readers_by_address: Optional[Dict[int, List[int]]] = (
            None if policy.allows_concurrent_reads else defaultdict(list)
        )
        collected = self._collect_scratch
        collected.clear()
        reads_charged = 0
        for processor in running:
            cycle = processor._pending
            if cycle is None:
                # Compiled kernels materialize their pending cycle only
                # for observed ticks; a generator processor with nothing
                # pending raises the standard ProgramError here.
                cycle = processor.materialize_pending()
            label = cycle.label
            if label not in validated:
                collected.append(
                    self._collect_one_validated(processor, cycle, readers_by_address)
                )
                validated.add(label)
                continue
            reads = cycle.reads
            if type(reads) is tuple:
                if len(reads) > max_reads:
                    raise ProgramError(
                        f"pid {processor.pid}: cycle reads {len(reads)} "
                        f"cells, limit is {self.max_reads} "
                        f"(label={cycle.label!r})"
                    )
                value_list: List[int] = []
                for spec in reads:
                    if spec.__class__ is int:
                        address = spec
                    elif spec is None:
                        value_list.append(0)
                        continue
                    else:
                        # The validation gate pinned this label's shape:
                        # non-int, non-None specs are callables.
                        address = spec(tuple(value_list))
                        if address is None:
                            value_list.append(0)
                            continue
                    if address.__class__ is int and 0 <= address < size:
                        value_list.append(cells[address])
                        reads_charged += 1
                    else:
                        # Exotic-but-valid addresses succeed (and charge
                        # themselves); invalid ones raise MemoryError_.
                        value_list.append(memory.read(address))
                    if readers_by_address is not None:
                        readers_by_address[address].append(processor.pid)
                values: Tuple[int, ...] = tuple(value_list)
            elif cycle.is_snapshot:
                if not self.allow_snapshot:
                    raise ProgramError(
                        f"pid {processor.pid}: snapshot read on a machine "
                        f"without allow_snapshot (label={cycle.label!r})"
                    )
                values = tuple(memory.snapshot())
                reads_charged += 1  # unit cost by assumption
            else:
                cycle.read_specs()  # raises the standard ProgramError
                raise AssertionError("unreachable")  # pragma: no cover
            writes_spec = cycle.writes
            writes = writes_spec(values) if callable(writes_spec) else writes_spec
            if len(writes) > max_writes:
                raise ProgramError(
                    f"pid {processor.pid}: cycle writes {len(writes)} cells, "
                    f"limit is {self.max_writes} (label={cycle.label!r})"
                )
            collected.append((processor, cycle, values, writes))
        if readers_by_address is not None:
            for address, reader_pids in readers_by_address.items():
                policy.check_reads(address, reader_pids)
        memory.charge_reads(reads_charged)
        return collected

    def _collect_one_validated(
        self,
        processor: Processor,
        cycle: Cycle,
        readers_by_address: Optional[Dict[int, List[int]]],
    ) -> tuple:
        """Reference-semantics collection of one cycle.

        The one-time program-validation gate: the first occurrence of
        each cycle label takes this fully validated route (type checks
        on every read spec and produced write); later occurrences are
        trusted to keep the same shape and take the raw route.
        """
        if cycle.is_snapshot:
            if not self.allow_snapshot:
                raise ProgramError(
                    f"pid {processor.pid}: snapshot read on a machine "
                    f"without allow_snapshot (label={cycle.label!r})"
                )
            values: Tuple[int, ...] = tuple(self.memory.snapshot())
            self.memory.reads_served += 1  # unit cost by assumption
        else:
            specs = cycle.read_specs()
            if len(specs) > self.max_reads:
                raise ProgramError(
                    f"pid {processor.pid}: cycle reads {len(specs)} "
                    f"cells, limit is {self.max_reads} "
                    f"(label={cycle.label!r})"
                )
            value_list: List[int] = []
            for spec in specs:
                address = spec(tuple(value_list)) if callable(spec) else spec
                if address is None:
                    value_list.append(0)
                    continue
                value_list.append(self.memory.read(address))
                if readers_by_address is not None:
                    readers_by_address[address].append(processor.pid)
            values = tuple(value_list)
        writes = cycle.materialize_writes(values)
        if len(writes) > self.max_writes:
            raise ProgramError(
                f"pid {processor.pid}: cycle writes {len(writes)} cells, "
                f"limit is {self.max_writes} (label={cycle.label!r})"
            )
        return (processor, cycle, values, writes)

    def _resolve_and_apply_fast(self, pairs: List[tuple]) -> None:
        """Resolve per-address writers and apply the results.

        ``pairs`` holds ``(pid, surviving_writes)`` in ascending PID
        order.  Equivalent to the reference ``_apply_writes``, but when
        every address has exactly one writer (the overwhelmingly common
        case) the grouping dict, the sort, and the policy resolve call
        are all skipped and the writes land through one batched commit.
        """
        single = self._single_scratch
        single.clear()
        groups: Optional[Dict[int, List[Tuple[int, int]]]] = None
        for pid, writes in pairs:
            for write in writes:
                address = write.address
                if groups is not None:
                    group = groups.get(address)
                    if group is not None:
                        group.append((pid, write.value))
                        continue
                prev = single.get(address)
                if prev is None:
                    single[address] = (pid, write.value)
                else:
                    if groups is None:
                        groups = {}
                    groups[address] = [prev, (pid, write.value)]
                    del single[address]
        self._commit_grouped(single, groups)

    def _resolve_and_apply_raw(
        self,
        procs: List[Processor],
        ends: List[int],
        raw: List[int],
    ) -> None:
        """Resolve and apply kernel-staged flat ``address, value`` pairs.

        The compiled-kernel analogue of :meth:`_resolve_and_apply_fast`:
        ``raw`` holds each processor's writes as flat pairs in cycle
        write order, ``ends[i]`` is processor ``i``'s end offset into
        ``raw``, and ``procs`` is in ascending-PID (running-list) order,
        so grouping order matches the reference ``_apply_writes``.
        """
        single = self._single_scratch
        single.clear()
        groups: Optional[Dict[int, List[Tuple[int, int]]]] = None
        start = 0
        for index, processor in enumerate(procs):
            pid = processor.pid
            end = ends[index]
            i = start
            while i < end:
                address = raw[i]
                value = raw[i + 1]
                i += 2
                if groups is not None:
                    group = groups.get(address)
                    if group is not None:
                        group.append((pid, value))
                        continue
                prev = single.get(address)
                if prev is None:
                    single[address] = (pid, value)
                else:
                    if groups is None:
                        groups = {}
                    groups[address] = [prev, (pid, value)]
                    del single[address]
            start = end
        self._commit_grouped(single, groups)

    def _commit_grouped(
        self,
        single: Dict[int, Tuple[int, int]],
        groups: Optional[Dict[int, List[Tuple[int, int]]]],
    ) -> None:
        """Commit grouped writers: batched singleton commit or reference path."""
        policy = self.policy
        memory = self.memory
        if (
            groups is None
            and policy.singleton_resolve_is_identity
            and self._raw_write_ok
        ):
            size = len(self._cells)
            resolved = self._resolved_scratch
            resolved.clear()
            clean = True
            try:
                for address, pid_value in single.items():
                    if type(address) is int and 0 <= address < size:
                        resolved.append((address, pid_value[1]))
                    else:
                        clean = False
                        break
            except TypeError:  # pragma: no cover - defensive
                clean = False
            if clean:
                memory.commit_resolved(resolved)
                return
        # General path: a multi-writer address, a stateful policy, a
        # word-width-enforcing memory, or an invalid address.  Reproduce
        # the reference semantics exactly (same resolve calls, same
        # ascending-address application order, same errors and partial
        # state on error).
        writers_by_address: Dict[int, List[Tuple[int, int]]] = {
            address: [pid_value] for address, pid_value in single.items()
        }
        if groups:
            writers_by_address.update(groups)
        resolve = policy.resolve
        write = memory.write
        for address in sorted(writers_by_address):
            write(address, resolve(address, writers_by_address[address]))

    def _tick_fast_passive(self, tick: int, running: List[Processor]) -> None:
        """One tick with no (active) adversary: nothing can fail.

        Skips the adversary view, the pending dataclasses, and every
        failure-handling phase; every collected cycle completes.
        """
        phases = self.phase_counters
        mark = perf_counter() if phases is not None else 0.0
        collected = self._collect_fast(running)
        if phases is not None:
            now = perf_counter()
            phases.collect_s += now - mark
            mark = now
        ledger = self.ledger
        if not collected:
            # Every processor is failed or halted: an empty tick, then
            # the all-failed progress policy (reference order).
            ledger.completed_per_tick.append(0)
            if self.enforce_progress:
                self._force_restart_lowest_failed(tick)
            if phases is not None:
                phases.settle_s += perf_counter() - mark
                phases.ticks += 1
            return
        pairs = self._pairs_scratch
        pairs.clear()
        for entry in collected:
            pairs.append((entry[0].pid, entry[3]))
        self._resolve_and_apply_fast(pairs)
        if phases is not None:
            now = perf_counter()
            phases.resolve_s += now - mark
            mark = now
        attempts = ledger.attempted_by_pid.backing_list()
        completions = ledger.completed_by_pid.backing_list()
        for entry in collected:
            processor = entry[0]
            pid = processor.pid
            attempts[pid] += 1
            completions[pid] += 1
            processor.complete_cycle(entry[2])
        ledger.completed_per_tick.append(len(collected))
        if phases is not None:
            phases.settle_s += perf_counter() - mark
            phases.ticks += 1

    def _tick_fast_adversary(self, tick: int, running: List[Processor]) -> None:
        """One tick with an active adversary.

        Builds the full adversary view (from cached statuses and the
        fast collection) and then runs the reference failure-handling
        phases, so adversary-visible state and the realized pattern are
        identical to the reference path.
        """
        phases = self.phase_counters
        mark = perf_counter() if phases is not None else 0.0
        collected = self._collect_fast(running)
        pending: Dict[int, PendingCycleView] = {}
        for processor, cycle, values, writes in collected:
            pid = processor.pid
            pending[pid] = PendingCycleView(
                pid,
                cycle,
                values,
                writes if type(writes) is tuple else tuple(writes),
            )
        if phases is not None:
            now = perf_counter()
            phases.collect_s += now - mark
            mark = now
        view = TickView(
            time=tick,
            memory=self._reader,
            statuses=self._statuses_view,
            pending=pending,
            ledger=self.ledger,
            context=self.context,
        )
        decision = self._consult_adversary(view)
        failures = self._validated_failures(decision, pending)
        failures = self._apply_fairness(failures)
        stalls = self._validated_stalls(decision, pending)
        failures, stalls = self._apply_progress_policy(
            failures, pending, stalls
        )
        if phases is not None:
            now = perf_counter()
            phases.adversary_s += now - mark
            mark = now
        pairs = self._pairs_scratch
        pairs.clear()
        for pid, entry in pending.items():
            if pid in stalls:
                continue
            if pid in failures:
                surviving = entry.writes[: failures[pid]]
                if surviving:
                    pairs.append((pid, surviving))
            else:
                pairs.append((pid, entry.writes))
        self._resolve_and_apply_fast(pairs)
        if phases is not None:
            now = perf_counter()
            phases.resolve_s += now - mark
            mark = now
        completed_this_tick = self._settle_processors(
            pending, failures, tick, stalls
        )
        self.ledger.completed_per_tick.append(completed_this_tick)
        self._apply_restarts(decision, failures, pending, tick)
        if phases is not None:
            phases.settle_s += perf_counter() - mark
            phases.ticks += 1

    # ================================================================== #
    # event-horizon fast-forward (run()-level tick batching)
    # ================================================================== #

    def _flush_quiet_batch(
        self, running: List[Processor], batch_ticks: int
    ) -> None:
        """Charge a batch of fully-quiet ticks to the ledger at once."""
        if batch_ticks:
            self.ledger.charge_quiet_window(
                [processor.pid for processor in running], batch_ticks
            )

    def _quiet_tick_fused(self, running: List[Processor]) -> None:
        """One adversary-free tick in a single fused sweep.

        The quiet-window specialization of ``_collect_fast`` +
        ``_resolve_and_apply_fast`` + the settle loop: one read/stage
        pass over the running processors, one batched memory commit, one
        generator-advance pass.  No per-processor tuples or pending
        views are built and no per-tick ledger charges land (the window
        flushes those in one batch).  Preconditions, checked by the
        window: concurrent reads allowed, singleton resolve is the
        identity, raw writes allowed.  Phase counters do not disable
        fusion — fused ticks land in ``phases.fused_ticks``, charged
        per batch by the window.  Same-tick write collisions and exotic
        addresses fall back to the reference-exact resolution for the
        whole tick.
        """
        memory = self.memory
        cells = self._cells
        size = len(cells)
        max_reads = self.max_reads
        max_writes = self.max_writes
        validated = self._validated_labels
        procs = self._window_procs_scratch
        values_list = self._window_values_scratch
        writes_list = self._window_writes_scratch
        staged = self._window_staged
        procs.clear()
        values_list.clear()
        writes_list.clear()
        staged.clear()
        clean = True
        reads_charged = 0
        for processor in running:
            cycle = processor._pending
            if cycle is None:
                raise ProgramError(f"pid {processor.pid}: no pending cycle")
            label = cycle.label
            if label not in validated:
                entry = self._collect_one_validated(processor, cycle, None)
                validated.add(label)
                values = entry[2]
                writes = entry[3]
            else:
                reads = cycle.reads
                if type(reads) is tuple:
                    if len(reads) > max_reads:
                        raise ProgramError(
                            f"pid {processor.pid}: cycle reads {len(reads)} "
                            f"cells, limit is {self.max_reads} "
                            f"(label={cycle.label!r})"
                        )
                    value_list: List[int] = []
                    for spec in reads:
                        if spec.__class__ is int:
                            address = spec
                        elif spec is None:
                            value_list.append(0)
                            continue
                        else:
                            address = spec(tuple(value_list))
                            if address is None:
                                value_list.append(0)
                                continue
                        if address.__class__ is int and 0 <= address < size:
                            value_list.append(cells[address])
                            reads_charged += 1
                        else:
                            value_list.append(memory.read(address))
                    values = tuple(value_list)
                elif cycle.is_snapshot:
                    if not self.allow_snapshot:
                        raise ProgramError(
                            f"pid {processor.pid}: snapshot read on a machine "
                            f"without allow_snapshot (label={cycle.label!r})"
                        )
                    values = tuple(memory.snapshot())
                    reads_charged += 1  # unit cost by assumption
                else:
                    cycle.read_specs()  # raises the standard ProgramError
                    raise AssertionError("unreachable")  # pragma: no cover
                writes_spec = cycle.writes
                writes = (
                    writes_spec(values) if callable(writes_spec) else writes_spec
                )
                if len(writes) > max_writes:
                    raise ProgramError(
                        f"pid {processor.pid}: cycle writes {len(writes)} "
                        f"cells, limit is {self.max_writes} "
                        f"(label={cycle.label!r})"
                    )
            procs.append(processor)
            values_list.append(values)
            writes_list.append(writes)
            if clean:
                for write in writes:
                    address = write.address
                    if (
                        address.__class__ is int
                        and 0 <= address < size
                        and address not in staged
                    ):
                        staged[address] = write.value
                    else:
                        clean = False
                        break
        memory.charge_reads(reads_charged)
        if clean:
            memory.commit_resolved(staged.items())
        else:
            # Collision or exotic address somewhere this tick: redo the
            # whole tick's writes through the reference-exact resolver
            # (same policy calls, same order, same errors).
            pairs = self._pairs_scratch
            pairs.clear()
            for processor, writes in zip(procs, writes_list):
                pairs.append((processor.pid, writes))
            self._resolve_and_apply_fast(pairs)
        for processor, values in zip(procs, values_list):
            # Inlined Processor.complete_cycle (every guard holds here:
            # the whole window runs, completes, and stays running unless
            # the program itself returns).
            processor.cycles_completed += 1
            try:
                next_cycle = processor._generator.send(values)
            except StopIteration:
                processor._generator = None
                processor._pending = None
                processor.status = ProcessorStatus.HALTED
                processor._bump_epoch()
                continue
            if next_cycle.__class__ is not Cycle:
                processor._check_cycle(next_cycle)
            processor._pending = next_cycle

    def _quiet_tick_kernel(self, running: List[Processor]) -> None:
        """One adversary-free tick through the compiled-kernel lane.

        The compiled analogue of :meth:`_quiet_tick_fused`: one sweep
        over the running list calls each stepper's ``quiet_step``, which
        reads the raw cells, stages flat ``address, value`` pairs, and
        advances its own state — no generator resume, no ``Cycle`` or
        ``Write`` allocation, no pending views.  Kernels are trusted to
        respect the cycle read/write budgets (the soundness contract in
        :mod:`repro.pram.compiled`); addresses are still bounds-checked
        during staging, and same-tick write collisions or exotic
        addresses fall back to the reference-exact resolution for the
        whole tick.
        """
        memory = self.memory
        cells = self._cells
        size = len(cells)
        procs = self._window_procs_scratch
        raw = self._kernel_raw_scratch
        ends = self._kernel_ends_scratch
        staged = self._window_staged
        procs.clear()
        raw.clear()
        ends.clear()
        staged.clear()
        reads_charged = 0
        for processor in running:
            stepper = processor._stepper
            reads_charged += stepper.quiet_step(cells, raw)
            processor.cycles_completed += 1
            procs.append(processor)
            ends.append(len(raw))
            if not stepper.live:
                # Voluntary halt: the compiled analogue of the generator
                # raising StopIteration in complete_cycle.
                processor.status = ProcessorStatus.HALTED
                processor._bump_epoch()
        memory.charge_reads(reads_charged)
        clean = True
        for i in range(0, len(raw), 2):
            address = raw[i]
            if (
                address.__class__ is int
                and 0 <= address < size
                and address not in staged
            ):
                staged[address] = raw[i + 1]
            else:
                clean = False
                break
        if clean:
            memory.commit_resolved(staged.items())
        else:
            self._resolve_and_apply_raw(procs, ends, raw)

    def _run_quiet_window(
        self, stop_tick: int, until: Optional[UntilPredicate]
    ) -> str:
        """Run ticks up to ``stop_tick`` without consulting the adversary.

        Only called inside a window the adversary promised quiet (or
        with a passive adversary), so every collected cycle completes:
        the per-tick adversary view, failure phases, and status checks
        collapse, and per-PID ledger charges batch into one flush per
        status generation.  The status epoch is still checked every tick
        (halting is a processor-driven transition), and the ``until``
        goal is still evaluated exactly once per tick, so termination
        and the ledger stay bit-identical to the reference path.

        Returns :data:`_WINDOW_GOAL` when ``until`` fired,
        :data:`_WINDOW_IDLE` when there is nothing to run (no running
        processors — zero ticks consumed, the caller's ``step()``
        handles empty ticks and halting), and :data:`_WINDOW_RAN`
        otherwise (``stop_tick`` reached, or the running set drained
        mid-window).
        """
        if self._vector is not None:
            vec_policy = self.policy
            if (
                self._raw_write_ok
                and vec_policy.allows_concurrent_reads
                and vec_policy.singleton_resolve_is_identity
            ):
                # The vectorized lane batches the whole window, so it
                # needs the goal in machine-readable form (the
                # ``zero_goal`` marker of ``done_predicate``) to find
                # the exact tick the predicate flips.  Unmarked
                # predicates fall through to the per-tick loop below.
                goal = None if until is None else getattr(until, "zero_goal", None)
                if until is None or goal is not None:
                    if not self._vector_auto or self._prefer_vectorized(
                        stop_tick
                    ):
                        return self._run_quiet_window_vectorized(
                            stop_tick, until, goal
                        )
        if self._resident is not None:
            # Scalar window chosen (dispatch, unmarked predicate, or
            # ineligible policy): the fused scalar loop reads and
            # writes memory directly, so the mirror must stand down.
            self._resident.flush()
        self._refresh_status_caches()
        running = self._running_cache
        if not running:
            return _WINDOW_IDLE
        ledger = self.ledger
        reader = self._reader
        epoch_cell = self._status_epoch
        pairs = self._pairs_scratch
        interrupts = self._consecutive_interrupts
        if interrupts:
            # Every running processor completes a cycle each quiet tick,
            # which in the reference path zeroes its consecutive-
            # interrupt count; failed processors keep theirs.
            for processor in running:
                interrupts.pop(processor.pid, None)
        phases = self.phase_counters
        policy = self.policy
        # Phase counters do not disable fusion: fused ticks are counted
        # in phases.fused_ticks (flushed per batch below) instead of
        # being timed per-phase — the fused sweep has no phase
        # boundaries to time without destroying what it measures.
        fused = (
            self._raw_write_ok
            and policy.allows_concurrent_reads
            and policy.singleton_resolve_is_identity
        )
        quiet_tick = (
            self._quiet_tick_kernel if self._kernel_mode else self._quiet_tick_fused
        )
        batch_ticks = 0
        outcome = _WINDOW_RAN
        while True:
            if fused:
                ledger.ticks += 1
                quiet_tick(running)
                batch_ticks += 1
            else:
                mark = perf_counter() if phases is not None else 0.0
                ledger.ticks += 1
                collected = self._collect_fast(running)
                if phases is not None:
                    now = perf_counter()
                    phases.collect_s += now - mark
                    mark = now
                pairs.clear()
                for entry in collected:
                    pairs.append((entry[0].pid, entry[3]))
                self._resolve_and_apply_fast(pairs)
                if phases is not None:
                    now = perf_counter()
                    phases.resolve_s += now - mark
                    mark = now
                for entry in collected:
                    entry[0].complete_cycle(entry[2])
                batch_ticks += 1
                if phases is not None:
                    phases.settle_s += perf_counter() - mark
                    phases.ticks += 1
            if epoch_cell[0] != self._cache_epoch:
                # A processor halted this tick: flush the batch against
                # the status generation that actually ran it (halting
                # pids completed this tick too), then recompute.
                self._flush_quiet_batch(running, batch_ticks)
                if fused and phases is not None:
                    phases.fused_ticks += batch_ticks
                batch_ticks = 0
                self._refresh_status_caches()
                running = self._running_cache
            if until is not None and until(reader):
                outcome = _WINDOW_GOAL
                break
            if not running:
                break
            if ledger.ticks >= stop_tick:
                break
        self._flush_quiet_batch(running, batch_ticks)
        if fused and phases is not None:
            phases.fused_ticks += batch_ticks
        self._sync_traffic()
        return outcome

    def _run_quiet_window_vectorized(
        self,
        stop_tick: int,
        until: Optional[UntilPredicate],
        goal: Optional[Tuple[int, int]],
    ) -> str:
        """Run a fused quiet window as batched vector-lane bursts.

        The vectorized analogue of the fused loop in
        :meth:`_run_quiet_window`: the vector program advances every
        running lane as array operations, in bursts that stop exactly on
        the first tick a lane halts or the ``goal`` region empties, so
        ticks, per-PID charges, statuses, and the goal tick are
        bit-identical to the per-processor loop.

        The window is *resident*: it outlives this call, so the next
        quiet window reuses the memory mirror and any still-packed
        lanes at zero boundary cost.  Traffic is charged at every
        window boundary (so the ledger is exact whenever control
        leaves), but cells and kernel state are written back lazily —
        by the ``flush()`` the machine issues before any outside
        observation, or here on error so policy failures leave
        reference-equal state.
        """
        self._refresh_status_caches()
        running = self._running_cache
        if not running:
            return _WINDOW_IDLE
        ledger = self.ledger
        interrupts = self._consecutive_interrupts
        if interrupts:
            # Same rule as the per-tick window: every running processor
            # completes a cycle each quiet tick, zeroing its
            # consecutive-interrupt count; failed processors keep theirs.
            for processor in running:
                interrupts.pop(processor.pid, None)
        phases = self.phase_counters
        vector = self._vector
        window = self._resident
        if window is None:
            window = vector.begin_window(self.memory, self.policy, goal)
            self._resident = window
        else:
            window.resume(goal)
        outcome = _WINDOW_RAN
        try:
            while True:
                budget = stop_tick - ledger.ticks
                if budget <= 0:
                    break
                if until is not None and window.goal_reached:
                    # Goal already true at the burst boundary: the
                    # per-tick loop would still run exactly one more
                    # tick before observing it.
                    budget = 1
                pids = [processor.pid for processor in running]
                burst = vector.run_quiet(window, pids, budget)
                ticks = burst.ticks
                ledger.ticks += ticks
                self._flush_quiet_batch(running, ticks)
                if phases is not None:
                    phases.fused_ticks += ticks
                for processor in running:
                    processor.cycles_completed += ticks
                if burst.halted:
                    by_pid = {processor.pid: processor for processor in running}
                    for pid in burst.halted:
                        halting = by_pid[pid]
                        halting.status = ProcessorStatus.HALTED
                        halting._bump_epoch()
                    self._refresh_status_caches()
                    running = self._running_cache
                if until is not None and window.goal_reached:
                    outcome = _WINDOW_GOAL
                    break
                if not running:
                    break
        except BaseException:
            # A policy error mid-burst: charge what ran and write back
            # so the caller sees the same partially-applied state the
            # reference path would leave (matching PR 7's finish()-in-
            # finally; _sync_traffic is skipped on error there too).
            window.charge_traffic()
            window.flush()
            raise
        window.charge_traffic()
        self._sync_traffic()
        return outcome

    def _prefer_vectorized(self, stop_tick: int) -> bool:
        """Adaptive dispatch: is the vector lane worth it for this window?

        Consults the calibrated cost model (:mod:`repro.pram.dispatch`)
        with the window's tick budget, the running-lane count, the
        vector program's kind, and whether the resident window's packed
        state is still warm.  Either answer is bit-identical; this only
        picks the faster lane.
        """
        model = self._dispatch
        if model is None:
            from repro.pram.dispatch import get_model

            model = self._dispatch = get_model()
        self._refresh_status_caches()
        window = self._resident
        return model.prefer_vector(
            kind=getattr(self._vector, "kind", "generic"),
            ticks=max(1, stop_tick - self.ledger.ticks),
            p=len(self._running_cache),
            cells=len(self._cells),
            mirror=window is not None,
            packed=window is not None and not window.suspended,
        )

    # ------------------------------------------------------------------ #
    # whole runs
    # ------------------------------------------------------------------ #

    def run(
        self,
        until: Optional[UntilPredicate] = None,
        max_ticks: int = 1_000_000,
        raise_on_limit: bool = True,
        stall_limit: int = 1024,
    ) -> RunLedger:
        """Tick until ``until`` holds, all processors halt, or limits hit.

        ``until`` is evaluated exactly once before the first tick and
        once after every tick (Write-All's predicate is O(1) thanks to
        the memory layer's zero-region tracker, but arbitrary predicates
        may be expensive — they are never called twice per tick, not
        even at the ``max_ticks`` boundary).

        ``stall_limit`` bounds consecutive ticks in which no update cycle
        was even attempted (all processors failed, adversary silent) —
        only reachable with ``enforce_progress=False``.

        With ``fast_path`` and ``fast_forward`` both set (the default),
        ticks inside an adversary-promised quiescent window (see
        ``Adversary.quiet_until``) run through a batched inner loop that
        skips the per-tick adversary machinery entirely; everything
        observable — the ledger, the realized pattern, traces, memory —
        is identical to per-tick execution, which is a differential-test
        surface (``tests/pram/test_fast_path_differential.py``).
        """
        ledger = self.ledger
        reader = self._reader
        if self._resident is not None:
            # A resident window from an earlier run() on this machine:
            # the entry `until` check (and anything else this run
            # observes before the first vectorized window) must see
            # authoritative memory.
            self._resident.flush()
        if until is not None and until(reader):
            ledger.goal_reached = True
            self._sync_traffic()
            return ledger
        fast_forward = (
            self.fast_path and self.fast_forward and bool(self._processors)
        )
        stalled_ticks = 0
        while True:
            if fast_forward:
                stop_tick = min(self._event_horizon() - 1, max_ticks)
                if stop_tick > ledger.ticks:
                    outcome = self._run_quiet_window(stop_tick, until)
                    if outcome == _WINDOW_GOAL:
                        ledger.goal_reached = True
                        break
                    if outcome == _WINDOW_RAN:
                        # Every window tick completed cycles, so the
                        # stall counter resets; `until` was already
                        # checked once after each tick.
                        stalled_ticks = 0
                        if ledger.ticks >= max_ticks:
                            ledger.tick_limited = True
                            if raise_on_limit:
                                if self._resident is not None:
                                    self._resident.flush()
                                raise TickLimitError(
                                    f"run exceeded max_ticks={max_ticks} "
                                    f"(S={ledger.completed_work})"
                                )
                            break
                        continue
                    # _WINDOW_IDLE: nothing is running — fall through to
                    # step(), which owns empty ticks, forced restarts,
                    # and halt detection.
            live = self.step()
            if not live:
                ledger.halted = True
                break
            if ledger.completed_per_tick and ledger.completed_per_tick[-1] == 0 and not any(
                proc.is_running for proc in self._processors
            ):
                stalled_ticks += 1
                if stalled_ticks >= stall_limit:
                    ledger.stalled = True
                    break
            else:
                stalled_ticks = 0
            if until is not None and until(reader):
                ledger.goal_reached = True
                break
            if ledger.ticks >= max_ticks:
                ledger.tick_limited = True
                if raise_on_limit:
                    raise TickLimitError(
                        f"run exceeded max_ticks={max_ticks} "
                        f"(S={ledger.completed_work})"
                    )
                break
        if self._resident is not None:
            # Run over: callers inspect memory (σ, snapshots, asserts)
            # the moment this returns.
            self._resident.flush()
        self._sync_traffic()
        return ledger
