"""The restartable fail-stop CRCW PRAM, executed in lock step.

One machine tick implements one synchronous PRAM clock step for every
running processor:

1. restart events from the previous tick take effect (revived processors
   run their first cycle on the *next* tick — they restart "at their
   initial state with their PID as their only knowledge");
2. every running processor's pending update cycle performs its reads
   against the memory state at the start of the tick (synchronous PRAM
   semantics) and its fixed compute step produces a write set;
3. the on-line adversary inspects everything (clock, memory, statuses,
   pending cycles *including* their computed write sets) and rules: for
   each processor, survive, or fail after a prefix of its atomic writes;
4. the machine enforces the model's progress condition — at least one
   pending cycle must complete per tick — by vetoing the adversary on one
   processor if necessary (configurable);
5. the surviving writes are resolved under the machine's CRCW policy and
   applied atomically;
6. processors whose cycles completed are charged one unit of completed
   work and advance to their next cycle; interrupted cycles are charged
   only under the S' measure.

This is a *model-level* simulator: "work" is the paper's completed-work
measure, not wall-clock time, so the results are exact in the paper's own
cost model regardless of host parallelism.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.pram.cycles import Cycle, Write
from repro.pram.errors import (
    AdversaryError,
    MachineStalledError,
    ProgramError,
    ProgressViolationError,
    TickLimitError,
)
from repro.pram.failures import (
    AFTER_ALL_WRITES,
    Decision,
    FailureTag,
)
from repro.pram.ledger import RunLedger
from repro.pram.memory import MemoryReader, SharedMemory
from repro.pram.policies import CommonCrcw, WritePolicy
from repro.pram.processor import Processor, ProcessorStatus, ProgramFactory
from repro.pram.view import PendingCycleView, TickView

#: Termination predicate: receives a read-only memory view.
UntilPredicate = Callable[[MemoryReader], bool]


class Machine:
    """A P-processor restartable fail-stop PRAM over shared memory."""

    def __init__(
        self,
        num_processors: int,
        memory: SharedMemory,
        policy: Optional[WritePolicy] = None,
        adversary: Optional[object] = None,
        max_reads: int = 4,
        max_writes: int = 2,
        allow_snapshot: bool = False,
        enforce_progress: bool = True,
        strict_progress: bool = False,
        fairness_window: Optional[int] = None,
        context: Optional[Dict[str, object]] = None,
    ) -> None:
        if num_processors <= 0:
            raise ValueError(
                f"machine needs at least one processor, got {num_processors}"
            )
        self.num_processors = num_processors
        self.memory = memory
        self.policy = policy if policy is not None else CommonCrcw()
        self.adversary = adversary
        self.max_reads = max_reads
        self.max_writes = max_writes
        self.allow_snapshot = allow_snapshot
        self.enforce_progress = enforce_progress
        self.strict_progress = strict_progress
        # Optional fairness guarantee: a processor whose attempts were
        # interrupted `fairness_window` consecutive times cannot be
        # interrupted again until it completes a cycle.  This is the
        # "eventual progress" reading of the model's condition 2.(i) —
        # without it, an adversary can satisfy the letter of the
        # condition by letting only repeatable read-only cycles (e.g.
        # algorithm V's waiter polls) complete, while starving every
        # productive cycle forever.  None disables the guarantee.
        if fairness_window is not None and fairness_window < 1:
            raise ValueError(
                f"fairness_window must be >= 1 or None, got {fairness_window}"
            )
        self.fairness_window = fairness_window
        self._consecutive_interrupts: Dict[int, int] = {}
        self.context: Dict[str, object] = dict(context or {})
        self.ledger = RunLedger()
        self._processors: List[Processor] = []
        self._reader = MemoryReader(memory)

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    def load_program(self, program_factory: ProgramFactory) -> None:
        """Install the program on all P processors and start them."""
        self._processors = [
            Processor(pid, program_factory) for pid in range(self.num_processors)
        ]
        for processor in self._processors:
            processor.spawn()

    @property
    def processors(self) -> Tuple[Processor, ...]:
        return tuple(self._processors)

    @property
    def time(self) -> int:
        """Ticks executed so far."""
        return self.ledger.ticks

    def statuses(self) -> Dict[int, ProcessorStatus]:
        return {proc.pid: proc.status for proc in self._processors}

    # ------------------------------------------------------------------ #
    # one tick
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Execute one clock tick.

        Returns ``True`` when the machine is still live (some processor is
        running or failed-but-restartable), ``False`` once every processor
        has halted.
        """
        if not self._processors:
            raise ProgramError("no program loaded; call load_program() first")

        running = [proc for proc in self._processors if proc.is_running]
        failed = [proc for proc in self._processors if proc.is_failed]
        if not running and not failed:
            return False

        self.ledger.ticks += 1
        tick = self.ledger.ticks

        pending = self._collect_pending(running)
        view = TickView(
            time=tick,
            memory=self._reader,
            statuses=self.statuses(),
            pending=pending,
            ledger=self.ledger,
            context=self.context,
        )
        decision = self._consult_adversary(view)
        failures = self._validated_failures(decision, pending)
        failures = self._apply_fairness(failures)
        failures = self._apply_progress_policy(failures, pending)

        self._apply_writes(pending, failures)
        completed_this_tick = self._settle_processors(pending, failures, tick)
        self.ledger.completed_per_tick.append(completed_this_tick)
        self._apply_restarts(decision, failures, pending, tick)
        self._sync_traffic()
        return True

    # -- tick sub-phases ------------------------------------------------ #

    def _collect_pending(
        self, running: List[Processor]
    ) -> Dict[int, PendingCycleView]:
        pending: Dict[int, PendingCycleView] = {}
        readers_by_address: Dict[int, List[int]] = defaultdict(list)
        for processor in running:
            cycle = processor.pending_cycle
            if cycle.is_snapshot:
                if not self.allow_snapshot:
                    raise ProgramError(
                        f"pid {processor.pid}: snapshot read on a machine "
                        f"without allow_snapshot (label={cycle.label!r})"
                    )
                values: Tuple[int, ...] = tuple(self.memory.snapshot())
                self.memory.reads_served += 1  # unit cost by assumption
            else:
                specs = cycle.read_specs()
                if len(specs) > self.max_reads:
                    raise ProgramError(
                        f"pid {processor.pid}: cycle reads {len(specs)} "
                        f"cells, limit is {self.max_reads} "
                        f"(label={cycle.label!r})"
                    )
                value_list: List[int] = []
                for spec in specs:
                    address = spec(tuple(value_list)) if callable(spec) else spec
                    if address is None:
                        value_list.append(0)
                        continue
                    value_list.append(self.memory.read(address))
                    readers_by_address[address].append(processor.pid)
                values = tuple(value_list)
            writes = cycle.materialize_writes(values)
            if len(writes) > self.max_writes:
                raise ProgramError(
                    f"pid {processor.pid}: cycle writes {len(writes)} cells, "
                    f"limit is {self.max_writes} (label={cycle.label!r})"
                )
            pending[processor.pid] = PendingCycleView(
                pid=processor.pid, cycle=cycle, read_values=values, writes=writes
            )
        for address, reader_pids in readers_by_address.items():
            self.policy.check_reads(address, reader_pids)
        return pending

    def _consult_adversary(self, view: TickView) -> Decision:
        if self.adversary is None:
            return Decision.none()
        decision = self.adversary.decide(view)
        if decision is None:
            return Decision.none()
        if not isinstance(decision, Decision):
            raise AdversaryError(
                f"adversary returned {decision!r}, expected a Decision"
            )
        return decision

    def _validated_failures(
        self, decision: Decision, pending: Mapping[int, PendingCycleView]
    ) -> Dict[int, int]:
        failures: Dict[int, int] = {}
        for pid, writes_applied in decision.failures.items():
            if pid not in pending:
                raise AdversaryError(
                    f"adversary failed pid {pid}, which has no pending cycle"
                )
            write_count = len(pending[pid].writes)
            if writes_applied == AFTER_ALL_WRITES:
                writes_applied = write_count
            if not 0 <= writes_applied <= write_count:
                raise AdversaryError(
                    f"adversary applied {writes_applied} writes for pid {pid}, "
                    f"cycle has {write_count}"
                )
            failures[pid] = writes_applied
        return failures

    def _apply_fairness(self, failures: Dict[int, int]) -> Dict[int, int]:
        if self.fairness_window is None:
            return failures
        for pid in list(failures):
            if self._consecutive_interrupts.get(pid, 0) >= self.fairness_window:
                del failures[pid]
                self.ledger.fairness_vetoes += 1
        return failures

    def _cycle_completes(
        self, pid: int, failures: Mapping[int, int], pending: Mapping[int, PendingCycleView]
    ) -> bool:
        """A cycle completes iff the processor was not failed during it.

        A failure with ``writes_applied == len(writes)`` leaves every
        atomic write in memory but the cycle still counts as interrupted
        (charged to S' only): the processor stopped before reaching the
        cycle boundary.
        """
        return pid not in failures

    def _apply_progress_policy(
        self, failures: Dict[int, int], pending: Mapping[int, PendingCycleView]
    ) -> Dict[int, int]:
        if not pending:
            return failures
        if any(self._cycle_completes(pid, failures, pending) for pid in pending):
            return failures
        # Every pending cycle would be interrupted: the model's progress
        # condition (at least one completing update cycle at any time) is
        # violated.
        if self.strict_progress:
            raise ProgressViolationError(
                "adversary interrupted every pending update cycle at tick "
                f"{self.ledger.ticks}"
            )
        if not self.enforce_progress:
            return failures
        spared_pid = min(failures)
        del failures[spared_pid]
        self.ledger.progress_vetoes += 1
        return failures

    def _apply_writes(
        self,
        pending: Mapping[int, PendingCycleView],
        failures: Mapping[int, int],
    ) -> None:
        writers_by_address: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        for pid in sorted(pending):
            entry = pending[pid]
            if pid in failures:
                surviving: Tuple[Write, ...] = entry.writes[: failures[pid]]
            else:
                surviving = entry.writes
            for write in surviving:
                writers_by_address[write.address].append((pid, write.value))
        for address in sorted(writers_by_address):
            writers = writers_by_address[address]
            value = self.policy.resolve(address, writers)
            self.memory.write(address, value)

    def _settle_processors(
        self,
        pending: Mapping[int, PendingCycleView],
        failures: Mapping[int, int],
        tick: int,
    ) -> int:
        completed_this_tick = 0
        for pid in sorted(pending):
            processor = self._processors[pid]
            self.ledger.charge_attempt(pid)
            completes = self._cycle_completes(pid, failures, pending)
            if completes:
                self.ledger.charge_completion(pid)
                completed_this_tick += 1
                self._consecutive_interrupts[pid] = 0
            else:
                self._consecutive_interrupts[pid] = (
                    self._consecutive_interrupts.get(pid, 0) + 1
                )
            if pid in failures:
                self.ledger.pattern.record(FailureTag.FAILURE, pid, tick)
                processor.fail()
            else:
                processor.complete_cycle(pending[pid].read_values)
        return completed_this_tick

    def _apply_restarts(
        self,
        decision: Decision,
        failures: Mapping[int, int],
        pending: Mapping[int, PendingCycleView],
        tick: int,
    ) -> None:
        for pid in sorted(decision.restarts):
            if not 0 <= pid < self.num_processors:
                raise AdversaryError(f"adversary restarted unknown pid {pid}")
            processor = self._processors[pid]
            if not processor.is_failed:
                if processor.is_running and pid in decision.failures:
                    # The progress veto cancelled this pid's failure, so
                    # its paired restart is vacuous — skip it.
                    continue
                raise AdversaryError(
                    f"adversary restarted pid {pid}, which is "
                    f"{processor.status.value}"
                )
            self.ledger.pattern.record(FailureTag.RESTART, pid, tick)
            processor.restart()
        # Progress policy for an all-failed machine: something must be
        # executing an update cycle.  If the adversary left every processor
        # failed, forcibly restart the lowest PID.
        if self.enforce_progress and not pending and not decision.restarts:
            failed = [proc for proc in self._processors if proc.is_failed]
            if failed:
                revived = min(failed, key=lambda proc: proc.pid)
                self.ledger.pattern.record(FailureTag.RESTART, revived.pid, tick)
                revived.restart()
                self.ledger.progress_vetoes += 1

    def _sync_traffic(self) -> None:
        self.ledger.memory_reads = self.memory.reads_served
        self.ledger.memory_writes = self.memory.writes_applied

    # ------------------------------------------------------------------ #
    # whole runs
    # ------------------------------------------------------------------ #

    def run(
        self,
        until: Optional[UntilPredicate] = None,
        max_ticks: int = 1_000_000,
        raise_on_limit: bool = True,
        stall_limit: int = 1024,
    ) -> RunLedger:
        """Tick until ``until`` holds, all processors halt, or limits hit.

        ``stall_limit`` bounds consecutive ticks in which no update cycle
        was even attempted (all processors failed, adversary silent) —
        only reachable with ``enforce_progress=False``.
        """
        stalled_ticks = 0
        while True:
            if until is not None and until(self._reader):
                self.ledger.goal_reached = True
                break
            live = self.step()
            if not live:
                self.ledger.halted = True
                break
            if self.ledger.completed_per_tick and self.ledger.completed_per_tick[-1] == 0 and not any(
                proc.is_running for proc in self._processors
            ):
                stalled_ticks += 1
                if stalled_ticks >= stall_limit:
                    self.ledger.stalled = True
                    break
            else:
                stalled_ticks = 0
            if self.ledger.ticks >= max_ticks:
                if until is not None and until(self._reader):
                    self.ledger.goal_reached = True
                    break
                self.ledger.tick_limited = True
                if raise_on_limit:
                    raise TickLimitError(
                        f"run exceeded max_ticks={max_ticks} "
                        f"(S={self.ledger.completed_work})"
                    )
                break
        self._sync_traffic()
        return self.ledger
