"""A4 — the paper's open problem: X under fail-stop (no restarts).

Section 5: "What is the worst case completed work S of the algorithm X
in the case of fail-stop errors without restarts? ... We conjecture
that the fail-stop (no restart) performance of X has work
S = O(N log N log log N) using N processors."

We cannot prove the conjecture, but we can measure it: run X against
the strongest no-restart adversaries we have (the halving strategy and
the no-restart stalker) and fit the growth.  A fitted exponent close to
1 (with the ratio to N log N log log N flat or shrinking) is consistent
with the conjecture; anything approaching N^{log 3} would refute our
adversaries' optimality, not the conjecture — which is exactly the open
problem's character.
"""

import math

from _support import emit, once

from repro.core import AlgorithmX, solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.fitting import fitted_exponent
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: the no-restart halving
# and no-restart stalker sweeps.
SCENARIO = get_scenario("A4_x_failstop_conjecture")
HALVING_SPEC, STALKER_SPEC = SCENARIO.specs
SIZES = list(HALVING_SPEC.sizes)


def conjecture(n: int) -> float:
    log_n = max(2.0, math.log2(n))
    return n * log_n * math.log2(log_n)


def run_sweep():
    rows = []
    worst_works = []
    for n in SIZES:
        halved = solve_write_all(
            AlgorithmX(), n, n,
            adversary=HALVING_SPEC.adversary_for(0),
            max_ticks=20_000_000,
        )
        stalked = solve_write_all(
            AlgorithmX(), n, n,
            adversary=STALKER_SPEC.adversary_for(0),
            max_ticks=20_000_000,
        )
        assert halved.solved and stalked.solved
        worst = max(halved.completed_work, stalked.completed_work)
        worst_works.append(worst)
        rows.append([
            n, halved.completed_work, stalked.completed_work,
            round(worst / conjecture(n), 3),
        ])
    return rows, worst_works


def test_failstop_x_is_consistent_with_the_conjecture(benchmark):
    rows, worst_works = once(benchmark, run_sweep)
    exponent = fitted_exponent(SIZES, worst_works)
    table = render_table(
        ["N=P", "S(halving)", "S(no-restart stalker)",
         "worst/(N logN loglogN)"],
        rows,
        title=(
            "A4  open problem — X under fail-stop (no restarts): fitted "
            f"exponent {exponent:.3f} (conjecture ~1+o(1), refutation "
            f"threshold ~{math.log2(3):.3f})"
        ),
    )
    emit("A4_x_failstop_conjecture", table)
    # Consistency check, not proof: stays well below the restart regime.
    assert exponent < math.log2(3)
