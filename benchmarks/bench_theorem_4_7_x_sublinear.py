"""E8 — Theorem 4.7: X with P <= N processors,
S = O(N * P^{log2(3/2) + delta}).

N is fixed while P sweeps; the stalking adversary extracts (close to)
the worst case at each P.  S / (N * P^{0.585}) must stay bounded while
raw work grows with P.
"""

import math

from _support import emit, once

from repro.core import AlgorithmX, solve_write_all
from repro.experiments.bench import get_scenario
from repro.faults import StalkingAdversaryX
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: one spec per P.
SCENARIO = get_scenario("E8_thm47_x_sublinear")
N = SCENARIO.specs[0].sizes[0]
PROCESSORS = [spec.processors_for(N) for spec in SCENARIO.specs]
EXPONENT = math.log2(1.5)


def run_sweep():
    rows, ratios, works = [], [], []
    for p in PROCESSORS:
        result = solve_write_all(
            AlgorithmX(), N, p, adversary=StalkingAdversaryX(),
            max_ticks=20_000_000,
        )
        assert result.solved
        bound = N * p ** (EXPONENT + 0.015)
        ratio = result.completed_work / bound
        works.append(result.completed_work)
        ratios.append(ratio)
        rows.append([
            p, result.completed_work, int(bound), round(ratio, 3),
            result.parallel_time,
        ])
    return rows, ratios, works


def test_x_work_scales_sublinearly_in_p(benchmark):
    rows, ratios, works = once(benchmark, run_sweep)
    table = render_table(
        ["P", "S", "N*P^0.6", "ratio", "ticks"],
        rows,
        title=(
            f"E8  Theorem 4.7 — stalked X at N={N}: S = O(N * P^0.6) "
            "across the P sweep"
        ),
    )
    emit("E8_thm47_x_sublinear", table)
    # The constant sits near 7-8 on this implementation; what matters is
    # that the ratio series is FLAT across a 256x sweep of P.
    assert all(ratio <= 16.0 for ratio in ratios), ratios
    assert max(ratios) / min(ratios) <= 2.0, ratios
    # Work grows with P (more processors to stalk)...
    assert works[0] < works[-1]
    # ...but sub-linearly: doubling P never doubles S/N.
    for (p0, w0), (p1, w1) in zip(
        zip(PROCESSORS, works), zip(PROCESSORS[1:], works[1:])
    ):
        growth = math.log(w1 / w0) / math.log(p1 / p0)
        assert growth < 1.0, (p0, p1, growth)
