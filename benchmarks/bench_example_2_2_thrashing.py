"""E1 — Example 2.2: the thrashing adversary and S vs S'.

Paper claim: charging incomplete cycles (S') lets a thrashing adversary
force Omega(P*N) work out of *any* Write-All solution, while the
completed-work measure S discounts the thrash entirely.  We run
algorithm X under the thrashing adversary and report both measures: S'
grows ~quadratically, S stays near-linear.
"""

from _support import emit, once

from repro.core import AlgorithmX, solve_write_all
from repro.experiments.bench import get_scenario
from repro.faults import ThrashingAdversary
from repro.metrics.fitting import fitted_exponent
from repro.metrics.tables import render_table

# Grid constants come from the driver's scenario registry so the
# pytest benchmark and `repro bench` measure the same sweep.
SCENARIO = get_scenario("E1_thrashing")
SIZES = list(SCENARIO.specs[0].sizes)


def run_sweep():
    rows = []
    charged, completed = [], []
    for n in SIZES:
        result = solve_write_all(
            AlgorithmX(), n, n, adversary=ThrashingAdversary(),
            max_ticks=1_000_000,
        )
        assert result.solved
        charged.append(result.charged_work)
        completed.append(result.completed_work)
        rows.append([
            n, result.completed_work, result.charged_work,
            result.charged_work / (n * n),
            result.completed_work / n,
            result.pattern_size,
        ])
    return rows, charged, completed


def test_thrashing_separates_the_measures(benchmark):
    rows, charged, completed = once(benchmark, run_sweep)
    table = render_table(
        ["N=P", "S", "S'", "S'/(P*N)", "S/N", "|F|"],
        rows,
        title="E1  Example 2.2 — thrashing adversary: S' explodes, S does not",
    )
    emit("E1_thrashing", table)
    charged_exponent = fitted_exponent(SIZES, charged)
    completed_exponent = fitted_exponent(SIZES, completed)
    assert charged_exponent > 1.7, "S' should grow ~quadratically"
    assert completed_exponent < 1.4, "S should stay near-linear"
