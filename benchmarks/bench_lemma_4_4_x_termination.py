"""E6 — Lemma 4.4: algorithm X is a correct Omega(log N)/O(N)-time
fault-tolerant Write-All solution.

X must terminate under every environment we can throw at it; its
parallel time lands between ~log N (full crew) and ~c*N (lone
survivor).
"""

from _support import emit, once

from repro.core import AlgorithmX, solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: one spec per environment
# (the spec name carries the label, the factory carries the seed).
SCENARIO = get_scenario("E6_lemma44_x_termination")
N = SCENARIO.specs[0].sizes[0]


def environments():
    return [
        (spec.name.split("/", 1)[1], spec.adversary_for(spec.seeds[0]))
        for spec in SCENARIO.specs
    ]


def run_sweep():
    rows = []
    for label, adversary in environments():
        result = solve_write_all(
            AlgorithmX(), N, N, adversary=adversary, max_ticks=2_000_000
        )
        assert result.solved, f"X failed to terminate under {label}"
        rows.append([
            label, result.parallel_time, result.completed_work,
            result.pattern_size,
        ])
    lone = solve_write_all(AlgorithmX(), N, 1)
    assert lone.solved
    rows.append(["P=1 (sequential DFS)", lone.parallel_time,
                 lone.completed_work, 0])
    return rows, lone


def test_x_terminates_everywhere(benchmark):
    rows, lone = once(benchmark, run_sweep)
    table = render_table(
        ["environment", "ticks", "S", "|F|"],
        rows,
        title=(
            f"E6  Lemma 4.4 — X at N={N}: correct termination in "
            "[~log N, O(N)] time"
        ),
    )
    emit("E6_lemma44_x_termination", table)
    # Time band: the failure-free run is ~log N-ish; the lone processor
    # is Theta(N) (with a log-factor of tree walking).
    ticks = {row[0]: row[1] for row in rows}
    assert ticks["no-failures"] <= 16
    assert N / 2 <= ticks["P=1 (sequential DFS)"] <= 12 * N
