"""E2 — Theorem 3.1: the Omega(N log N) lower bound with restarts.

The pigeonhole-halving adversary forces >= ~(N/2) log N completed work
out of every algorithm — including the snapshot algorithm that can read
all of memory at unit cost (for which the bound is tight).  We run it
against the snapshot algorithm, X and V+X and report S / (N log N).
"""

import math

from _support import emit, once

from repro.core import (
    AlgorithmVX,
    AlgorithmX,
    SnapshotAlgorithm,
    solve_write_all,
)
from repro.experiments.bench import get_scenario
from repro.faults import HalvingAdversary
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry (one spec per algorithm).
SCENARIO = get_scenario("E2_thm31_lower_bound")
SIZES = list(SCENARIO.specs[0].sizes)


def run_sweep():
    rows = []
    ratios = {}
    for n in SIZES:
        row = [n]
        for algorithm in [SnapshotAlgorithm(), AlgorithmX(), AlgorithmVX()]:
            result = solve_write_all(
                algorithm, n, n, adversary=HalvingAdversary(),
                max_ticks=2_000_000,
            )
            assert result.solved
            ratio = result.completed_work / (n * math.log2(n))
            ratios.setdefault(algorithm.name, []).append(ratio)
            row += [result.completed_work, round(ratio, 2)]
        rows.append(row)
    return rows, ratios


def test_halving_forces_n_log_n(benchmark):
    rows, ratios = once(benchmark, run_sweep)
    table = render_table(
        ["N=P", "S(snap)", "r(snap)", "S(X)", "r(X)", "S(V+X)", "r(V+X)"],
        rows,
        title=(
            "E2  Theorem 3.1 — halving adversary: S/(N log N) bounded away "
            "from 0 for every algorithm"
        ),
    )
    emit("E2_thm31_lower_bound", table)
    for name, series in ratios.items():
        assert all(ratio >= 0.4 for ratio in series), (
            f"{name}: S fell below the Omega(N log N) floor"
        )
