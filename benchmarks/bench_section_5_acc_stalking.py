"""E12 — Section 5: stalking adversaries defeat randomized ACC.

    "A simple stalking adversary causes the ACC algorithm to perform
    (expected) work of Omega(N^2/polylog N) in the case of fail-stop
    errors, and [quasi-polynomial] work in the case of stop errors with
    restart ... This performance is not improved even when using the
    completed work accounting.  On a positive note, when the adversary
    is made off-line, the ACC algorithm becomes efficient."

Four environments for the ACC reconstruction:

* failure-free — baseline;
* off-line pattern (a pre-committed schedule with the same volume of
  failures a stalker would issue) — still efficient;
* on-line fail-stop stalker — terminates via the lone survivor, with a
  large work blow-up;
* on-line restart stalker — the target is starved outright within the
  tick budget (our synchronous instantiation of "not improved").
"""

from _support import emit, once

from repro.core import AccAlgorithm, solve_write_all
from repro.experiments.bench import EXCLUDED
from repro.faults import AccStalker, NoRestartAdversary, ScheduledAdversary
from repro.metrics.tables import render_table

# Bespoke benchmark: not an engine-runnable sweep grid.  The driver's
# registry records why (and this assert keeps the record honest).
SCENARIO = None
assert "bench_section_5_acc_stalking.py" in EXCLUDED

N = 32
STARVE_TICKS = 30_000


def offline_schedule(n):
    """A committed schedule with stalker-like volume, blind to the run."""
    schedule = {}
    for tick in range(2, 200, 3):
        victims = [(tick * 7 + k) % n for k in range(n // 4)]
        schedule[tick] = (victims, [])
        schedule[tick + 1] = ([], victims)
    return ScheduledAdversary(schedule)


def run_sweep():
    rows = []
    free = solve_write_all(AccAlgorithm(seed=5), N, N)
    assert free.solved
    rows.append(["failure-free", "yes", free.completed_work,
                 free.parallel_time, free.pattern_size])

    offline = solve_write_all(
        AccAlgorithm(seed=5), N, N, adversary=offline_schedule(N),
        max_ticks=500_000,
    )
    assert offline.solved
    rows.append(["off-line schedule", "yes", offline.completed_work,
                 offline.parallel_time, offline.pattern_size])

    failstop = solve_write_all(
        AccAlgorithm(seed=5), N, N,
        adversary=NoRestartAdversary(AccStalker(fail_stop=True)),
        max_ticks=2_000_000,
    )
    assert failstop.solved
    rows.append(["on-line stalker (fail-stop)", "yes",
                 failstop.completed_work, failstop.parallel_time,
                 failstop.pattern_size])

    restart = solve_write_all(
        AccAlgorithm(seed=5), N, N, adversary=AccStalker(),
        max_ticks=STARVE_TICKS,
    )
    rows.append([
        "on-line stalker (restart)",
        "yes" if restart.solved else f"starved @{STARVE_TICKS}",
        restart.completed_work, restart.parallel_time,
        restart.pattern_size,
    ])
    return rows, free, offline, failstop, restart


def test_stalker_defeats_acc_online_only(benchmark):
    rows, free, offline, failstop, restart = once(benchmark, run_sweep)
    table = render_table(
        ["environment", "solved", "S", "ticks", "|F|"],
        rows,
        title=(
            f"E12  Section 5 — randomized ACC at N=P={N}: on-line "
            "stalking ruins it, off-line patterns do not"
        ),
    )
    emit("E12_acc_stalking", table)
    # Off-line: within a small multiple of failure-free time.
    assert offline.parallel_time <= 20 * free.parallel_time + 100
    # On-line fail-stop: the stalker whittles the crew to a lone
    # survivor (|F| ~ N-1) with a clear slowdown.  (The paper's
    # Omega(N^2/polylog) constant is muted in our reconstruction because
    # progress marks are shared — see DESIGN.md substitutions.)
    assert failstop.ledger.pattern.failure_count >= N - 2
    assert failstop.parallel_time >= 1.4 * free.parallel_time
    assert failstop.completed_work >= 1.2 * free.completed_work
    # On-line restart: the target is starved within the budget.
    assert not restart.solved
