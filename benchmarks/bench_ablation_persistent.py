"""A5 — ablation: reset-based vs generational (persistent) execution.

The reset-based executor (our initial substitution) rebuilds the
Write-All scratch structures per phase and resurrects all processors at
phase boundaries; the generational executor ([Shv 89]'s technique,
`PersistentSimulator`) runs the whole program as one machine run over
tagged structures.  This ablation compares the two on identical
workloads and adversaries:

* both compute identical (correct) results;
* the persistent executor's failure pattern is *continuous* (a
  processor crashed in one phase is still down in the next);
* total completed work is comparable — the generation tags replace the
  resets at bounded extra gate cost.
"""

import random

from _support import emit, once

from repro.core import AlgorithmX
from repro.experiments.bench import EXCLUDED
from repro.faults import RandomAdversary
from repro.metrics.tables import render_table

# Bespoke benchmark: not an engine-runnable sweep grid.  The driver's
# registry records why (and this assert keeps the record honest).
SCENARIO = None
assert "bench_ablation_persistent.py" in EXCLUDED
from repro.simulation import PersistentSimulator, RobustSimulator
from repro.simulation.programs import (
    max_find_program,
    odd_even_sort_program,
    prefix_sum_program,
)

WIDTH = 32
P = 8


def workloads():
    rng = random.Random(3)
    data = [rng.randint(0, 99) for _ in range(WIDTH)]
    return [
        ("prefix-sum", prefix_sum_program(WIDTH), data),
        ("max-find", max_find_program(WIDTH), data),
        ("odd-even-sort", odd_even_sort_program(WIDTH), data),
    ]


def run_matrix():
    rows = []
    for label, program, data in workloads():
        reset_based = RobustSimulator(
            p=P, algorithm=AlgorithmX(),
            adversary=RandomAdversary(0.08, 0.3, seed=6),
        ).execute(program, list(data))
        persistent = PersistentSimulator(
            p=P, adversary=RandomAdversary(0.08, 0.3, seed=6),
        ).execute(program, list(data))
        assert reset_based.solved and persistent.solved
        assert reset_based.memory == persistent.memory, label
        rows.append([
            label,
            reset_based.total_work, persistent.total_work,
            round(persistent.total_work / reset_based.total_work, 3),
            reset_based.total_pattern_size, persistent.total_pattern_size,
        ])
    return rows


def test_persistent_matches_reset_based(benchmark):
    rows = once(benchmark, run_matrix)
    table = render_table(
        ["program", "S reset", "S persistent", "ratio", "|F| reset",
         "|F| persistent"],
        rows,
        title=(
            f"A5  ablation — reset-based vs generational execution "
            f"(width {WIDTH}, P={P}, same adversary)"
        ),
    )
    emit("A5_persistent", table)
    for row in rows:
        # Same answers (asserted above) at comparable work.
        assert row[3] <= 4.0, row
