"""CI distributed smoke: serve + 2 workers, one killed mid-sweep.

End-to-end proof of the fabric's failure model through the real CLI
surface (no in-process shortcuts):

1. start ``python -m repro serve`` as a subprocess and parse its
   listening address;
2. spawn two ``python -m repro worker`` subprocesses (each its own
   process group);
3. run a sweep through ``backend=remote:host:port`` whose points carry
   a latency floor, so both workers are guaranteed to be mid-lease;
4. once the status endpoint shows the whole fleet leasing, SIGKILL one
   worker's entire process group — a fail-stop, the paper's Section 2
   failure event, landing on our own fleet;
5. assert the sweep still completes **bit-identical to the serial
   runner**, that the server re-queued at least one abandoned lease
   (the restart half of the model), and that nothing was quarantined.

Exit code 0 on success; any broken promise exits 1 with a message::

    PYTHONPATH=src python benchmarks/distributed_smoke.py
"""

import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Enough floor per point that the kill window (fleet fully leasing)
#: is wide open on any host; 12 points keep the smoke under ~20s.
POINT_FLOOR_S = 0.4
SEEDS = 12


def build_spec():
    from repro.core import AlgorithmX
    from repro.experiments import SweepSpec
    from repro.experiments.factories import RandomChurn

    return SweepSpec(
        name="dist-smoke",
        algorithm=AlgorithmX,
        sizes=(16,),
        processors=4,
        adversary=RandomChurn(0.15, 0.4),
        seeds=range(SEEDS),
        max_ticks=200_000,
        point_floor_s=POINT_FLOOR_S,
    )


def start_server():
    """``repro serve`` as a subprocess; returns (process, address)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--no-cache"],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    line = process.stdout.readline().strip()
    marker = "listening on "
    if marker not in line:
        process.terminate()
        raise SystemExit(f"serve did not announce its address: {line!r}")
    return process, line.split(marker, 1)[1]


def kill_one_worker_mid_sweep(address, victim, killed_event):
    """Wait until the whole fleet holds leases, then fail-stop one."""
    from repro.experiments.serve import fetch_status

    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        status = fetch_status(address)
        if status["leased"] >= 2 and status["executed"] >= 1:
            break
        time.sleep(0.05)
    else:
        print("[smoke] fleet never reached 2 concurrent leases",
              flush=True)
        return
    os.killpg(os.getpgid(victim.pid), signal.SIGKILL)
    killed_event.set()
    print(f"[smoke] SIGKILLed worker pid {victim.pid} mid-lease "
          f"(status: {status['leased']} leased, "
          f"{status['executed']} executed)", flush=True)


def main() -> int:
    from repro.experiments import run_sweep, run_sweep_parallel
    from repro.experiments.serve import fetch_status
    from repro.experiments.worker import spawn_worker

    spec = build_spec()
    print(f"[smoke] serial reference: {SEEDS} points...", flush=True)
    serial = run_sweep(spec)

    server, address = start_server()
    print(f"[smoke] serve daemon at {address}", flush=True)
    workers = []
    killed = threading.Event()
    try:
        workers = [
            spawn_worker(address, name=f"w{index}", new_session=True)
            for index in range(2)
        ]
        killer = threading.Thread(
            target=kill_one_worker_mid_sweep,
            args=(address, workers[0], killed), daemon=True,
        )
        killer.start()
        print("[smoke] sweeping through the remote backend...", flush=True)
        result = run_sweep_parallel(spec, backend=f"remote:{address}")
        killer.join(timeout=60.0)
        status = fetch_status(address)
    finally:
        for process in workers:
            try:
                os.killpg(os.getpgid(process.pid), signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
        server.terminate()
        server.wait(timeout=10)

    problems = []
    if not killed.is_set():
        problems.append("never killed a worker mid-sweep (window missed)")
    if result.points != serial.points:
        problems.append("remote sweep is NOT bit-identical to serial")
    if result.failures:
        problems.append(f"unexpected failures: {result.failures}")
    if result.stats.requeues < 1:
        problems.append(
            f"expected >= 1 lease re-queue after the kill, saw "
            f"{result.stats.requeues}"
        )
    if status["quarantined"] != 0:
        problems.append(
            f"server quarantined {status['quarantined']} task(s)"
        )
    if problems:
        for problem in problems:
            print(f"[smoke] FAIL: {problem}", flush=True)
        return 1
    print(f"[smoke] PASS: {len(result.points)} points bit-identical to "
          f"serial after a mid-sweep worker kill; "
          f"{result.stats.requeues} lease(s) re-queued", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
