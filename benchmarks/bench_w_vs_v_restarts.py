"""A6 — why V replaces W's enumeration (Section 4.1).

    "the processor enumeration and allocation phases become inefficient
    and possibly incorrect, since no accurate estimates of active
    processors can be obtained when the adversary can revive any of the
    failed processors at any time."

W's allocation is driven by a per-iteration census of live processors;
restarts make the census stale both ways (revived processors invisible,
dead ones counted).  V allocates by the permanent PID instead.  This
experiment compares the two across N under identical restart churn:
V's work stays at-or-below W's, with the gap opening as churn rises —
and W pays its enumeration phase even failure-free.
"""

from _support import emit, once

from repro.core import AlgorithmV, AlgorithmW, solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: free + churn specs for
# both algorithms, identical churn (same factory, same seed).
SCENARIO = get_scenario("A6_w_vs_v")
_SPECS = {spec.name: spec for spec in SCENARIO.specs}
SIZES = list(SCENARIO.specs[0].sizes)


def _adversary(name):
    spec = _SPECS[name]
    return spec.adversary_for(spec.seeds[0])


def run_sweep():
    rows = []
    for n in SIZES:
        free_w = solve_write_all(AlgorithmW(), n, n,
                                 adversary=_adversary("W/free"))
        free_v = solve_write_all(AlgorithmV(), n, n,
                                 adversary=_adversary("V/free"))
        churn_w = solve_write_all(
            AlgorithmW(), n, n, adversary=_adversary("W/churn"),
            max_ticks=4_000_000,
        )
        churn_v = solve_write_all(
            AlgorithmV(), n, n, adversary=_adversary("V/churn"),
            max_ticks=4_000_000,
        )
        assert all(r.solved for r in [free_w, free_v, churn_w, churn_v])
        rows.append([
            n,
            free_v.completed_work, free_w.completed_work,
            churn_v.completed_work, churn_w.completed_work,
            round(churn_w.completed_work / churn_v.completed_work, 3),
        ])
    return rows


def test_v_beats_w_under_restarts(benchmark):
    rows = once(benchmark, run_sweep)
    table = render_table(
        ["N=P", "S(V) free", "S(W) free", "S(V) churn", "S(W) churn",
         "W/V churn"],
        rows,
        title=(
            "A6  Section 4.1 — dropping W's enumeration: V vs W under "
            "identical restart churn"
        ),
    )
    emit("A6_w_vs_v", table)
    for row in rows:
        # Failure-free: W pays the enumeration phase on top of V.
        assert row[2] >= row[1]
        # Under churn: V at-or-below W (generous slack for seed noise).
        assert row[4] >= 0.8 * row[3], row
