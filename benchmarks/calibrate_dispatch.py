"""Regenerate the adaptive-dispatch cost table from real measurements.

``repro.pram.dispatch.DEFAULT_TABLE`` predicts, per fused quiet
window, whether the vectorized lane beats the scalar compiled lane.
This script derives those coefficients the honest way — by timing the
actual solver on both lanes across a (kind x N x P) grid — and prints
a paste-ready ``DEFAULT_TABLE`` / ``REFERENCE_PROBE`` block:

* ``scalar_tick_lane_ns`` — median of ``time / (ticks * P)`` over the
  scalar runs of a kind.
* ``vec_tick_ns`` / ``vec_tick_lane_ns`` — least-squares fit of the
  vector runs' per-tick time against P (the vector lanes' cost is a
  fixed per-tick array-machinery term plus a small per-lane slope).
* ``vec_window_ns`` / ``vec_cell_ns`` — fit of fresh
  :class:`VectorWindow` construction time against memory size (the
  mirror build is the O(M) part persistent windows amortize away).
* ``vec_pack_lane_ns`` — per-lane cost of ``ensure_packed`` on a cold
  window.

Run on the repository's reference host and commit the output into
``src/repro/pram/dispatch.py``; other hosts are corrected at runtime
by the micro-probe ratio (``REFERENCE_PROBE`` is this host's probe
reading).

Usage::

    PYTHONPATH=src python benchmarks/calibrate_dispatch.py [--repeats K]
"""

from __future__ import annotations

import argparse
import statistics
import time

import numpy as np

from repro.core import AlgorithmW, AlgorithmX, TrivialAssignment
from repro.core.runner import solve_write_all
from repro.pram.dispatch import _run_probe
from repro.pram.memory import SharedMemory
from repro.pram.policies import CommonCrcw
from repro.pram.vectorized import resolve_vectorized

#: kind -> (algorithm factory, (N, P) grid).  P values are spread so the
#: per-lane slope of the vector per-tick cost is identifiable.
GRID = {
    "trivial": (TrivialAssignment, [(1024, 8), (4096, 32), (65536, 64)]),
    "X": (AlgorithmX, [(512, 8), (4096, 64), (16384, 128)]),
    "W": (AlgorithmW, [(1024, 8), (4096, 64), (8192, 128)]),
}

#: Memory sizes for the window-construction fit.
WINDOW_SIZES = [1024, 16384, 65536]


def _best_solve(factory, n, p, vectorized, repeats):
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter_ns()
        result = solve_write_all(factory(), n, p, vectorized=vectorized)
        times.append(time.perf_counter_ns() - start)
    return min(times), result


def _ticks(result):
    return result.ledger.ticks


def calibrate_kind(kind, factory, grid, repeats):
    scalar_rates = []
    per_tick = []  # (p, vec_ns_per_tick)
    for n, p in grid:
        scalar_ns, scalar_result = _best_solve(factory, n, p, False, repeats)
        vec_ns, vec_result = _best_solve(factory, n, p, True, repeats)
        ticks = _ticks(scalar_result)
        assert ticks == _ticks(vec_result), (kind, n, p)
        scalar_rates.append(scalar_ns / (ticks * p))
        per_tick.append((p, vec_ns / ticks))
        print(
            f"  {kind}@{n}x{p}: scalar {scalar_ns / 1e6:8.2f} ms  "
            f"vec {vec_ns / 1e6:8.2f} ms  "
            f"vec/scalar {scalar_ns / vec_ns:5.2f}x  ticks={ticks}"
        )
    ps = np.asarray([p for p, _ in per_tick], dtype=float)
    ys = np.asarray([y for _, y in per_tick], dtype=float)
    slope, intercept = np.polyfit(ps, ys, 1)
    return {
        "scalar_tick_lane_ns": statistics.median(scalar_rates),
        "vec_tick_ns": max(intercept, 0.0),
        "vec_tick_lane_ns": max(slope, 0.0),
    }


def calibrate_window(repeats):
    """Fit window construction (mirror build) and lane packing costs."""
    algorithm = TrivialAssignment()
    build = []  # (cells, best ns)
    pack_rates = []
    p = 64
    for m in WINDOW_SIZES:
        layout = algorithm.build_layout(m, p)
        program = resolve_vectorized(algorithm, layout, None, vectorized=True)
        memory = SharedMemory(layout.size)
        for pid in range(p):  # materialize the scalar kernels packing reads
            program.pid_stepper(pid)
        times, packs = [], []
        for _ in range(repeats):
            start = time.perf_counter_ns()
            window = program.begin_window(memory, CommonCrcw(), goal=None)
            times.append(time.perf_counter_ns() - start)
            start = time.perf_counter_ns()
            program.ensure_packed(window, range(p))
            packs.append(time.perf_counter_ns() - start)
            window.close()
        build.append((layout.size, min(times)))
        pack_rates.append(min(packs) / p)
    sizes = np.asarray([m for m, _ in build], dtype=float)
    ys = np.asarray([y for _, y in build], dtype=float)
    cell, fixed = np.polyfit(sizes, ys, 1)
    return {
        "vec_window_ns": max(fixed, 0.0),
        "vec_cell_ns": max(cell, 0.0),
        "vec_pack_lane_ns": statistics.median(pack_rates),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per configuration (min wins)")
    args = parser.parse_args()

    window = calibrate_window(args.repeats)
    rows = {}
    for kind, (factory, grid) in GRID.items():
        print(f"{kind}:")
        rows[kind] = {**calibrate_kind(kind, factory, grid, args.repeats),
                      **window}
    probe = _run_probe()

    print("\n# --- paste into src/repro/pram/dispatch.py ---")
    print("DEFAULT_TABLE: Dict[str, LaneCosts] = {")
    for kind in [*rows, "generic"]:
        # Unknown vector programs get the X row: the most vec-hostile
        # measured kind, so auto only dispatches vec when clearly ahead.
        row = rows.get(kind, rows["X"])
        print(f'    "{kind}": LaneCosts(')
        for field, value in row.items():
            print(f"        {field}={value:_.1f},")
        print("    ),")
    print("}")
    print(
        f"REFERENCE_PROBE = ProbeResult("
        f"scalar_ns={probe.scalar_ns:_.1f}, "
        f"vector_ns={probe.vector_ns:_.1f})"
    )


if __name__ == "__main__":
    main()
