"""E4 — Lemma 4.2: algorithm V without restarts, S = O(N + P log^2 N).

Crash-only (fail-stop, [KS 89] model) runs of V across N, in two
processor regimes: P = N (the P log^2 N term dominates) and
P = N / log^2 N (the bound collapses to O(N), the optimality window).
The ratio to the predicted bound must flatten in both regimes.
"""

from _support import emit, once

from repro.core import AlgorithmV, solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.bounds import work_upper_lemma42
from repro.metrics.fitting import is_flat
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: the dense (P = N) and
# slack (P = N / log^2 N) sweeps, each with its crash-only factory.
SCENARIO = get_scenario("E4_lemma42_v_failstop")
DENSE_SPEC, SLACK_SPEC = SCENARIO.specs
SIZES = list(DENSE_SPEC.sizes)


def crash_only(seed):
    return DENSE_SPEC.adversary(seed)


def run_sweep():
    rows = []
    dense_ratios, slack_ratios = [], []
    for n in SIZES:
        dense = solve_write_all(
            AlgorithmV(), n, n, adversary=crash_only(1), max_ticks=2_000_000
        )
        slack_p = SLACK_SPEC.processors_for(n)
        slack = solve_write_all(
            AlgorithmV(), n, slack_p, adversary=crash_only(2),
            max_ticks=2_000_000,
        )
        assert dense.solved and slack.solved
        dense_ratio = dense.completed_work / work_upper_lemma42(n, n)
        slack_ratio = slack.completed_work / work_upper_lemma42(n, slack_p)
        dense_ratios.append(dense_ratio)
        slack_ratios.append(slack_ratio)
        rows.append([
            n, dense.completed_work, round(dense_ratio, 3),
            slack_p, slack.completed_work, round(slack_ratio, 3),
        ])
    return rows, dense_ratios, slack_ratios


def test_v_failstop_tracks_lemma_4_2(benchmark):
    rows, dense_ratios, slack_ratios = once(benchmark, run_sweep)
    table = render_table(
        ["N", "S(P=N)", "S/(N+Plog^2N)", "P slack", "S(slack)",
         "S/(N+Plog^2N)"],
        rows,
        title="E4  Lemma 4.2 — V under crash-only failures: O(N + P log^2 N)",
    )
    emit("E4_lemma42_v_failstop", table)
    assert is_flat(dense_ratios, tolerance=4.0), dense_ratios
    assert is_flat(slack_ratios, tolerance=4.0), slack_ratios
    assert all(ratio <= 4.0 for ratio in dense_ratios + slack_ratios)
