"""Compare two ``BENCH_*.json`` reports for regressions.

Thin CLI over :mod:`repro.perf.regression`::

    PYTHONPATH=src python benchmarks/check_regression.py \
        benchmarks/results/BENCH_seed_perf.json \
        benchmarks/results/BENCH_ci.json

Model-level fields (solved, S, S', |F|, ticks) must match exactly —
they are deterministic, so any difference is a semantics change and an
error.  Wall-clock is banded: a point is flagged only when the
candidate exceeds ``baseline * (1 + --wall-tolerance)`` and the
baseline point was slow enough to measure (``--min-wall``).

Structural problems get named errors instead of per-point noise:
``backend-mismatch`` (reports timed different dispatch fabrics),
``scenario-missing`` / ``lane-mismatch`` (coverage lost wholesale), and
``model-tag-missing`` (the baseline's ``adversaries`` list names an
adversary absent from :mod:`repro.faults.registry`, so its fault model
cannot be reproduced by this build).

Exit status: 0 when clean, 1 on errors or perf warnings.  With
``--gate-model`` only model-level errors (and coverage gaps) fail the
check while wall-clock warnings stay informational — that is how CI
runs it: deterministic fields gate on any host, timings are advisory
across heterogeneous machines.  With ``--informational`` the comparison
is printed but the exit status is always 0.
"""

import argparse
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv=None) -> int:
    from repro.metrics.report import load_report
    from repro.perf.regression import (
        DEFAULT_MIN_WALL_S,
        DEFAULT_WALL_TOLERANCE,
        compare_reports,
    )

    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json reports with tolerance bands"
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--wall-tolerance", type=float, default=DEFAULT_WALL_TOLERANCE,
        help="relative wall-clock band: candidate may be up to "
             "(1 + this) x baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--min-wall", type=float, default=DEFAULT_MIN_WALL_S,
        help="ignore wall-clock of baseline points faster than this "
             "many seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--gate-model", action="store_true",
        help="fail only on model-field mismatches and coverage gaps; "
             "wall-clock warnings are printed but do not gate",
    )
    parser.add_argument(
        "--informational", action="store_true",
        help="print the comparison but always exit 0",
    )
    args = parser.parse_args(argv)

    report = compare_reports(
        load_report(args.baseline),
        load_report(args.candidate),
        wall_tolerance=args.wall_tolerance,
        min_wall_s=args.min_wall,
    )
    print(report.render())
    if args.informational:
        return 0
    if args.gate_model:
        return 0 if report.model_ok else 1
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
