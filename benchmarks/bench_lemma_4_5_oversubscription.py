"""E14 — Lemma 4.5: oversubscribed X (P > N).

    "if N <= P1 <= P2, then the work using P1 processors and the work
    using P2 processors relate as S_{N,P2} <= ceil(P2/P1) * S_{N,P1}"

— because processors whose PIDs agree modulo N follow identical paths.
We sweep P over multiples of N under a deterministic adversary and
check the scaling, plus the exact-duplication corollary failure-free.
"""

from _support import emit, once

from repro.core import AlgorithmX, solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: burst + failure-free
# specs per oversubscription multiple.
SCENARIO = get_scenario("E14_lemma45_oversubscription")
N = SCENARIO.specs[0].sizes[0]
MULTIPLES = sorted({spec.processors_for(N) // N for spec in SCENARIO.specs})
_BURST = {
    spec.processors_for(N) // N: spec
    for spec in SCENARIO.specs if "burst" in spec.name
}
_FREE = {
    spec.processors_for(N) // N: spec
    for spec in SCENARIO.specs if "free" in spec.name
}


def run_sweep():
    rows = []
    works = {}
    for multiple in MULTIPLES:
        p = multiple * N
        adversarial = solve_write_all(
            AlgorithmX(), N, p,
            adversary=_BURST[multiple].adversary_for(0),
            max_ticks=2_000_000,
        )
        free = solve_write_all(AlgorithmX(), N, p,
                               adversary=_FREE[multiple].adversary_for(0))
        assert adversarial.solved and free.solved
        works[multiple] = adversarial.completed_work
        rows.append([
            p, free.completed_work, adversarial.completed_work,
            round(adversarial.completed_work / works[1], 3), multiple,
        ])
    return rows, works


def test_oversubscription_scales_at_most_linearly(benchmark):
    rows, works = once(benchmark, run_sweep)
    table = render_table(
        ["P", "S free", "S burst", "S/S(P=N)", "ceil(P/N)"],
        rows,
        title=(
            f"E14  Lemma 4.5 — X at N={N} with P > N: "
            "S_{N,P} <= ceil(P/N) * S_{N,N}"
        ),
    )
    emit("E14_lemma45_oversubscription", table)
    for multiple in MULTIPLES:
        assert works[multiple] <= multiple * works[1] + 4 * multiple * N, (
            multiple, works
        )
    # Failure-free: PID-mod-N duplication makes the per-processor work
    # identical, so total work is exactly proportional.
    free_works = {row[4]: row[1] for row in rows}
    for multiple in MULTIPLES:
        assert free_works[multiple] == multiple * free_works[1]
