"""E10 — Corollaries 4.10 and 4.11: the overhead-ratio regimes.

sigma = S / (N + |F|) for the V+X algorithm:

* |F| <= P (Corollary 4.10):            sigma = O(log^2 N);
* |F| = Omega(N log N) (Corollary 4.11): sigma = O(log N);
* |F| = Omega(N^1.6):                    sigma = O(1).

"Thus the efficiency of our algorithm improves for large failure
patterns" — the measured sigma, normalized by each predicted bound,
must stay bounded, and raw sigma must *decrease* across the regimes.
"""

import math

from _support import emit, once

from repro.core import AlgorithmVX, solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: one spec per budget
# regime (the sigma bound per regime stays local to this script).
SCENARIO = get_scenario("E10_corollaries_sigma")
N = SCENARIO.specs[0].sizes[0]


def regimes(n):
    log_n = math.log2(n)
    bounds = [log_n ** 2, log_n, 1.0]
    labels = ["|F| <= P", "|F| ~ N log N", "|F| ~ N^1.6"]
    return [
        (label, spec.adversary.budget, bound)
        for label, spec, bound in zip(labels, SCENARIO.specs, bounds)
    ]


def run_sweep():
    rows = []
    sigmas = []
    for (label, budget, sigma_bound), spec in zip(regimes(N),
                                                  SCENARIO.specs):
        result = solve_write_all(
            AlgorithmVX(), N, N,
            adversary=spec.adversary_for(spec.seeds[0]),
            max_ticks=4_000_000,
        )
        assert result.solved
        sigma = result.overhead_ratio
        sigmas.append(sigma)
        rows.append([
            label, result.pattern_size, result.completed_work,
            round(sigma, 3), round(sigma_bound, 1),
            round(sigma / sigma_bound, 3),
        ])
    return rows, sigmas


def test_sigma_improves_with_failure_volume(benchmark):
    rows, sigmas = once(benchmark, run_sweep)
    table = render_table(
        ["regime", "|F|", "S", "sigma", "bound", "sigma/bound"],
        rows,
        title=(
            f"E10  Corollaries 4.10/4.11 — V+X at N=P={N}: sigma across "
            "failure-volume regimes"
        ),
    )
    emit("E10_corollaries_sigma", table)
    # sigma decreases as the pattern grows.
    assert sigmas[0] >= sigmas[1] >= sigmas[2]
    # And each regime respects its bound (generous constant).
    for row in rows:
        assert row[5] <= 6.0, row
