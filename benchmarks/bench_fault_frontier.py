"""R1–R4 — the scenario frontier: three fault models beyond KS91.

The driver scenarios ``R1_static_proc`` / ``R2_static_mem_routing`` /
``R3_pmem_checkpoint`` / ``R4_hetero_speed`` sweep these grids through
the parallel engine; this bespoke file regenerates the headline claim
of each model axis as a measured table and asserts it:

* **Static faults** (Chlebus–Gasieniec–Pelc): a seeded 25% of the
  processors die at tick 1 forever, and a seeded 25% of the Write-All
  cells are dead — writes vanish, reads return the poison sentinel.
  Algorithm X finishes on the survivors; the fault-aware ``froute``
  variant verifies every write by read-back and routes its certificate
  through an acknowledgement region, so it completes even when the
  array itself lies.  Correctness is checked against the ideal oracle
  on the *live* cells (CGP's problem statement).
* **Persistent memory** (Blelloch et al. PPM): checkpointing private
  state every ``interval`` completed cycles makes a restarted processor
  resume from its checkpoint instead of from scratch — the Theorem 4.3
  restart re-entry term collapses once checkpoints amortize.
* **Heterogeneous speeds** (Zavou & Fernández Anta): class-k processors
  advance every k-th tick.  Stalls are not failures — |F| stays 0 —
  but parallel time stretches.
"""

from _support import emit, once

from repro.core import AlgorithmX, solve_write_all
from repro.core.problem import verify_solution
from repro.experiments.bench import get_scenario
from repro.faults import NoFailures, SpeedClassAdversary
from repro.metrics.tables import render_table
from repro.pram.memory import POISON, MemoryReader
from repro.simulation import CheckpointPolicy, PersistentSimulator
from repro.simulation.programs import prefix_sum_program

R1 = get_scenario("R1_static_proc")
R2 = get_scenario("R2_static_mem_routing")
R3 = get_scenario("R3_pmem_checkpoint")
R4 = get_scenario("R4_hetero_speed")

MAX_TICKS = 2_000_000


def run_static_faults():
    rows = []
    for scenario, label in ((R1, "dead procs"), (R2, "dead procs+cells")):
        spec = scenario.specs[0]
        algorithm = spec.algorithm
        for n in spec.sizes:
            seed = spec.seeds[0]
            result = solve_write_all(
                algorithm(), n, n,
                adversary=spec.adversary_for(seed),
                max_ticks=MAX_TICKS,
            )
            assert result.solved, f"{spec.name} unsolved at N={n}"
            dead = result.memory.faulty_addresses()
            x_dead = [a for a in sorted(dead)
                      if result.layout.x_base <= a
                      < result.layout.x_base + n]
            # Differential check against the ideal oracle: every live
            # cell written, every dead cell still poisoned (no write
            # ever landed).
            reader = MemoryReader(result.memory)
            assert verify_solution(reader, result.layout.x_base, n,
                                   skip=dead)
            assert all(reader.read(a) == POISON for a in x_dead)
            rows.append([
                spec.name, n, len(x_dead), result.parallel_time,
                result.completed_work, result.pattern_size,
            ])
    return rows


def test_static_faults_survivors_route_around_dead_cells(benchmark):
    rows = once(benchmark, run_static_faults)
    emit("R12_static_faults", render_table(
        ["sweep", "N", "dead x-cells", "ticks", "S", "|F|"],
        rows,
        title="R1/R2  CGP static faults — 25% dead processors, and for "
              "froute also 25% dead cells (verified on live cells)",
    ))
    # The fault-aware variant really had dead cells to route around.
    assert any(row[0].startswith("froute") and row[2] > 0 for row in rows)


def run_checkpoints():
    spec = R3.specs[0]
    n = spec.sizes[0]
    p = spec.processors
    seed = spec.seeds[0]
    intervals = [r.interval for r in (s.runner for s in R3.specs)]
    rows, work, memories = [], {}, {}
    for interval in intervals:
        policy = CheckpointPolicy(interval)
        simulator = PersistentSimulator(
            p, adversary=spec.adversary_for(seed), checkpoint=policy,
        )
        result = simulator.execute(prefix_sum_program(n), list(range(n)))
        assert result.solved
        work[interval] = result.ledger.completed_work
        memories[interval] = list(result.memory)
        rows.append([
            interval, result.ledger.completed_work,
            result.ledger.pattern_size, policy.checkpoints,
            policy.cycles_replayed,
        ])
    return rows, work, memories


def test_checkpoints_collapse_restart_reentry_work(benchmark):
    rows, work, memories = once(benchmark, run_checkpoints)
    emit("R3_pmem_checkpoint", render_table(
        ["ckpt interval", "S", "|F|", "checkpoints", "cycles replayed"],
        rows,
        title="R3  PPM checkpoints — restart re-entry work vs "
              "checkpoint frequency (prefix-sum N=8, P=4)",
    ))
    # Checkpointing never changes the answer…
    baseline = memories[0]
    assert all(mem == baseline for mem in memories.values())
    # …and some amortized interval beats re-entering from scratch.
    assert min(work[i] for i in work if i > 0) < work[0]


def run_speed_classes():
    spec = R4.specs[0]
    rows, ticks = [], {}
    for name, adversary in (
        ("speed-classes", SpeedClassAdversary(seed=0)),
        ("uniform", NoFailures()),
    ):
        for n in spec.sizes:
            result = solve_write_all(
                AlgorithmX(), n, n, adversary=adversary,
                max_ticks=MAX_TICKS,
            )
            assert result.solved
            assert result.pattern_size == 0, "stalls must not enter F"
            ticks[(name, n)] = result.parallel_time
            rows.append([
                name, n, result.parallel_time, result.completed_work,
                result.pattern_size,
            ])
    return rows, ticks, spec.sizes


def test_speed_classes_cost_time_not_pattern_size(benchmark):
    rows, ticks, sizes = once(benchmark, run_speed_classes)
    emit("R4_hetero_speed", render_table(
        ["adversary", "N", "ticks", "S", "|F|"],
        rows,
        title="R4  heterogeneous speeds — class-k processors advance "
              "every k-th tick (X, P=N)",
    ))
    for n in sizes:
        assert ticks[("speed-classes", n)] > ticks[("uniform", n)]
