"""E5 — Theorem 4.3: algorithm V with restarts,
S = O(N + P log^2 N + M log N).

N is fixed and the adversary's failure/restart budget M sweeps across
decades; the measured work must track the bound — in particular the
marginal work per pattern event stays O(log N).
"""

from _support import emit, once

from repro.core import AlgorithmV, solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.bounds import work_upper_thm43
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: one spec per budget.
SCENARIO = get_scenario("E5_thm43_v_restarts")
N = SCENARIO.specs[0].sizes[0]
BUDGETS = [spec.adversary.budget for spec in SCENARIO.specs]
SEED = SCENARIO.specs[0].seeds[0]


def run_sweep():
    rows, ratios = [], []
    for spec, budget in zip(SCENARIO.specs, BUDGETS):
        result = solve_write_all(
            AlgorithmV(), N, N, adversary=spec.adversary(SEED),
            max_ticks=4_000_000,
        )
        assert result.solved
        m = result.pattern_size
        bound = work_upper_thm43(N, N, m)
        ratio = result.completed_work / bound
        ratios.append(ratio)
        rows.append([
            budget, m, result.completed_work, int(bound), round(ratio, 3),
        ])
    return rows, ratios


def test_v_restart_work_tracks_theorem_4_3(benchmark):
    rows, ratios = once(benchmark, run_sweep)
    table = render_table(
        ["budget", "|F|", "S", "N+Plog^2N+Mlog N", "ratio"],
        rows,
        title=(
            f"E5  Theorem 4.3 — V with restarts at N=P={N}: work per "
            "failure event is O(log N)"
        ),
    )
    emit("E5_thm43_v_restarts", table)
    assert all(ratio <= 4.0 for ratio in ratios), ratios
    # Work grows with the realized pattern, as the M-term predicts.
    works = [row[2] for row in rows]
    assert works[0] <= works[-1]
