"""E3 — Theorem 3.2: the matching Theta(N log N) upper bound.

Under the unit-cost-snapshot assumption, the oblivious balanced
reassignment algorithm completes Write-All in Theta(N log N) against
the optimal (halving) adversary: the measured ratio S / (N log N) must
stay flat as N doubles.
"""

import math

from _support import emit, once

from repro.core import SnapshotAlgorithm, solve_write_all
from repro.experiments.bench import get_scenario
from repro.faults import HalvingAdversary, NoFailures
from repro.metrics.fitting import is_flat
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry (halving + failure-free).
SCENARIO = get_scenario("E3_thm32_snapshot")
SIZES = list(SCENARIO.specs[0].sizes)


def run_sweep():
    rows, ratios = [], []
    for n in SIZES:
        adversarial = solve_write_all(
            SnapshotAlgorithm(), n, n, adversary=HalvingAdversary(),
            max_ticks=2_000_000,
        )
        free = solve_write_all(SnapshotAlgorithm(), n, n,
                               adversary=NoFailures())
        assert adversarial.solved and free.solved
        ratio = adversarial.completed_work / (n * math.log2(n))
        ratios.append(ratio)
        rows.append([
            n, free.completed_work, adversarial.completed_work,
            round(ratio, 3), adversarial.parallel_time,
        ])
    return rows, ratios


def test_snapshot_is_theta_n_log_n(benchmark):
    rows, ratios = once(benchmark, run_sweep)
    table = render_table(
        ["N=P", "S(no failures)", "S(halving)", "S/(N log N)", "ticks"],
        rows,
        title=(
            "E3  Theorem 3.2 — snapshot algorithm under the halving "
            "adversary: Theta(N log N)"
        ),
    )
    emit("E3_thm32_snapshot", table)
    assert is_flat(ratios, tolerance=3.0), (
        f"S/(N log N) should flatten, got {ratios}"
    )
    assert all(0.4 <= ratio <= 8.0 for ratio in ratios)
