"""Unified benchmark driver.

Runs the registered benchmark scenarios (see
``repro.experiments.bench``) through the parallel sweep engine and
writes a machine-readable ``BENCH_<tag>.json`` report plus the usual
text tables.  This is a thin wrapper over ``python -m repro bench`` so
the two entry points cannot diverge::

    PYTHONPATH=src python benchmarks/driver.py --workers 4 --tag nightly
    python benchmarks/driver.py --list
    python benchmarks/driver.py --scenarios E1_thrashing,E2_thm31_lower_bound
    python benchmarks/driver.py --scenarios E1_thrashing --profile bench.prof

``--profile PATH`` (driver-level, not forwarded to the CLI) wraps the
whole run in cProfile via :mod:`repro.perf.profile_hook` — the quickest
way to see where scenario time goes after a core change.

All other flags are forwarded to ``repro bench`` verbatim — including
the chaos-injection flags (``--chaos-seed`` plus
``--chaos-crash/-stall/-error/-corrupt``), so a benchmark run can be
exercised under deterministic fault injection; chaos stays strictly
opt-in and the recovery accounting (retries, crashes, pool restarts,
corrupt cache entries) lands in the report's per-sweep ``stats``.

The report schema is documented in ``repro.metrics.report`` and
``docs/EXPERIMENT_ENGINE.md``.  A second run with the same cache
directory is served entirely from cache (100% hit rate), which is what
makes regenerating the full suite cheap after a partial change.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def _split_profile(argv):
    """Extract ``--profile PATH`` / ``--profile=PATH`` from ``argv``."""
    profile_path = None
    forwarded = []
    position = 0
    while position < len(argv):
        token = argv[position]
        if token == "--profile":
            if position + 1 >= len(argv):
                raise SystemExit("--profile needs a PATH argument")
            profile_path = argv[position + 1]
            position += 2
            continue
        if token.startswith("--profile="):
            profile_path = token.split("=", 1)[1]
            position += 1
            continue
        forwarded.append(token)
        position += 1
    return profile_path, forwarded


def main(argv=None) -> int:
    from repro.cli import main as repro_main
    from repro.perf.profile_hook import maybe_profile

    arguments = list(sys.argv[1:] if argv is None else argv)
    profile_path, forwarded = _split_profile(arguments)
    with maybe_profile(profile_path):
        return repro_main(["bench"] + forwarded)


if __name__ == "__main__":
    sys.exit(main())
