"""Unified benchmark driver.

Runs the registered benchmark scenarios (see
``repro.experiments.bench``) through the parallel sweep engine and
writes a machine-readable ``BENCH_<tag>.json`` report plus the usual
text tables.  This is a thin wrapper over ``python -m repro bench`` so
the two entry points cannot diverge::

    PYTHONPATH=src python benchmarks/driver.py --workers 4 --tag nightly
    python benchmarks/driver.py --list
    python benchmarks/driver.py --scenarios E1_thrashing,E2_thm31_lower_bound

The report schema is documented in ``repro.metrics.report`` and
``docs/EXPERIMENT_ENGINE.md``.  A second run with the same cache
directory is served entirely from cache (100% hit rate), which is what
makes regenerating the full suite cheap after a partial change.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv=None) -> int:
    from repro.cli import main as repro_main

    return repro_main(["bench"] + list(sys.argv[1:] if argv is None
                                       else argv))


if __name__ == "__main__":
    sys.exit(main())
