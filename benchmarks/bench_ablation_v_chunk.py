"""A2 — ablation: algorithm V's elements-per-leaf factor.

The [KS 89] design hangs log N array elements off each progress-tree
leaf.  This ablation sweeps the chunk factor from 1 (a leaf per
element: maximal tree, allocation overhead dominates) to N (a single
leaf: no parallelism in the tree, one processor's assignment covers
everything).  The paper's ~log N choice balances the two; measured work
should be U-shaped in the chunk size.
"""

import math

from _support import emit, once

from repro.core import solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: one spec per chunk
# factor (8 = next_power_of_two(log2 256) = the default).
SCENARIO = get_scenario("A2_v_chunk")
N = SCENARIO.specs[0].sizes[0]
CHUNKS = [spec.algorithm.keywords["chunk"] for spec in SCENARIO.specs]


def run_sweep():
    rows = []
    works = {}
    for spec, chunk in zip(SCENARIO.specs, CHUNKS):
        result = solve_write_all(
            spec.algorithm(), N, spec.processors_for(N),
            adversary=spec.adversary_for(spec.seeds[0]),
            max_ticks=4_000_000,
        )
        assert result.solved, chunk
        works[chunk] = result.completed_work
        rows.append([
            chunk, N // chunk, result.completed_work, result.parallel_time,
        ])
    return rows, works


def test_log_n_chunk_is_the_sweet_spot(benchmark):
    rows, works = once(benchmark, run_sweep)
    default_chunk = 8  # next power of two >= log2(N)
    table = render_table(
        ["chunk", "leaves", "S", "ticks"],
        rows,
        title=(
            f"A2  ablation — V's elements-per-leaf at N={N}, P={N // 4} "
            f"(paper's choice: ~log N = {int(math.log2(N))} -> {default_chunk})"
        ),
    )
    emit("A2_v_chunk", table)
    # The ~log N regime beats both extremes.
    assert works[default_chunk] <= works[1]
    assert works[default_chunk] <= works[N]
