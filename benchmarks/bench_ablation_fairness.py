"""A3 — ablation: the machine's optional fairness window.

The reproduction surfaced a model subtlety (see DESIGN.md): the progress
condition alone admits adversaries that complete only repeatable
read-only cycles.  The machine's opt-in ``fairness_window=K`` formalizes
the "eventual progress" reading — a processor interrupted K consecutive
times gets its next cycle forced through.

This ablation runs V+X under the iteration starver across windows and
shows (a) X-design immunity means V+X terminates even with fairness off,
and (b) smaller windows buy shorter runs at the cost of more forced
vetoes — quantifying what the implicit assumption is worth.
"""

from _support import emit, once

from repro.core import AlgorithmVX, solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: one spec per window.
SCENARIO = get_scenario("A3_fairness")
N = SCENARIO.specs[0].sizes[0]
WINDOWS = [spec.fairness_window for spec in SCENARIO.specs]


def run_sweep():
    rows = []
    ticks = {}
    for spec, window in zip(SCENARIO.specs, WINDOWS):
        result = solve_write_all(
            AlgorithmVX(), N, N,
            adversary=spec.adversary_for(spec.seeds[0]),
            max_ticks=2_000_000, fairness_window=window,
        )
        assert result.solved
        ticks[window] = result.parallel_time
        rows.append([
            "off" if window is None else window,
            result.parallel_time, result.completed_work,
            result.pattern_size, result.ledger.fairness_vetoes,
        ])
    return rows, ticks


def test_fairness_trades_vetoes_for_time(benchmark):
    rows, ticks = once(benchmark, run_sweep)
    table = render_table(
        ["window", "ticks", "S", "|F|", "fairness vetoes"],
        rows,
        title=(
            f"A3  ablation — fairness window vs the iteration starver "
            f"(V+X, N=P={N})"
        ),
    )
    emit("A3_fairness", table)
    # Termination everywhere (X's design), faster with a tight window.
    assert ticks[1] <= ticks[None]
