"""Distributed-fabric scaling benchmark: 1 vs 4 workers, one host.

Measures sweep *throughput* (points per second) through the remote
backend as the worker fleet grows, and writes the committed
``BENCH_distributed_perf.json`` baseline the issue's acceptance gate
reads (>= 3x at 4 workers vs 1).

The sweep pins per-point latency with ``point_floor_s`` — each point
sleeps out the remainder after its (tiny) model run — so what is being
measured is the fabric's *dispatch concurrency*: N workers hold N
leases at once, exactly like N restartable processors each holding one
Write-All cell.  Without the floor, a 1-core CI host would serialize
the model work itself and the measurement would gate on the runner's
core count instead of on the scheduler.  The floor is model-invisible:
the report's model fields (solved, S, S', |F|, ticks) are identical
across legs and are what ``check_regression.py --gate-model`` compares.

Each leg gets a fresh cacheless server and its own fleet, so no result
reuse can flatter the scaling::

    PYTHONPATH=src python benchmarks/distributed_perf.py \
        --tag distributed --out benchmarks/results
"""

import argparse
import json
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Per-point latency floor (seconds).  High enough to swamp dispatch
#: overhead (~ms per lease round-trip), low enough that the whole
#: benchmark stays under a minute.
POINT_FLOOR_S = 0.25

#: Points per leg: 24 divides evenly across both fleets (24 and 6 full
#: waves), so neither leg pays a ragged final wave.
SEEDS = 24

#: Fleet sizes compared; the acceptance gate reads the first and last.
FLEETS = (1, 4)


def build_spec(floor_s: float = POINT_FLOOR_S, seeds: int = SEEDS):
    from repro.core import AlgorithmX
    from repro.experiments import SweepSpec
    from repro.experiments.factories import FailureFree

    # The smallest model run the engine accepts: the measured quantity
    # is the floor (dispatch concurrency), and any serialized CPU per
    # point erodes the scaling signal on a small host.
    return SweepSpec(
        name="dist-scaling",
        algorithm=AlgorithmX,
        sizes=(8,),
        processors=4,
        adversary=FailureFree(),
        seeds=range(seeds),
        max_ticks=200_000,
        point_floor_s=floor_s,
    )


def _wait_for_fleet(server, workers: int, timeout_s: float = 60.0) -> None:
    """Block until every worker has registered with the daemon.

    Interpreter boot (N python processes starting on a possibly 1-core
    host) is fleet provisioning, not dispatch throughput; timing starts
    once the fleet is actually serving.
    """
    from repro.experiments.serve import fetch_status

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if fetch_status(server.address)["workers"] >= workers:
            return
        time.sleep(0.05)
    raise SystemExit(
        f"fleet of {workers} never finished registering "
        f"within {timeout_s:.0f}s"
    )


def run_leg(workers: int, floor_s: float, seeds: int):
    """One fleet size: fresh server, fresh workers, no caches anywhere."""
    from repro.experiments import run_sweep_parallel
    from repro.experiments.serve import SweepServer
    from repro.experiments.worker import spawn_worker

    spec = build_spec(floor_s, seeds)
    server = SweepServer(port=0)  # no cache_dir: every leg executes all
    server.start()
    fleet = []
    try:
        fleet = [
            spawn_worker(server.address, name=f"w{index}")
            for index in range(workers)
        ]
        _wait_for_fleet(server, workers)
        started = time.perf_counter()
        result = run_sweep_parallel(
            spec, backend=f"remote:{server.address}",
        )
        wall_s = time.perf_counter() - started
    finally:
        for process in fleet:
            process.terminate()
        for process in fleet:
            try:
                process.wait(timeout=10)
            except Exception:
                process.kill()
        server.stop()
    if result.failures:
        raise SystemExit(
            f"leg with {workers} worker(s) had failures: {result.failures}"
        )
    return result, wall_s


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--tag", default="distributed")
    parser.add_argument("--out", default="benchmarks/results")
    parser.add_argument("--floor", type=float, default=POINT_FLOOR_S,
                        help="per-point latency floor, seconds")
    parser.add_argument("--seeds", type=int, default=SEEDS,
                        help="points per leg")
    args = parser.parse_args(argv)

    from repro.metrics.report import bench_report, dump_report, sweep_section

    legs = {}
    sections = []
    serial_points = None
    for workers in FLEETS:
        print(f"[dist] {args.seeds} points, floor {args.floor:.2f}s, "
              f"{workers} worker(s)...", flush=True)
        result, wall_s = run_leg(workers, args.floor, args.seeds)
        throughput = len(result.points) / wall_s
        legs[workers] = {
            "workers": workers,
            "points": len(result.points),
            "wall_s": round(wall_s, 3),
            "throughput_points_per_s": round(throughput, 3),
        }
        print(f"[dist]   {wall_s:.2f}s wall, "
              f"{throughput:.2f} points/s", flush=True)
        if serial_points is None:
            serial_points = result.points
        elif result.points != serial_points:
            raise SystemExit(
                "model results differ across fleet sizes — the fabric "
                "is not bit-identical"
            )
        section = sweep_section(result)
        section["name"] = f"dist/remote-w{workers}"
        sections.append(section)

    first, last = FLEETS[0], FLEETS[-1]
    speedup = (legs[last]["throughput_points_per_s"]
               / legs[first]["throughput_points_per_s"])
    print(f"[dist] throughput scaling {first} -> {last} workers: "
          f"{speedup:.2f}x", flush=True)

    scenario = {
        "tag": "DIST_scaling",
        "title": f"remote-backend sweep throughput, {first} vs {last} "
                 f"local workers (point floor {args.floor:.2f}s)",
        "source": "benchmarks/distributed_perf.py",
        "wall_s": round(sum(leg["wall_s"] for leg in legs.values()), 6),
        "cache": {"hits": 0, "executed": sum(
            leg["points"] for leg in legs.values()
        ), "failed": 0, "hit_rate": 0.0},
        "sweeps": sections,
    }
    report = bench_report(args.tag, [scenario], workers=last,
                          backend="remote")
    # Scaling summary for humans and for the committed-baseline test;
    # extra top-level keys are schema-tolerated.
    report["distributed"] = {
        "point_floor_s": args.floor,
        "legs": [legs[workers] for workers in FLEETS],
        "throughput_speedup": round(speedup, 3),
    }
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{args.tag}_perf.json"
    dump_report(report, str(path))
    print(f"[dist] report written: {path}", flush=True)
    print(json.dumps(report["distributed"], indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
