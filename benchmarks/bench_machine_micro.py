"""E13 — simulator micro-benchmarks (wall-clock, not model work).

These measure the host cost of simulating one processor-tick, which is
what bounds the instance sizes every other experiment can afford.  They
are the only benchmarks here where wall-clock time is the point.
"""

from _support import emit

from repro.core import AlgorithmVX, AlgorithmX, solve_write_all
from repro.experiments.bench import EXCLUDED
from repro.faults import NoFailures, RandomAdversary
from repro.metrics.tables import render_table

# Bespoke benchmark: not an engine-runnable sweep grid.  The driver's
# registry records why (and this assert keeps the record honest).
SCENARIO = None
assert "bench_machine_micro.py" in EXCLUDED


def test_x_failure_free_throughput(benchmark):
    def run():
        return solve_write_all(AlgorithmX(), 256, 64, adversary=NoFailures())

    result = benchmark(run)
    assert result.solved


def test_x_under_churn_throughput(benchmark):
    def run():
        return solve_write_all(
            AlgorithmX(), 128, 128,
            adversary=RandomAdversary(0.1, 0.3, seed=1),
            max_ticks=500_000,
        )

    result = benchmark(run)
    assert result.solved


def test_vx_throughput(benchmark):
    def run():
        return solve_write_all(AlgorithmVX(), 128, 128)

    result = benchmark(run)
    assert result.solved


def test_report_processor_cycle_rate(benchmark):
    """Estimate simulated processor-cycles per wall-clock second."""

    def run():
        return solve_write_all(
            AlgorithmX(), 256, 256,
            adversary=RandomAdversary(0.05, 0.3, seed=2),
            max_ticks=500_000,
        )

    result = benchmark(run)
    assert result.solved
    stats = benchmark.stats.stats
    cycles = result.charged_work
    rate = cycles / stats.mean
    table = render_table(
        ["charged cycles", "mean seconds", "cycles/second"],
        [[cycles, round(stats.mean, 4), int(rate)]],
        title="E13  simulator throughput (host wall-clock)",
    )
    emit("E13_machine_micro", table)
