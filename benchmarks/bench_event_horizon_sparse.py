"""A7 — event-horizon batching under sparse offline schedules.

The machine's fast-forward loop asks the adversary for an event horizon
(`quiet_until`) and batches every provably-quiet tick through a fused
inner loop.  A sparse `ScheduledAdversary` — a handful of fail/restart
pairs hundreds of ticks apart — is the regime that batching targets.
This benchmark runs the same sweep with fast-forward on and off and
asserts the paper-model outputs (S, S', |F|, ticks) are identical:
batching is a wall-clock optimization, never a semantics change.
"""

from _support import emit, once

from repro.core import AlgorithmX, solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.tables import render_table

# Grid constants come from the driver's scenario registry so the
# pytest benchmark and `repro bench` measure the same sweep.
SCENARIO = get_scenario("A7_horizon_sparse")
FF_SPEC = SCENARIO.specs[0]
SIZES = list(FF_SPEC.sizes)
SEEDS = list(FF_SPEC.seeds)


def run_sweep():
    rows = []
    for n in SIZES:
        p = FF_SPEC.processors_for(n)
        for seed in SEEDS:
            outcomes = {}
            for fast_forward in (True, False):
                result = solve_write_all(
                    AlgorithmX(), n, p,
                    adversary=FF_SPEC.adversary(seed),
                    max_ticks=FF_SPEC.max_ticks,
                    fast_forward=fast_forward,
                )
                assert result.solved
                outcomes[fast_forward] = (
                    result.completed_work, result.charged_work,
                    result.pattern_size, result.ledger.ticks,
                )
            assert outcomes[True] == outcomes[False], (
                f"fast-forward changed the model at N={n}, seed={seed}: "
                f"{outcomes[True]} != {outcomes[False]}"
            )
            s, s_prime, pattern, ticks = outcomes[True]
            rows.append([n, p, seed, ticks, s, s_prime, pattern])
    return rows


def test_fast_forward_is_model_invisible(benchmark):
    rows = once(benchmark, run_sweep)
    table = render_table(
        ["N", "P", "seed", "ticks", "S", "S'", "|F|"],
        rows,
        title="A7  Sparse offline schedules — ff on/off agree on every point",
    )
    emit("A7_horizon_sparse", table)
    assert len(rows) == len(SIZES) * len(SEEDS)
