"""A8 — adaptive dispatch on the small sizes where forced vec lost.

PR 7's vectorized lane loses to the scalar compiled lane on
short-window/small-P runs (X@512 under sched-sparse ran ~0.3x).  The
``--lane auto`` cost model must notice and stay scalar there — and
because both lanes are bit-identical by the differential contract, the
paper-model outputs (S, S', |F|, ticks) of an auto run must equal the
scalar run's exactly on every point.  This benchmark asserts that
model identity on the registry's small-size grid; the wall-clock side
(auto >= 0.95x scalar) is gated by the committed
``BENCH_adaptive_perf.json`` baseline in CI.
"""

from _support import emit, once

from repro.core import solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.tables import render_table

# Grid constants come from the driver's scenario registry so the
# pytest benchmark and `repro bench` measure the same sweep.
SCENARIO = get_scenario("A8_adaptive_smallsize")
# Specs come in (scalar, auto) pairs per algorithm label.
PAIRS = [
    (SCENARIO.specs[i], SCENARIO.specs[i + 1])
    for i in range(0, len(SCENARIO.specs), 2)
]


def run_sweep():
    rows = []
    for scalar_spec, auto_spec in PAIRS:
        assert scalar_spec.vectorized is False
        assert auto_spec.vectorized == "auto"
        label = scalar_spec.name.split("@", 1)[0]
        for n in scalar_spec.sizes:
            p = scalar_spec.processors_for(n)
            for seed in scalar_spec.seeds:
                outcomes = {}
                for mode, spec in (("scalar", scalar_spec),
                                   ("auto", auto_spec)):
                    result = solve_write_all(
                        spec.algorithm(), n, p,
                        adversary=spec.adversary_for(seed),
                        max_ticks=spec.max_ticks,
                        vectorized=spec.vectorized,
                    )
                    assert result.solved
                    outcomes[mode] = (
                        result.completed_work, result.charged_work,
                        result.pattern_size, result.ledger.ticks,
                    )
                assert outcomes["auto"] == outcomes["scalar"], (
                    f"adaptive dispatch changed the model for {label} "
                    f"at N={n}, seed={seed}: "
                    f"{outcomes['auto']} != {outcomes['scalar']}"
                )
                s, s_prime, pattern, ticks = outcomes["auto"]
                rows.append([label, n, p, seed, ticks, s, s_prime, pattern])
    return rows


def test_auto_lane_is_model_invisible_at_small_sizes(benchmark):
    rows = once(benchmark, run_sweep)
    table = render_table(
        ["algo", "N", "P", "seed", "ticks", "S", "S'", "|F|"],
        rows,
        title="A8  Small sizes, sparse schedule — auto/scalar agree on "
              "every point",
    )
    emit("A8_adaptive_smallsize", table)
    assert len(rows) == len(PAIRS)
