"""E11 — Theorem 4.1 and Corollary 4.12: robust execution of real
PRAM programs.

Theorem 4.1: each simulated N-processor step runs with overhead ratio
O(log^2 N) on the restartable fail-stop machine.  Corollary 4.12: with
P <= N / log^2 N simulating processors and O(N / log N) failures per
step, the execution is work-optimal — S = O(tau * N) for a tau-step
program.

We execute prefix-sum, max-find and odd-even sort through the iterated
Write-All executor (algorithm V+X) under a budgeted adversary, verify
the computed results, and report per-step sigma and total work against
tau * N.
"""

import math
import random

from _support import emit, once

from repro.core import AlgorithmVX
from repro.experiments.bench import EXCLUDED
from repro.faults import FailureBudgetAdversary, RandomAdversary
from repro.metrics.tables import render_table

# Bespoke benchmark: not an engine-runnable sweep grid.  The driver's
# registry records why (and this assert keeps the record honest).
SCENARIO = None
assert "bench_theorem_4_1_simulation.py" in EXCLUDED
from repro.simulation import RobustSimulator
from repro.simulation.programs import (
    max_find_program,
    odd_even_sort_program,
    prefix_sum_program,
)

N_SIM = 64


def build_workloads():
    rng = random.Random(7)
    data = [rng.randint(0, 99) for _ in range(N_SIM)]
    return [
        ("prefix-sum", prefix_sum_program(N_SIM), list(data),
         lambda memory: memory[:N_SIM] == [
             sum(data[: i + 1]) for i in range(N_SIM)
         ]),
        ("max-find", max_find_program(N_SIM), list(data),
         lambda memory: memory[N_SIM] == max(data)),
        ("odd-even-sort", odd_even_sort_program(N_SIM), list(data),
         lambda memory: memory[:N_SIM] == sorted(data)),
    ]


def run_sweep():
    log_n = math.log2(N_SIM)
    # N / log^2 N rounds to 1 at this size; keep at least two processors
    # so the adversary's failures are not all vetoed away.
    p = max(2, int(N_SIM // log_n ** 2))
    rows = []
    sigma_cap = log_n ** 2
    for label, program, initial, check in build_workloads():
        budget = int(len(program) * N_SIM / log_n)
        adversary = FailureBudgetAdversary(
            RandomAdversary(0.05, 0.4, seed=11), budget
        )
        simulator = RobustSimulator(
            p=p, algorithm=AlgorithmVX(), adversary=adversary
        )
        result = simulator.execute(program, initial)
        assert result.solved, label
        assert check(result.memory), f"{label}: wrong answer"
        tau = len(program)
        work_per_tau_n = result.total_work / (tau * N_SIM)
        rows.append([
            label, tau, result.total_work,
            round(work_per_tau_n, 3),
            result.total_pattern_size,
            round(result.max_step_overhead_ratio, 2),
            round(sigma_cap, 1),
        ])
    return rows, sigma_cap


def test_simulation_is_work_optimal_with_slack(benchmark):
    rows, sigma_cap = once(benchmark, run_sweep)
    table = render_table(
        ["program", "tau", "S total", "S/(tau*N)", "|F|", "max sigma/step",
         "log^2 N"],
        rows,
        title=(
            f"E11  Theorem 4.1 / Corollary 4.12 — programs of width "
            f"N={N_SIM} on P=N/log^2 N faulty processors"
        ),
    )
    emit("E11_thm41_simulation", table)
    for row in rows:
        # Work-optimality: S = O(tau * N) with a small constant.
        assert row[3] <= 16.0, row
        # Per-step overhead ratio O(log^2 N), generous constant.
        assert row[5] <= 6 * sigma_cap, row
