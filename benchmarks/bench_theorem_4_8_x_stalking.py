"""E7 — Theorem 4.8 (with Lemma 4.6): the stalked worst case of X.

The post-order stalking adversary forces S = Omega(N^{log2 3}) out of
algorithm X at P = N, and Lemma 4.6 caps any pattern at
O(N^{log2 3 + delta}).  The fitted log-log exponent of the measured work
must land in that band: >= ~1.585 (converging from above) and strictly
below quadratic.
"""

import math

from _support import emit, once

from repro.core import AlgorithmX, solve_write_all
from repro.experiments.bench import get_scenario
from repro.faults import StalkingAdversaryX
from repro.metrics.fitting import doubling_exponents, fitted_exponent
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry.
SCENARIO = get_scenario("E7_thm48_x_stalking")
SIZES = list(SCENARIO.specs[0].sizes)


def run_sweep():
    rows, works = [], []
    for n in SIZES:
        result = solve_write_all(
            AlgorithmX(), n, n, adversary=StalkingAdversaryX(),
            max_ticks=20_000_000,
        )
        assert result.solved
        works.append(result.completed_work)
        rows.append([
            n, result.completed_work,
            round(result.completed_work / n ** math.log2(3), 3),
            result.pattern_size, result.parallel_time,
        ])
    return rows, works


def test_stalked_x_hits_n_to_log3(benchmark):
    rows, works = once(benchmark, run_sweep)
    steps = doubling_exponents(SIZES, works)
    exponent = fitted_exponent(SIZES, works)
    table = render_table(
        ["N=P", "S", "S/N^1.585", "|F|", "ticks"],
        rows,
        title=(
            "E7  Theorem 4.8 — stalking adversary vs X: fitted exponent "
            f"{exponent:.3f} (target log2 3 = {math.log2(3):.3f}, "
            f"per-doubling {['%.3f' % step for step in steps]})"
        ),
    )
    emit("E7_thm48_x_stalking", table)
    assert exponent >= math.log2(3) - 0.1, exponent
    assert exponent < 2.0, exponent
    # Convergence from above: the per-doubling exponent decreases.
    assert steps[-1] <= steps[0]
    # Lower bound holds pointwise (up to a small constant).
    for n, work in zip(SIZES, works):
        assert work >= 0.5 * n ** math.log2(3)
