"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's claims (see DESIGN.md's
per-experiment index) as a measured table.  Tables are printed and also
written to ``benchmarks/results/<experiment>.txt`` so the recorded
numbers in EXPERIMENTS.md can be re-derived after any run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print(f"\n{text}\n")
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")


def once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments measure *model work* (completed update cycles), which
    is deterministic — repeating runs only costs wall-clock time.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1)
