"""E9 — Theorem 4.9: the interleaved V+X takes the min of both worlds.

Failure regimes at N = P:

* benign crash-only churn — the V term (N + P log^2 N + M log N) rules:
  V+X pays ~2x V, far below X's adversarial ceiling;
* random restarts — all three cope;
* each algorithm's tailored worst case — the iteration starver starves
  pure V forever (Section 4.1's non-termination), while the post-order
  stalker extracts ~N^{log 3} from X; V+X terminates under both with
  sub-quadratic work;
* thrashing — completed work stays tame for everyone that terminates.

The table is the paper's qualitative claim: who wins where, and that
V+X is never far from the per-regime winner while always terminating.
"""

from _support import emit, once

from repro.core import AlgorithmV, AlgorithmVX, AlgorithmX, solve_write_all
from repro.experiments.bench import get_scenario
from repro.faults import IterationStarver, StalkingAdversaryX
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: the universal-regime
# matrix (the tailored worst cases below stay bespoke — the starver
# run asserts non-termination).
SCENARIO = get_scenario("E9_thm49_combined")
N = SCENARIO.specs[0].sizes[0]
STARVER_TICKS = 30_000


def universal_regimes():
    regimes = []
    for spec in SCENARIO.specs:
        label, regime = spec.name.split("/", 1)
        if label != "V":  # one entry per regime, not per algorithm
            continue
        regimes.append(
            (regime, lambda spec=spec: spec.adversary_for(spec.seeds[0]))
        )
    return regimes


def run_matrix():
    rows = []
    outcome = {}
    algorithms = [AlgorithmV(), AlgorithmX(), AlgorithmVX()]
    for label, adversary_factory in universal_regimes():
        row = [label]
        for algorithm in algorithms:
            result = solve_write_all(
                algorithm, N, N, adversary=adversary_factory(),
                max_ticks=2_000_000,
            )
            outcome[(label, algorithm.name)] = result
            row.append(result.completed_work if result.solved else "DNF")
        rows.append(row)

    # Tailored worst cases.
    row = ["adversarial worst"]
    starved_v = solve_write_all(
        AlgorithmV(), N, N, adversary=IterationStarver(),
        max_ticks=STARVER_TICKS,
    )
    outcome[("worst", "V")] = starved_v
    row.append(starved_v.completed_work if starved_v.solved else "DNF")
    for algorithm in [AlgorithmX(), AlgorithmVX()]:
        result = solve_write_all(
            algorithm, N, N, adversary=StalkingAdversaryX(),
            max_ticks=20_000_000,
        )
        outcome[("worst", algorithm.name)] = result
        row.append(result.completed_work if result.solved else "DNF")
    rows.append(row)
    return rows, outcome


def test_vx_takes_the_min(benchmark):
    rows, outcome = once(benchmark, run_matrix)
    table = render_table(
        ["regime", "S(V)", "S(X)", "S(V+X)"],
        rows,
        title=(
            f"E9  Theorem 4.9 — V+X at N=P={N}: min{{V-bound, X-bound}} "
            "across regimes (DNF = starved within tick budget)"
        ),
    )
    emit("E9_thm49_combined", table)

    # V+X terminates in every regime.
    for label, _factory in universal_regimes():
        assert outcome[(label, "V+X")].solved, label
    assert outcome[("worst", "V+X")].solved

    # Benign regime: V+X pays at most a small multiple of V.
    benign_v = outcome[("crash2", "V")]
    benign_vx = outcome[("crash2", "V+X")]
    assert benign_v.solved
    assert benign_vx.completed_work <= 4 * benign_v.completed_work + 8 * N

    # Pure V is starved by the iteration starver (Section 4.1); its
    # completed work grew without reaching the goal.
    assert not outcome[("worst", "V")].solved
    assert outcome[("worst", "V")].completed_work > 4 * N

    # V+X under the stalker stays within a small multiple of pure X.
    stalked_x = outcome[("worst", "X")]
    stalked_vx = outcome[("worst", "V+X")]
    assert stalked_x.solved
    assert stalked_vx.completed_work <= 4 * stalked_x.completed_work + 8 * N
