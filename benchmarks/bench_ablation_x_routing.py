"""A1 — ablation: algorithm X's PID-bit routing rule.

The one non-trivial decision in X (Section 4.2, "this last case is
where the non-trivial decision is made") is how processors split when
*both* subtrees below them are unfinished: the PID bit at the node's
depth.  This ablation replaces it with always-left, always-right, and a
stateless random coin, and measures completed work with P processors
converging on a shrinking work pile (P = N, massive restart churn, so
processors repeatedly re-enter the tree together and must spread out).

Expected shape: PID routing partitions the processors evenly at every
level — the degenerate rules herd everyone into the same subtree and
pay more; the random coin is balanced on average but uncoordinated.
"""

from _support import emit, once

from repro.core import solve_write_all
from repro.experiments.bench import get_scenario
from repro.metrics.tables import render_table

# Shared with the driver's scenario registry: one spec per routing
# rule, the algorithm pre-bound via functools.partial.
SCENARIO = get_scenario("A1_x_routing")
N = SCENARIO.specs[0].sizes[0]
ROUTINGS = [spec.name.split("-", 1)[1] for spec in SCENARIO.specs]


def run_sweep():
    rows = []
    works = {}
    for spec, routing in zip(SCENARIO.specs, ROUTINGS):
        # Mass-restart churn forces repeated convergent descents, the
        # regime where the routing rule matters.
        result = solve_write_all(
            spec.algorithm(), N, N,
            adversary=spec.adversary_for(spec.seeds[0]),
            max_ticks=4_000_000,
        )
        assert result.solved, routing
        works[routing] = result.completed_work
        rows.append([
            routing, result.completed_work, result.parallel_time,
            result.pattern_size,
        ])
    return rows, works


def test_pid_routing_beats_degenerate_rules(benchmark):
    rows, works = once(benchmark, run_sweep)
    table = render_table(
        ["routing", "S", "ticks", "|F|"],
        rows,
        title=(
            f"A1  ablation — X's both-undone routing rule at N=P={N} "
            "under mass-restart churn"
        ),
    )
    emit("A1_x_routing", table)
    # The paper's PID rule is at least as good as herding rules.
    assert works["pid"] <= works["left"]
    assert works["pid"] <= works["right"]
