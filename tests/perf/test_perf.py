"""Unit tests for the :mod:`repro.perf` subsystem."""

from __future__ import annotations

import copy
import json

import pytest

from repro.metrics.report import validate_bench_report
from repro.perf.micro import (
    PERF_ADVERSARIES,
    PERF_ALGORITHMS,
    describe_comparison,
    perf_report,
    run_comparison,
)
from repro.perf.phases import PhaseCounters
from repro.pram.vectorized import HAVE_NUMPY
from repro.perf.regression import (
    DEFAULT_MIN_WALL_S,
    DEFAULT_WALL_TOLERANCE,
    compare_reports,
)
from repro.perf.timing import (
    TimingResult,
    time_callable,
    time_callables_interleaved,
)


class TestTimeCallable:
    def test_runs_warmup_plus_repeats(self):
        calls = {"count": 0}

        def func():
            calls["count"] += 1

        timing = time_callable(func, repeats=3, warmup=2)
        assert calls["count"] == 5
        assert len(timing.samples_s) == 3
        assert timing.warmup == 2

    def test_zero_warmup_is_legal(self):
        timing = time_callable(lambda: None, repeats=1, warmup=0)
        assert len(timing.samples_s) == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)

    def test_result_statistics(self):
        timing = TimingResult(samples_s=[0.2, 0.1, 0.4], warmup=1)
        assert timing.best_s == pytest.approx(0.1)
        assert timing.mean_s == pytest.approx(0.7 / 3)
        assert timing.spread == pytest.approx(3.0)


class TestTimeCallablesInterleaved:
    def test_round_robin_order(self):
        order = []
        timings = time_callables_interleaved(
            [lambda: order.append("a"), lambda: order.append("b")],
            repeats=3, warmup=1,
        )
        # Warmup runs each leg once, then the measured repeats strictly
        # alternate — that alternation is the whole point: slow host
        # drift hits both legs of a speedup ratio equally.
        assert order == ["a", "b", "a", "b", "a", "b", "a", "b"]
        assert [len(t.samples_s) for t in timings] == [3, 3]
        assert all(t.warmup == 1 for t in timings)

    def test_zero_warmup_is_legal(self):
        [timing] = time_callables_interleaved([lambda: None],
                                              repeats=1, warmup=0)
        assert len(timing.samples_s) == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            time_callables_interleaved([lambda: None], repeats=0)
        with pytest.raises(ValueError):
            time_callables_interleaved([lambda: None], warmup=-1)


class TestPhaseCounters:
    def test_total_and_merge(self):
        first = PhaseCounters(collect_s=1.0, resolve_s=0.5, ticks=10)
        second = PhaseCounters(adversary_s=0.25, settle_s=0.25, ticks=5)
        first.merge(second)
        assert first.total_s == pytest.approx(2.0)
        assert first.ticks == 15

    def test_as_dict_round_trips_through_json(self):
        counters = PhaseCounters(collect_s=0.123456789, ticks=3)
        payload = json.loads(json.dumps(counters.as_dict()))
        assert payload["collect_s"] == pytest.approx(0.123457)
        assert payload["ticks"] == 3

    def test_describe_with_and_without_time(self):
        assert "no phase time" in PhaseCounters(ticks=2).describe()
        counters = PhaseCounters(collect_s=3.0, settle_s=1.0, ticks=7)
        line = counters.describe()
        assert "collect 75.0%" in line
        assert "settle 25.0%" in line
        assert "ticks=7" in line


def _tiny_report(tag="base", wall_s=0.05, ticks=100, cached=False,
                 extra_point=None):
    points = [{
        "n": 64, "p": 8, "seed": 0, "solved": True,
        "S": 500, "S_prime": 510, "F": 0, "sigma": 6.9,
        "ticks": ticks, "wall_s": wall_s, "cached": cached,
    }]
    if extra_point is not None:
        points.append(extra_point)
    return {
        "schema": "repro-bench/1",
        "tag": tag,
        "created_unix": 0.0,
        "workers": 1,
        "scenarios": [{
            "tag": "PERF_micro",
            "title": "unit fixture",
            "source": "tests/perf/test_perf.py",
            "wall_s": wall_s,
            "cache": {"hits": 0, "executed": len(points), "failed": 0,
                      "hit_rate": 0.0},
            "sweeps": [{"name": "X/fast", "points": points,
                        "failures": []}],
        }],
        "totals": {"points": len(points), "executed": len(points),
                   "cache_hits": 0, "failed": 0, "wall_s": wall_s},
    }


class TestCompareReports:
    def test_identical_reports_are_ok(self):
        report = compare_reports(_tiny_report(), _tiny_report(tag="cand"))
        assert report.ok
        assert report.compared == 1
        assert "OK: no regressions" in report.render()

    def test_model_mismatch_is_error(self):
        report = compare_reports(
            _tiny_report(), _tiny_report(tag="cand", ticks=101)
        )
        assert not report.ok
        [finding] = report.errors
        assert finding.kind == "model-mismatch"
        assert "ticks" in finding.detail

    def test_wall_regression_is_warning_inside_band_is_ok(self):
        baseline = _tiny_report(wall_s=0.05)
        within = compare_reports(baseline, _tiny_report(wall_s=0.09))
        assert within.ok  # 1.8x < default 2x band
        above = compare_reports(baseline, _tiny_report(wall_s=0.15))
        assert not above.ok
        [finding] = above.warnings
        assert finding.kind == "wall-regression"

    def test_fast_baseline_points_are_never_banded(self):
        baseline = _tiny_report(wall_s=DEFAULT_MIN_WALL_S / 2)
        report = compare_reports(baseline, _tiny_report(wall_s=10.0))
        assert report.ok

    def test_cached_points_are_never_banded(self):
        baseline = _tiny_report(wall_s=0.05)
        report = compare_reports(
            baseline, _tiny_report(wall_s=10.0, cached=True)
        )
        assert report.ok

    def test_missing_point_is_error_new_point_is_info(self):
        extra = {
            "n": 128, "p": 16, "seed": 0, "solved": True,
            "S": 900, "S_prime": 910, "F": 0, "sigma": 6.3,
            "ticks": 150, "wall_s": 0.1, "cached": False,
        }
        bigger = _tiny_report(extra_point=extra)
        shrunk = compare_reports(bigger, _tiny_report(tag="cand"))
        assert not shrunk.ok
        [finding] = shrunk.errors
        assert finding.kind == "missing-point"
        grown = compare_reports(_tiny_report(), bigger)
        assert grown.ok
        kinds = [f.kind for f in grown.findings]
        assert kinds == ["new-point"]

    def test_missing_scenario_is_one_named_error(self):
        base = _tiny_report()
        cand = _tiny_report(tag="cand")
        cand["scenarios"][0]["tag"] = "PERF_other"
        report = compare_reports(base, cand)
        assert not report.ok
        missing = [f for f in report.errors if f.kind == "scenario-missing"]
        [finding] = missing
        assert "'PERF_micro'" in finding.detail
        # the scenario's points are not additionally reported one by one
        assert not any(
            f.kind == "missing-point" and f.key[0] == "PERF_micro"
            for f in report.findings
        )

    def test_missing_lane_is_one_named_error(self):
        # Baseline ran with --lane auto, candidate with the default
        # lane: one lane-mismatch error naming the lane, not a wall of
        # per-point missing errors.
        base = _tiny_report()
        auto_sweep = copy.deepcopy(base["scenarios"][0]["sweeps"][0])
        auto_sweep["name"] = "X/auto"
        base["scenarios"][0]["sweeps"].append(auto_sweep)
        report = compare_reports(base, _tiny_report(tag="cand"))
        assert not report.ok
        [finding] = report.errors
        assert finding.kind == "lane-mismatch"
        assert "'auto'" in finding.detail
        assert "--lane" in finding.detail
        assert not any(f.kind == "missing-point" for f in report.findings)
        # the shared fast lane still compared normally
        assert report.compared == 1

    def test_candidate_extra_lane_is_info(self):
        cand = _tiny_report(tag="cand")
        auto_sweep = copy.deepcopy(cand["scenarios"][0]["sweeps"][0])
        auto_sweep["name"] = "X/auto"
        cand["scenarios"][0]["sweeps"].append(auto_sweep)
        report = compare_reports(_tiny_report(), cand)
        assert report.ok
        kinds = [f.kind for f in report.findings]
        assert kinds == ["new-lane"]

    def test_laneless_sweep_names_fall_back_to_per_point_errors(self):
        # Experiment-driver sweeps have no /<mode> suffix, so there is
        # no lane notion to collapse into: a whole missing sweep is
        # still reported point by point.
        base = _tiny_report()
        base["scenarios"][0]["sweeps"][0]["name"] = "Xsweep"
        cand = _tiny_report(tag="cand")
        cand["scenarios"][0]["sweeps"][0]["name"] = "Ysweep"
        report = compare_reports(base, cand)
        kinds = sorted(f.kind for f in report.findings)
        assert kinds == ["missing-point", "new-point"]

    def test_malformed_record_names_scenario_not_keyerror(self):
        broken = _tiny_report()
        del broken["scenarios"][0]["sweeps"][0]["points"][0]["n"]
        with pytest.raises(ValueError, match="'PERF_micro'.*'n'"):
            compare_reports(broken, _tiny_report(tag="cand"))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(_tiny_report(), _tiny_report(),
                            wall_tolerance=-0.5)

    def test_default_tolerance_is_two_x(self):
        assert DEFAULT_WALL_TOLERANCE == 1.0

    def test_backend_mismatch_is_one_named_error(self):
        # Wall-clock from an in-process run vs a remote fleet times the
        # dispatch fabric, not the code: one named error, not spurious
        # wall-regression warnings.
        base = _tiny_report()
        base["backend"] = "serial"
        cand = _tiny_report(tag="cand", wall_s=10.0)
        cand["backend"] = "remote:127.0.0.1:7341"
        report = compare_reports(base, cand)
        assert not report.ok
        [finding] = [
            f for f in report.errors if f.kind == "backend-mismatch"
        ]
        assert "'serial'" in finding.detail
        assert "'remote:127.0.0.1:7341'" in finding.detail
        # Model comparison still proceeds alongside the named error.
        assert report.compared == 1

    def test_matching_or_absent_backend_keys_pass(self):
        # Same backend on both sides: no finding.  Legacy reports
        # (no backend key on either or one side) skip the check.
        both = _tiny_report(), _tiny_report(tag="cand")
        for report_dict in both:
            report_dict["backend"] = "pool"
        assert compare_reports(*both).ok
        legacy_base = _tiny_report()
        tagged_cand = _tiny_report(tag="cand")
        tagged_cand["backend"] = "remote:127.0.0.1:7341"
        assert compare_reports(legacy_base, tagged_cand).ok

    def test_model_tag_missing_is_one_named_error_per_name(self):
        # A baseline annotated with an adversary the registry no longer
        # knows measured a fault model this build cannot reproduce.
        base = _tiny_report()
        base["scenarios"][0]["adversaries"] = ["random", "gone-model"]
        report = compare_reports(base, _tiny_report(tag="cand"))
        assert not report.model_ok
        [finding] = [
            f for f in report.errors if f.kind == "model-tag-missing"
        ]
        assert "'gone-model'" in finding.detail
        # Registered names pass silently; point comparison proceeds.
        assert report.compared == 1

    def test_registered_adversaries_annotations_pass(self):
        base = _tiny_report()
        base["scenarios"][0]["adversaries"] = ["random", "static-mem"]
        assert compare_reports(base, _tiny_report(tag="cand")).ok


class TestCheckRegressionCli:
    @staticmethod
    def _write(tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    @staticmethod
    def _cli(argv):
        import importlib.util
        import pathlib
        script = (pathlib.Path(__file__).resolve().parents[2]
                  / "benchmarks" / "check_regression.py")
        spec = importlib.util.spec_from_file_location(
            "check_regression", script
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.main(argv)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _tiny_report())
        cand = self._write(tmp_path, "cand.json", _tiny_report(tag="cand"))
        assert self._cli([base, cand]) == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_exit_one_on_model_mismatch(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _tiny_report())
        cand = self._write(
            tmp_path, "cand.json", _tiny_report(tag="cand", ticks=999)
        )
        assert self._cli([base, cand]) == 1
        assert "model-mismatch" in capsys.readouterr().out

    def test_informational_always_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _tiny_report())
        cand = self._write(
            tmp_path, "cand.json", _tiny_report(tag="cand", ticks=999)
        )
        assert self._cli([base, cand, "--informational"]) == 0
        assert "model-mismatch" in capsys.readouterr().out

    def test_gate_model_fails_on_model_mismatch(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _tiny_report())
        cand = self._write(
            tmp_path, "cand.json", _tiny_report(tag="cand", ticks=999)
        )
        assert self._cli([base, cand, "--gate-model"]) == 1
        assert "model-mismatch" in capsys.readouterr().out

    def test_gate_model_tolerates_wall_regression(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _tiny_report(wall_s=0.05))
        cand = self._write(
            tmp_path, "cand.json", _tiny_report(tag="cand", wall_s=0.5)
        )
        # Same model fields, 10x slower: the default mode fails, the
        # model gate only reports the warning.
        assert self._cli([base, cand]) == 1
        assert self._cli([base, cand, "--gate-model"]) == 0
        assert "wall-regression" in capsys.readouterr().out

    def test_gate_model_fails_on_coverage_gap(self, tmp_path, capsys):
        extra = {
            "n": 128, "p": 16, "seed": 0, "solved": True,
            "S": 900, "S_prime": 910, "F": 0, "sigma": 6.3,
            "ticks": 150, "wall_s": 0.1, "cached": False,
        }
        base = self._write(
            tmp_path, "base.json", _tiny_report(extra_point=extra)
        )
        cand = self._write(tmp_path, "cand.json", _tiny_report(tag="cand"))
        assert self._cli([base, cand, "--gate-model"]) == 1
        assert "missing-point" in capsys.readouterr().out


class TestRunComparison:
    def test_small_comparison_agrees_and_reports(self):
        comparison = run_comparison("W", 64, 8, repeats=1, warmup=0)
        assert comparison.fast.result.solved
        assert comparison.baseline is not None
        assert comparison.speedup is not None and comparison.speedup > 0
        assert comparison.noff is not None
        assert comparison.ff_speedup is not None and comparison.ff_speedup > 0
        # Fused windows bypass the per-phase timers; the dedicated
        # fused_ticks counter keeps the tick accounting complete.
        phases = comparison.fast.phases
        assert phases.ticks + phases.fused_ticks == \
            comparison.fast.result.ledger.ticks
        text = describe_comparison(comparison)
        assert "W(N=64, P=8)" in text
        assert "speedup" in text
        assert "no-ff" in text

    def test_no_baseline_leg(self):
        comparison = run_comparison("trivial", 64, 8, repeats=1, warmup=0,
                                    include_baseline=False)
        assert comparison.baseline is None
        assert comparison.speedup is None

    def test_no_fast_forward_skips_noff_leg(self):
        comparison = run_comparison("trivial", 64, 8, repeats=1, warmup=0,
                                    fast_forward=False)
        assert comparison.noff is None
        assert comparison.ff_speedup is None
        assert comparison.baseline is not None

    def test_adversarial_legs_replay_identical_pattern(self):
        comparison = run_comparison("X", 64, 8, repeats=1, warmup=0,
                                    adversary="sched-sparse")
        # _check_legs_agree already asserted model equality across the
        # fast/noff/baseline legs; the pattern itself must be non-empty
        # or the scenario is not exercising fault handling at all.
        assert comparison.fast.result.pattern_size > 0
        assert comparison.fast.result.solved
        text = describe_comparison(comparison)
        assert "@sched-sparse" in text

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown perf algorithm"):
            run_comparison("nope", 64, 8)

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ValueError, match="unknown perf adversary"):
            run_comparison("X", 64, 8, adversary="nope")

    def test_all_perf_algorithms_registered(self):
        assert set(PERF_ALGORITHMS) == {
            "trivial", "W", "V", "X", "VX", "snapshot"
        }

    def test_all_perf_adversaries_registered(self):
        assert set(PERF_ADVERSARIES) == {
            "none", "sched-sparse", "budget-sparse"
        }


class TestPerfReport:
    def test_report_validates_against_bench_schema(self):
        comparison = run_comparison("X", 64, 8, repeats=1, warmup=0)
        report = perf_report([comparison], tag="unit", wall_s=0.1)
        validate_bench_report(report)
        [scenario] = report["scenarios"]
        assert scenario["tag"] == "PERF_micro"
        names = [sweep["name"] for sweep in scenario["sweeps"]]
        assert names == ["X/fast", "X/noff", "X/nokernel", "X/baseline"]

    def test_adversarial_sweeps_are_namespaced(self):
        comparison = run_comparison("X", 64, 8, repeats=1, warmup=0,
                                    adversary="budget-sparse")
        report = perf_report([comparison], tag="unit", wall_s=0.1)
        validate_bench_report(report)
        [scenario] = report["scenarios"]
        names = [sweep["name"] for sweep in scenario["sweeps"]]
        assert names == [
            "X@budget-sparse/fast",
            "X@budget-sparse/noff",
            "X@budget-sparse/nokernel",
            "X@budget-sparse/baseline",
        ]

    def test_report_feeds_the_regression_comparator(self):
        comparison = run_comparison("X", 64, 8, repeats=1, warmup=0)
        report = perf_report([comparison], tag="unit", wall_s=0.1)
        diff = compare_reports(report, copy.deepcopy(report))
        assert diff.ok
        assert diff.compared == 4

    def test_vec_speedup_field_validated_but_optional(self):
        report = _tiny_report()
        point = report["scenarios"][0]["sweeps"][0]["points"][0]
        validate_bench_report(report)  # pre-PR reports omit it: fine
        point["vec_speedup"] = 6.21
        validate_bench_report(report)
        point["vec_speedup"] = -1.0
        with pytest.raises(ValueError, match="vec_speedup"):
            validate_bench_report(report)
        point["vec_speedup"] = "fast"
        with pytest.raises(ValueError, match="vec_speedup"):
            validate_bench_report(report)

    def test_auto_speedup_field_validated_but_optional(self):
        report = _tiny_report()
        point = report["scenarios"][0]["sweeps"][0]["points"][0]
        validate_bench_report(report)  # pre-PR-8 reports omit it: fine
        point["auto_speedup"] = 0.98
        validate_bench_report(report)
        point["auto_speedup"] = 0.0
        with pytest.raises(ValueError, match="auto_speedup"):
            validate_bench_report(report)
        point["auto_speedup"] = True
        with pytest.raises(ValueError, match="auto_speedup"):
            validate_bench_report(report)

    def test_environment_section_validated_but_optional(self):
        from repro.metrics.report import environment_section

        report = _tiny_report()
        validate_bench_report(report)  # pre-PR-8 reports omit it: fine
        report["environment"] = environment_section()
        validate_bench_report(report)
        assert report["environment"]["python"]
        assert report["environment"]["cpu_count"] >= 1
        report["environment"] = "linux"
        with pytest.raises(ValueError, match="environment"):
            validate_bench_report(report)
        report["environment"] = {"python": "3.12"}
        with pytest.raises(ValueError, match="environment"):
            validate_bench_report(report)

    def test_perf_reports_carry_the_environment_audit(self):
        comparison = run_comparison("X", 64, 8, repeats=1, warmup=0,
                                    include_baseline=False)
        report = perf_report([comparison], tag="unit", wall_s=0.1)
        environment = report["environment"]
        assert environment["python"] == __import__("platform").python_version()
        assert "numpy" in environment  # version string or None


@pytest.mark.skipif(not HAVE_NUMPY, reason="the vec leg needs numpy")
class TestVectorizedLeg:
    def test_vec_comparison_times_novec_leg(self):
        comparison = run_comparison("trivial", 256, 8, repeats=1, warmup=0,
                                    include_baseline=False, vectorized=True)
        assert comparison.novec is not None
        assert comparison.vec_speedup is not None
        assert comparison.vec_speedup > 0
        text = describe_comparison(comparison)
        assert "no-vec" in text and "vec-speedup" in text

    def test_default_skips_novec_leg(self):
        comparison = run_comparison("trivial", 256, 8, repeats=1, warmup=0,
                                    include_baseline=False)
        assert comparison.novec is None
        assert comparison.vec_speedup is None

    def test_unvectorizable_algorithm_skips_novec_leg(self):
        # V ships no vector program, so the vec run degrades to the
        # scalar lanes and a novec leg would time the same thing twice.
        comparison = run_comparison("V", 64, 8, repeats=1, warmup=0,
                                    include_baseline=False, vectorized=True)
        assert comparison.novec is None

    def test_report_records_vec_speedup_on_fast_point(self):
        comparison = run_comparison("trivial", 256, 8, repeats=1, warmup=0,
                                    include_baseline=False, vectorized=True)
        report = perf_report([comparison], tag="unit", wall_s=0.1)
        validate_bench_report(report)
        [scenario] = report["scenarios"]
        by_name = {s["name"]: s["points"][0] for s in scenario["sweeps"]}
        assert "trivial/novec" in by_name
        fast_point = by_name["trivial/fast"]
        assert fast_point["vec_speedup"] == pytest.approx(
            comparison.vec_speedup, rel=1e-3
        )
        assert "vec_speedup" not in by_name["trivial/novec"]


@pytest.mark.skipif(not HAVE_NUMPY, reason="the auto novec leg needs numpy")
class TestAutoLeg:
    def test_auto_comparison_reports_auto_speedup(self):
        comparison = run_comparison("trivial", 256, 8, repeats=1, warmup=0,
                                    include_baseline=False,
                                    vectorized="auto")
        assert comparison.fast.mode == "auto"
        assert comparison.novec is not None
        assert comparison.auto_speedup is not None
        assert comparison.auto_speedup > 0
        # vec_speedup is reserved for the *forced* vec lane: under auto
        # the fast leg may have run scalar windows, so the ratio gets
        # its own name.
        assert comparison.vec_speedup is None
        text = describe_comparison(comparison)
        assert "auto-speedup" in text and "vec-speedup" not in text

    def test_forced_vec_has_no_auto_speedup(self):
        comparison = run_comparison("trivial", 256, 8, repeats=1, warmup=0,
                                    include_baseline=False, vectorized=True)
        assert comparison.auto_speedup is None
        assert comparison.vec_speedup is not None

    def test_report_names_the_auto_lane(self):
        comparison = run_comparison("trivial", 256, 8, repeats=1, warmup=0,
                                    include_baseline=False,
                                    vectorized="auto")
        report = perf_report([comparison], tag="unit", wall_s=0.1)
        validate_bench_report(report)
        [scenario] = report["scenarios"]
        by_name = {s["name"]: s["points"][0] for s in scenario["sweeps"]}
        assert "trivial/auto" in by_name
        assert "trivial/novec" in by_name
        auto_point = by_name["trivial/auto"]
        assert auto_point["auto_speedup"] == pytest.approx(
            comparison.auto_speedup, rel=1e-3
        )
        assert "vec_speedup" not in auto_point

    def test_auto_model_equals_scalar_model(self):
        auto = run_comparison("W", 256, 8, repeats=1, warmup=0,
                              include_baseline=False, adversary="sched-sparse",
                              vectorized="auto")
        scalar = run_comparison("W", 256, 8, repeats=1, warmup=0,
                                include_baseline=False,
                                adversary="sched-sparse")
        for field in ("completed_work", "charged_work", "pattern_size"):
            assert getattr(auto.fast.result, field) == \
                getattr(scalar.fast.result, field)
        assert auto.fast.result.ledger.ticks == \
            scalar.fast.result.ledger.ticks
